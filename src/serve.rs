//! `tdq serve` — the long-lived NDJSON session mode.
//!
//! One [`Engine`] per server; requests flow through it so every client
//! shares the warm decision cache, the budget policy, and the cumulative
//! stats. The protocol is line-delimited JSON on both directions — one
//! request object per line in, one reply object per line out, in request
//! order — speaking the same instance format as `tdq batch` and the same
//! reply schema as `tdq wp|deps --format json`. `docs/PROTOCOL.md` is the
//! normative specification; the summary:
//!
//! ```text
//! {"id":"r1","op":"wp","alphabet":["A0","A1","0"],"eqs":["A1 A1 = A0","A1 A1 = 0"]}
//! {"id":"r2","op":"deps","text":"schema R(A, B)\ntd t: (a, b) -> (a, b)\n"}
//! {"id":"r3","op":"batch","items":[{"alphabet":["A0","0"],"eqs":[]}]}
//! {"id":"r4","op":"stats"}
//! {"id":"r5","op":"cache_save","path":"warm.tdsnap"}
//! {"id":"r6","op":"cache_load","path":"warm.tdsnap"}
//! {"id":"r7","op":"shutdown"}
//! ```
//!
//! Replies echo `"id"` and carry `"ok":true` with the op's payload, or
//! `"ok":false` with an error envelope `{"msg":…}` that reuses the
//! structured [`JsonError`] shape (`"byte"` is present for JSON parse
//! errors). Malformed lines get an error reply rather than killing the
//! session.
//!
//! Two transports, both `std::net`/`std::io` + scoped threads (no async
//! runtime, consistent with the offline-shim constraint):
//!
//! * [`serve_stdio`] — a single client on stdin/stdout, processed
//!   strictly in order (which makes scripted sessions byte-deterministic;
//!   the golden transcript test and the `serve-smoke` CI job pin one);
//! * [`serve_listen`] — a TCP listener multiplexed over a **fixed worker
//!   pool** (default width: the engine's `--jobs` setting), all
//!   connections sharing the engine. The accept thread runs a nonblocking
//!   readiness loop that splits sockets into request lines; pool workers
//!   claim a connection with queued lines and answer them strictly in
//!   arrival order (a per-connection single-flight latch), so every
//!   client still observes PROTOCOL.md's per-connection reply ordering
//!   while the pool bounds thread count under thousands of idle
//!   connections. A `shutdown` request from any client stops the
//!   listener, cancels in-flight searches through the engine's ticket
//!   registry, unblocks every connection, and joins the pool before
//!   returning — a cancellation-clean exit. The previous
//!   thread-per-connection transport survives as
//!   [`serve_listen_threaded`], the comparison baseline for the
//!   `serve_saturation` benchmark.

// Request handling must degrade to error envelopes, never a panic: a
// panicking handler kills its client thread mid-session. The td-lint
// panic-path pass enforces this lexically; the clippy pair keeps
// `cargo clippy` aligned with it.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use td_core::inference::InferenceVerdict;
use td_semigroup::alphabet::Alphabet;
use td_semigroup::equation::Equation;
use td_semigroup::presentation::Presentation;

use td_core::td::Td;
use td_reduction::batch::{BatchRun, BatchVerdict};
use td_reduction::engine::{
    Decision, Engine, EngineStats, RequestBudget, SessionStats, SessionVerdict,
};
use td_reduction::pipeline::{PhaseTimings, SpendReport};

use crate::jsonl::{Json, JsonError};

/// How a handled request leaves the session: the rendered reply line,
/// plus whether it asked the server to stop.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReply {
    /// The reply object, rendered as one compact JSON line (no newline).
    pub text: String,
    /// `true` for a successful `shutdown` request.
    pub shutdown: bool,
}

/// Parses one instance object (the `tdq batch` line format): `"alphabet"`
/// (array of symbol names), `"eqs"` (array of equation strings), optional
/// `"a0"`/`"zero"` naming the distinguished symbols (defaults `"A0"` /
/// `"0"`), optional `"id"` (defaults to `default_id`).
///
/// # Errors
///
/// Fails with a rendered message when a required field is missing or has
/// the wrong shape, or when the alphabet/equations fail validation.
pub fn parse_instance(j: &Json, default_id: &str) -> Result<(String, Presentation), String> {
    let id = j
        .get("id")
        .and_then(Json::as_str)
        .map(str::to_owned)
        .unwrap_or_else(|| default_id.to_owned());
    let names: Vec<String> = j
        .get("alphabet")
        .and_then(Json::as_array)
        .ok_or("missing \"alphabet\" array")?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| "alphabet entries must be strings".to_owned())
        })
        .collect::<Result<_, _>>()?;
    let a0 = j.get("a0").and_then(Json::as_str).unwrap_or("A0");
    let zero = j.get("zero").and_then(Json::as_str).unwrap_or("0");
    let alphabet = Alphabet::new(names, a0, zero).map_err(|e| e.to_string())?;
    let mut eqs = Vec::new();
    for e in j
        .get("eqs")
        .and_then(Json::as_array)
        .ok_or("missing \"eqs\" array")?
    {
        let text = e.as_str().ok_or("eqs entries must be strings")?;
        eqs.push(Equation::parse(text, &alphabet).map_err(|e| e.to_string())?);
    }
    let p = Presentation::new(alphabet, eqs).map_err(|e| e.to_string())?;
    Ok((id, p))
}

/// The error envelope: `{"id":…,"ok":false,"error":{"msg":…}}`, reusing
/// the structured [`JsonError`] shape (a parse error contributes its
/// 0-based `"byte"` offset).
pub fn error_reply(id: &Json, msg: &str, byte: Option<usize>) -> String {
    let mut error = vec![("msg".to_owned(), Json::from(msg))];
    if let Some(byte) = byte {
        error.push(("byte".to_owned(), Json::from(byte)));
    }
    Json::Obj(vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), Json::from(false)),
        ("error".to_owned(), Json::Obj(error)),
    ])
    .render()
}

/// The verdict fields shared by `tdq batch` output lines, batch results
/// inside a `serve` reply, and `wp` replies — field order is part of the
/// wire format (the batch golden pins it).
pub fn verdict_fields(verdict: &BatchVerdict) -> Vec<(String, Json)> {
    match *verdict {
        BatchVerdict::Implied {
            derivation_steps,
            proof_firings,
        } => vec![
            ("verdict".to_owned(), Json::from("implied")),
            ("derivation_steps".to_owned(), Json::from(derivation_steps)),
            ("proof_firings".to_owned(), Json::from(proof_firings)),
        ],
        BatchVerdict::Refuted { model_rows } => vec![
            ("verdict".to_owned(), Json::from("refuted")),
            ("model_rows".to_owned(), Json::from(model_rows)),
        ],
        BatchVerdict::Unknown {
            derivation_states,
            model_nodes,
        } => vec![
            ("verdict".to_owned(), Json::from("unknown")),
            (
                "derivation_states".to_owned(),
                Json::from(derivation_states),
            ),
            ("model_nodes".to_owned(), Json::from(model_nodes)),
        ],
    }
}

/// One `tdq batch` output line: the instance id followed by its verdict
/// fields (the shape the batch golden file pins byte-for-byte).
pub fn batch_line(id: &str, verdict: &BatchVerdict) -> String {
    let mut fields = vec![("id".to_owned(), Json::from(id))];
    fields.extend(verdict_fields(verdict));
    Json::Obj(fields).render()
}

/// The `"spend"` object of a reply.
pub fn spend_fields(spend: &SpendReport) -> Json {
    Json::Obj(vec![
        (
            "fastpath_checks".to_owned(),
            Json::from(spend.fastpath_checks),
        ),
        (
            "fastpath_truncated".to_owned(),
            Json::from(spend.fastpath_truncated),
        ),
        (
            "derivation_states".to_owned(),
            Json::from(spend.derivation_states),
        ),
        (
            "derivation_truncated".to_owned(),
            Json::from(spend.derivation_truncated),
        ),
        ("model_nodes".to_owned(), Json::from(spend.model_nodes)),
        (
            "model_truncated".to_owned(),
            Json::from(spend.model_truncated),
        ),
    ])
}

/// The `"timings"` object of a reply (integer microseconds).
pub fn timing_fields(t: &PhaseTimings) -> Json {
    let us = |d: Duration| Json::from(d.as_micros().min(u64::MAX as u128) as u64);
    Json::Obj(vec![
        ("normalize_us".to_owned(), us(t.normalize)),
        ("reduce_us".to_owned(), us(t.reduce)),
        ("fastpath_us".to_owned(), us(t.fastpath)),
        ("derivation_us".to_owned(), us(t.derivation)),
        ("model_us".to_owned(), us(t.model)),
        ("certificate_us".to_owned(), us(t.certificate)),
        ("total_us".to_owned(), us(t.total)),
    ])
}

/// A `wp` reply: verdict + cache provenance, with spend and timings
/// opt-in (they are nondeterministic under racing — the loser's spend is
/// only a lower bound — so scripted golden sessions leave them off).
pub fn wp_reply(id: &Json, decision: &Decision, spend: bool, timings: bool) -> String {
    let mut fields = vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), Json::from(true)),
        ("op".to_owned(), Json::from("wp")),
    ];
    fields.extend(verdict_fields(&decision.verdict));
    fields.push(("cached".to_owned(), Json::from(decision.cached)));
    if spend {
        fields.push(("spend".to_owned(), spend_fields(&decision.spend)));
    }
    if timings {
        fields.push(("timings".to_owned(), timing_fields(&decision.timings)));
    }
    Json::Obj(fields).render()
}

/// Renders one [`InferenceVerdict`] the way the CLI words it.
fn redundancy_word(v: &InferenceVerdict) -> &'static str {
    match v {
        InferenceVerdict::Implied(_) => "redundant",
        InferenceVerdict::NotImplied(_) => "essential",
        InferenceVerdict::Unknown(_) => "unknown",
    }
}

/// A `deps` reply: per-TD structural analysis plus (for sets of at least
/// two) the engine's redundancy verdicts, and the EID summary — the JSON
/// twin of the human `tdq deps` report.
///
/// # Errors
///
/// Fails with a rendered message when `text` does not parse as a TD file
/// or the engine rejects the analysis (e.g. shut down).
pub fn deps_reply(engine: &Engine, id: &Json, text: &str) -> Result<String, String> {
    let file = td_core::parser::parse(text).map_err(|e| e.to_string())?;
    Ok(deps_file_reply(engine, id, &file)?.render())
}

/// [`deps_reply`] on an already-parsed file, returning the reply as a
/// [`Json`] value so callers (the CLI's `--format json`) can append
/// fields such as timings before rendering.
///
/// # Errors
///
/// Fails with a rendered message when the engine rejects the analysis
/// (e.g. shut down mid-request).
pub fn deps_file_reply(
    engine: &Engine,
    id: &Json,
    file: &td_core::parser::ParsedFile,
) -> Result<Json, String> {
    let redundancy = if file.tds.len() > 1 {
        Some(engine.redundancy(&file.tds).map_err(|e| e.to_string())?)
    } else {
        None
    };
    let strategy = engine.opts().strategy;
    let tds: Vec<Json> = file
        .tds
        .iter()
        .enumerate()
        .map(|(i, td)| {
            let mut fields = vec![
                ("name".to_owned(), Json::from(td.name())),
                ("full".to_owned(), Json::from(td.is_full())),
                ("trivial".to_owned(), Json::from(td.is_trivial())),
                ("antecedents".to_owned(), Json::from(td.antecedent_count())),
                (
                    "weakly_acyclic_alone".to_owned(),
                    Json::from(td_core::chase::weakly_acyclic(std::slice::from_ref(td))),
                ),
            ];
            if !file.instance.is_empty() {
                fields.push((
                    "holds_in_instance".to_owned(),
                    Json::from(td_core::satisfaction::satisfies_with(
                        strategy,
                        &file.instance,
                        td,
                    )),
                ));
            }
            if let Some(verdict) = redundancy.as_ref().and_then(|verdicts| verdicts.get(i)) {
                fields.push((
                    "redundancy".to_owned(),
                    Json::from(redundancy_word(verdict)),
                ));
            }
            Json::Obj(fields)
        })
        .collect();
    let eids: Vec<Json> = file
        .eids
        .iter()
        .map(|eid| {
            let mut fields = vec![
                ("name".to_owned(), Json::from(eid.name())),
                (
                    "antecedents".to_owned(),
                    Json::from(eid.antecedents().len()),
                ),
                (
                    "conclusions".to_owned(),
                    Json::from(eid.conclusions().len()),
                ),
            ];
            if !file.instance.is_empty() {
                fields.push((
                    "holds_in_instance".to_owned(),
                    Json::from(td_core::eid::eid_satisfies(&file.instance, eid)),
                ));
            }
            Json::Obj(fields)
        })
        .collect();
    Ok(Json::Obj(vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), Json::from(true)),
        ("op".to_owned(), Json::from("deps")),
        ("schema".to_owned(), Json::from(file.schema.to_string())),
        ("tds".to_owned(), Json::Arr(tds)),
        ("eids".to_owned(), Json::Arr(eids)),
    ]))
}

/// A `batch` reply: per-item results in input order plus the batch stats
/// (including evictions — unlike the pinned `--cache-stats` CLI line, the
/// protocol surface carries the full accounting).
pub fn batch_reply(id: &Json, ids: &[String], run: &BatchRun) -> String {
    let results: Vec<Json> = ids
        .iter()
        .zip(&run.verdicts)
        .map(|(item_id, verdict)| {
            let mut fields = vec![("id".to_owned(), Json::from(item_id.as_str()))];
            fields.extend(verdict_fields(verdict));
            Json::Obj(fields)
        })
        .collect();
    let s = run.stats;
    Json::Obj(vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), Json::from(true)),
        ("op".to_owned(), Json::from("batch")),
        ("results".to_owned(), Json::Arr(results)),
        (
            "stats".to_owned(),
            Json::Obj(vec![
                ("total".to_owned(), Json::from(s.total)),
                ("unique".to_owned(), Json::from(s.unique)),
                ("cache_hits".to_owned(), Json::from(s.cache_hits)),
                ("solved".to_owned(), Json::from(s.solved)),
                ("fastpath".to_owned(), Json::from(s.fastpath)),
                ("evictions".to_owned(), Json::from(s.evictions)),
            ]),
        ),
    ])
    .render()
}

/// A `stats` reply: the engine's cumulative accounting. Spend totals are
/// opt-in (`"spend":true`) for the same determinism reason as in
/// [`wp_reply`]; session-registry counters are opt-in (`"sessions":true`)
/// and the effective worker-pool width is opt-in (`"jobs":true`) so the
/// pre-existing reply shape stays byte-stable.
pub fn stats_reply(
    id: &Json,
    stats: &EngineStats,
    spend: bool,
    sessions: Option<&SessionStats>,
    jobs: Option<usize>,
) -> String {
    let mut fields = vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), Json::from(true)),
        ("op".to_owned(), Json::from("stats")),
        ("requests".to_owned(), Json::from(stats.requests)),
        ("cache_hits".to_owned(), Json::from(stats.cache_hits)),
        ("solved".to_owned(), Json::from(stats.solved)),
        ("fastpath_hits".to_owned(), Json::from(stats.fastpath_hits)),
        ("keys_cached".to_owned(), Json::from(stats.keys_cached)),
        ("evictions".to_owned(), Json::from(stats.evictions)),
    ];
    if spend {
        fields.push((
            "derivation_states".to_owned(),
            Json::from(stats.derivation_states),
        ));
        fields.push(("model_nodes".to_owned(), Json::from(stats.model_nodes)));
    }
    if let Some(s) = sessions {
        fields.push(("sessions_open".to_owned(), Json::from(s.open)));
        fields.push(("sessions_opened".to_owned(), Json::from(s.opened)));
        fields.push(("session_evictions".to_owned(), Json::from(s.evictions)));
    }
    if let Some(n) = jobs {
        fields.push(("jobs".to_owned(), Json::from(n)));
    }
    Json::Obj(fields).render()
}

/// The verdict fields of a `session_ask` reply: the session chase's
/// incremental certificate counters, using the protocol's standard
/// `implied`/`refuted`/`unknown` vocabulary.
pub fn session_verdict_fields(verdict: &SessionVerdict) -> Vec<(String, Json)> {
    match *verdict {
        SessionVerdict::Implied { chase_steps } => vec![
            ("verdict".to_owned(), Json::from("implied")),
            ("chase_steps".to_owned(), Json::from(chase_steps)),
        ],
        SessionVerdict::NotImplied { model_rows } => vec![
            ("verdict".to_owned(), Json::from("refuted")),
            ("model_rows".to_owned(), Json::from(model_rows)),
        ],
        SessionVerdict::Unknown {
            chase_steps,
            state_rows,
        } => vec![
            ("verdict".to_owned(), Json::from("unknown")),
            ("chase_steps".to_owned(), Json::from(chase_steps)),
            ("state_rows".to_owned(), Json::from(state_rows)),
        ],
    }
}

/// Parses the `"text"` of a session op as a pure TD set: the `tdq deps`
/// text format, restricted — equality-generating dependencies and
/// instance rows have no meaning inside a session's Σ and are rejected.
fn parse_session_tds(text: &str) -> Result<Vec<Td>, String> {
    let file = td_core::parser::parse(text).map_err(|e| e.to_string())?;
    if !file.eids.is_empty() {
        return Err("session operations accept only TDs; found an EID".to_owned());
    }
    if !file.instance.is_empty() {
        return Err("session operations accept only TDs; found instance rows".to_owned());
    }
    if file.tds.is_empty() {
        return Err("no TDs in \"text\"".to_owned());
    }
    Ok(file.tds)
}

/// Parses the optional per-request `"budgets"` override object.
fn parse_budgets(j: &Json) -> Result<Option<RequestBudget>, String> {
    let Some(b) = j.get("budgets") else {
        return Ok(None);
    };
    let field = |name: &str| -> Result<Option<u64>, String> {
        match b.get(name) {
            None => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                format!("budgets.{name} must be a non-negative integer that fits in u64")
            }),
        }
    };
    Ok(Some(RequestBudget {
        derivation_states: field("derivation_states")?.map(|n| n as usize),
        model_nodes: field("model_nodes")?,
    }))
}

/// Handles one request line against the shared engine, producing one
/// reply line. Never panics on malformed input — every failure becomes an
/// error envelope.
pub fn handle_line(engine: &Engine, line: &str) -> ServeReply {
    let reply = |text: String| ServeReply {
        text,
        shutdown: false,
    };
    let j = match Json::parse(line) {
        Ok(j) => j,
        Err(JsonError { byte, msg }) => {
            return reply(error_reply(&Json::Null, &msg, Some(byte)));
        }
    };
    let id = j.get("id").cloned().unwrap_or(Json::Null);
    let Some(op) = j.get("op").and_then(Json::as_str) else {
        return reply(error_reply(&id, "missing \"op\" field", None));
    };
    match op {
        "wp" => {
            let (_, p) = match parse_instance(&j, "wp") {
                Ok(x) => x,
                Err(msg) => return reply(error_reply(&id, &msg, None)),
            };
            let budgets = match parse_budgets(&j) {
                Ok(b) => b,
                Err(msg) => return reply(error_reply(&id, &msg, None)),
            };
            let spend = j.get("spend").and_then(Json::as_bool).unwrap_or(false);
            let timings = j.get("timings").and_then(Json::as_bool).unwrap_or(false);
            match engine.decide_with(&p, budgets) {
                Ok(decision) => reply(wp_reply(&id, &decision, spend, timings)),
                Err(e) => reply(error_reply(&id, &e.to_string(), None)),
            }
        }
        "deps" => {
            let Some(text) = j.get("text").and_then(Json::as_str) else {
                return reply(error_reply(&id, "missing \"text\" field", None));
            };
            match deps_reply(engine, &id, text) {
                Ok(text) => reply(text),
                Err(msg) => reply(error_reply(&id, &msg, None)),
            }
        }
        "batch" => {
            let Some(items) = j.get("items").and_then(Json::as_array) else {
                return reply(error_reply(&id, "missing \"items\" array", None));
            };
            let mut ids = Vec::with_capacity(items.len());
            let mut presentations = Vec::with_capacity(items.len());
            for (ix, item) in items.iter().enumerate() {
                match parse_instance(item, &format!("item{}", ix + 1)) {
                    Ok((item_id, p)) => {
                        ids.push(item_id);
                        presentations.push(p);
                    }
                    Err(msg) => {
                        return reply(error_reply(&id, &format!("items[{ix}]: {msg}"), None));
                    }
                }
            }
            match engine.solve_batch(&presentations) {
                Ok(run) => reply(batch_reply(&id, &ids, &run)),
                Err(e) => reply(error_reply(&id, &e.to_string(), None)),
            }
        }
        "stats" => {
            let spend = j.get("spend").and_then(Json::as_bool).unwrap_or(false);
            let sessions = j
                .get("sessions")
                .and_then(Json::as_bool)
                .unwrap_or(false)
                .then(|| engine.session_stats());
            let jobs = j
                .get("jobs")
                .and_then(Json::as_bool)
                .unwrap_or(false)
                .then(|| engine.jobs());
            reply(stats_reply(
                &id,
                &engine.stats(),
                spend,
                sessions.as_ref(),
                jobs,
            ))
        }
        "session_open" | "session_close" => {
            let Some(sid) = j.get("session").and_then(Json::as_str) else {
                return reply(error_reply(&id, "missing \"session\" field", None));
            };
            let result = if op == "session_open" {
                engine.session_open(sid)
            } else {
                engine.session_close(sid)
            };
            match result {
                Ok(()) => reply(
                    Json::Obj(vec![
                        ("id".to_owned(), id),
                        ("ok".to_owned(), Json::from(true)),
                        ("op".to_owned(), Json::from(op)),
                        ("session".to_owned(), Json::from(sid)),
                    ])
                    .render(),
                ),
                Err(e) => reply(error_reply(&id, &e.to_string(), None)),
            }
        }
        "session_add_dep" => {
            let Some(sid) = j.get("session").and_then(Json::as_str) else {
                return reply(error_reply(&id, "missing \"session\" field", None));
            };
            let Some(text) = j.get("text").and_then(Json::as_str) else {
                return reply(error_reply(&id, "missing \"text\" field", None));
            };
            let tds = match parse_session_tds(text) {
                Ok(tds) => tds,
                Err(msg) => return reply(error_reply(&id, &msg, None)),
            };
            match engine.session_add_deps(sid, &tds) {
                Ok(total) => {
                    let added: Vec<Json> = tds.iter().map(|td| Json::from(td.name())).collect();
                    reply(
                        Json::Obj(vec![
                            ("id".to_owned(), id),
                            ("ok".to_owned(), Json::from(true)),
                            ("op".to_owned(), Json::from(op)),
                            ("session".to_owned(), Json::from(sid)),
                            ("added".to_owned(), Json::Arr(added)),
                            ("deps".to_owned(), Json::from(total)),
                        ])
                        .render(),
                    )
                }
                Err(e) => reply(error_reply(&id, &e.to_string(), None)),
            }
        }
        "session_remove_dep" => {
            let Some(sid) = j.get("session").and_then(Json::as_str) else {
                return reply(error_reply(&id, "missing \"session\" field", None));
            };
            let Some(name) = j.get("name").and_then(Json::as_str) else {
                return reply(error_reply(&id, "missing \"name\" field", None));
            };
            match engine.session_remove_dep(sid, name) {
                Ok(total) => reply(
                    Json::Obj(vec![
                        ("id".to_owned(), id),
                        ("ok".to_owned(), Json::from(true)),
                        ("op".to_owned(), Json::from(op)),
                        ("session".to_owned(), Json::from(sid)),
                        ("removed".to_owned(), Json::from(name)),
                        ("deps".to_owned(), Json::from(total)),
                    ])
                    .render(),
                ),
                Err(e) => reply(error_reply(&id, &e.to_string(), None)),
            }
        }
        "session_ask" => {
            let Some(sid) = j.get("session").and_then(Json::as_str) else {
                return reply(error_reply(&id, "missing \"session\" field", None));
            };
            let Some(text) = j.get("text").and_then(Json::as_str) else {
                return reply(error_reply(&id, "missing \"text\" field", None));
            };
            let tds = match parse_session_tds(text) {
                Ok(tds) => tds,
                Err(msg) => return reply(error_reply(&id, &msg, None)),
            };
            let [goal] = tds.as_slice() else {
                return reply(error_reply(
                    &id,
                    "session_ask takes exactly one TD as the goal",
                    None,
                ));
            };
            match engine.session_ask(sid, goal) {
                Ok((verdict, cached)) => {
                    let mut fields = vec![
                        ("id".to_owned(), id),
                        ("ok".to_owned(), Json::from(true)),
                        ("op".to_owned(), Json::from(op)),
                        ("session".to_owned(), Json::from(sid)),
                        ("goal".to_owned(), Json::from(goal.name())),
                    ];
                    fields.extend(session_verdict_fields(&verdict));
                    fields.push(("cached".to_owned(), Json::from(cached)));
                    reply(Json::Obj(fields).render())
                }
                Err(e) => reply(error_reply(&id, &e.to_string(), None)),
            }
        }
        "cache_save" | "cache_load" => {
            // Operator-level persistence ops: the path names a file on the
            // *server's* filesystem (trusted clients only — same trust
            // level as `shutdown`). See docs/PROTOCOL.md for the snapshot
            // compatibility rules.
            let Some(path) = j.get("path").and_then(Json::as_str) else {
                return reply(error_reply(&id, "missing \"path\" field", None));
            };
            if op == "cache_save" {
                let image = engine.save_snapshot();
                let keys = engine.cache().len();
                match td_reduction::snapshot::write_atomic(std::path::Path::new(path), &image) {
                    Ok(()) => reply(
                        Json::Obj(vec![
                            ("id".to_owned(), id),
                            ("ok".to_owned(), Json::from(true)),
                            ("op".to_owned(), Json::from(op)),
                            ("path".to_owned(), Json::from(path)),
                            ("keys".to_owned(), Json::from(keys)),
                            ("bytes".to_owned(), Json::from(image.len())),
                        ])
                        .render(),
                    ),
                    Err(e) => reply(error_reply(&id, &format!("cannot write {path}: {e}"), None)),
                }
            } else {
                let bytes = match std::fs::read(path) {
                    Ok(b) => b,
                    Err(e) => {
                        return reply(error_reply(&id, &format!("cannot read {path}: {e}"), None));
                    }
                };
                match engine.load_snapshot(&bytes) {
                    Ok(stats) => reply(
                        Json::Obj(vec![
                            ("id".to_owned(), id),
                            ("ok".to_owned(), Json::from(true)),
                            ("op".to_owned(), Json::from(op)),
                            ("path".to_owned(), Json::from(path)),
                            ("keys_loaded".to_owned(), Json::from(stats.keys_loaded)),
                            (
                                "keys_skipped_version".to_owned(),
                                Json::from(stats.keys_skipped_version),
                            ),
                        ])
                        .render(),
                    ),
                    Err(e) => reply(error_reply(&id, &e.to_string(), None)),
                }
            }
        }
        "shutdown" => {
            engine.shutdown();
            ServeReply {
                text: Json::Obj(vec![
                    ("id".to_owned(), id),
                    ("ok".to_owned(), Json::from(true)),
                    ("op".to_owned(), Json::from("shutdown")),
                ])
                .render(),
                shutdown: true,
            }
        }
        other => reply(error_reply(&id, &format!("unknown op `{other}`"), None)),
    }
}

/// Serves a single NDJSON client on `input`/`output`, strictly in request
/// order, until EOF or a `shutdown` request. Blank lines are skipped.
/// Replies are flushed per line so a pipelining client never deadlocks on
/// buffering.
///
/// # Errors
///
/// Fails with the underlying I/O error when reading a request line or
/// writing/flushing a reply fails. Request-level problems (bad JSON,
/// unknown ops) are reported as error replies, not as `Err`.
pub fn serve_stdio(
    engine: &Engine,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(engine, &line);
        writeln!(output, "{}", reply.text)?;
        output.flush()?;
        if reply.shutdown || engine.is_shut_down() {
            break;
        }
    }
    Ok(())
}

/// Serves concurrent NDJSON clients on a TCP listener through a fixed
/// worker pool sized by the engine's `--jobs` setting, all sharing
/// `engine` (and therefore its decision cache: a verdict solved for one
/// client is a cache hit for every other). Runs until a client sends
/// `shutdown` (or the engine is shut down externally): the listener stops
/// accepting, in-flight searches are cancelled through the engine's
/// ticket registry, every open connection is unblocked and drained, and
/// the pool is joined before this returns. Equivalent to
/// [`serve_listen_pooled`] with `engine.jobs()` workers.
///
/// # Errors
///
/// Fails with the underlying I/O error when configuring or polling the
/// listener fails. Per-connection I/O errors tear down that connection
/// only.
pub fn serve_listen(engine: &Engine, listener: TcpListener) -> std::io::Result<()> {
    serve_listen_pooled(engine, listener, engine.jobs())
}

/// The previous `serve_listen` transport: one scoped thread per
/// connection, blocking reads, no pool. Kept as the comparison baseline
/// for the `serve_saturation` benchmark and as a behavioral oracle for
/// the pooled loop — both must satisfy the same PROTOCOL.md contract.
///
/// # Errors
///
/// Fails with the underlying I/O error when configuring or polling the
/// listener fails. Per-connection I/O errors tear down that connection
/// only.
pub fn serve_listen_threaded(engine: &Engine, listener: TcpListener) -> std::io::Result<()> {
    // Non-blocking accept so the loop can observe shutdown promptly; the
    // accepted sockets are switched back to blocking mode.
    listener.set_nonblocking(true)?;
    // Weak handles only: a connection thread owns the one strong Arc, so
    // a closed connection drops its socket immediately and its registry
    // entry goes dead (pruned on the next accept) — the registry never
    // pins file descriptors past their connection's lifetime.
    let clients: Mutex<Vec<std::sync::Weak<TcpStream>>> = Mutex::new(Vec::new());
    std::thread::scope(|s| -> std::io::Result<()> {
        // Accept until shutdown; a fatal accept error falls through to
        // the same drain path below (returning early would leave the
        // scope joining connection threads that are still blocked in
        // reads — a wedged server instead of an error).
        let accept_result = loop {
            if engine.is_shut_down() {
                break Ok(());
            }
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let stream = std::sync::Arc::new(stream);
                    {
                        // Recover from poisoning: the registry is a
                        // `Vec<Weak>` mutated one complete push/retain at
                        // a time, and the accept loop must keep serving
                        // even after some connection thread panicked.
                        let mut clients = clients
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        clients.retain(|w| w.strong_count() > 0);
                        clients.push(std::sync::Arc::downgrade(&stream));
                    }
                    s.spawn(move || serve_connection(engine, &stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                // Transient per-connection failures must not kill the
                // server.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => break Err(e),
            }
        };
        // Drain: stop in-flight searches (idempotent after a client
        // shutdown op), unblock every connection reader so its thread can
        // exit, and let the scope join them all.
        engine.shutdown();
        // The drain must unblock every connection reader even if a panic
        // poisoned the registry — a skipped socket shutdown would wedge
        // the scope join below — so recover rather than propagate.
        for client in clients
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            if let Some(client) = client.upgrade() {
                let _ = client.shutdown(Shutdown::Both);
            }
        }
        accept_result
    })
}

/// One connection's request loop: sequential within the connection,
/// concurrent across connections. The thread's `Arc` keeps the socket
/// alive; dropping it on exit closes the connection and retires its
/// registry entry.
fn serve_connection(engine: &Engine, stream: &TcpStream) {
    // Accepted sockets may inherit the listener's non-blocking mode on
    // some platforms; insist on blocking reads.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let reader = BufReader::new(stream);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(engine, &line);
        if writeln!(writer, "{}", reply.text).is_err() || writer.flush().is_err() {
            break;
        }
        if reply.shutdown || engine.is_shut_down() {
            break;
        }
    }
}

/// Per-connection input state shared between the poll loop and the worker
/// pool. The poller appends complete request lines under the lock; the
/// worker that owns the connection drains them. `busy` is the
/// single-flight latch that keeps each connection's replies strictly in
/// request order (PROTOCOL.md's per-connection ordering guarantee) even
/// though the pool has many workers.
#[derive(Debug, Default)]
struct ConnState {
    /// Bytes received after the last newline — a request line in flight.
    partial: Vec<u8>,
    /// Complete request lines not yet handled, in arrival order.
    pending: VecDeque<String>,
    /// Whether a pool worker currently owns this connection.
    busy: bool,
    /// Whether the socket reached EOF, failed, or served a `shutdown`.
    closed: bool,
}

/// One pooled connection: the nonblocking socket plus its input state.
/// The poller holds one `Arc` per live connection; a worker holds a
/// second while it owns the connection. Dropping the last `Arc` closes
/// the socket.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    state: Mutex<ConnState>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            state: Mutex::new(ConnState::default()),
        }
    }

    /// Locks the state, recovering from poisoning: every critical section
    /// mutates the state one complete push/pop at a time, so the state is
    /// coherent even if a worker panicked mid-request, and the poll loop
    /// must keep serving the other connections regardless.
    fn lock_state(&self) -> MutexGuard<'_, ConnState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Drains every currently-readable byte into complete request lines.
    /// Returns `true` when any byte (or EOF) was observed, so the poll
    /// loop only sleeps on a fully idle tick.
    fn poll_read(&self) -> bool {
        let mut progressed = false;
        let mut buf = [0u8; 4096];
        loop {
            match (&self.stream).read(&mut buf) {
                Ok(0) => {
                    let mut st = self.lock_state();
                    // EOF after an unterminated final line: `BufRead::lines`
                    // yields it, so the pool does too.
                    if !st.partial.is_empty() {
                        let line = std::mem::take(&mut st.partial);
                        st.pending
                            .push_back(String::from_utf8_lossy(&line).into_owned());
                    }
                    st.closed = true;
                    return true;
                }
                Ok(n) => {
                    progressed = true;
                    let mut st = self.lock_state();
                    // td-lint: allow(panic-path) `read` returns n <= buf.len()
                    // (the Read contract), so the slice is in bounds
                    for &b in &buf[..n] {
                        if b == b'\n' {
                            let mut line = std::mem::take(&mut st.partial);
                            // `BufRead::lines` strips one trailing CR.
                            if line.last() == Some(&b'\r') {
                                line.pop();
                            }
                            st.pending
                                .push_back(String::from_utf8_lossy(&line).into_owned());
                        } else {
                            st.partial.push(b);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return progressed,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.lock_state().closed = true;
                    return true;
                }
            }
        }
    }
}

/// Writes one reply line to a nonblocking socket, sleeping briefly on
/// `WouldBlock` so a slow reader stalls only the worker that owns its
/// connection, never the poll loop or the rest of the pool.
fn write_line_nonblocking(stream: &TcpStream, text: &str) -> std::io::Result<()> {
    let mut line = Vec::with_capacity(text.len() + 1);
    line.extend_from_slice(text.as_bytes());
    line.push(b'\n');
    let mut written = 0;
    let mut writer = stream;
    while written < line.len() {
        // td-lint: allow(panic-path) the loop guard `written < line.len()`
        // keeps the range start in bounds
        match writer.write(&line[written..]) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Answers one connection's queued request lines in arrival order, then
/// releases the single-flight latch. The state lock is never held across
/// `handle_line` or a socket write — the poll loop keeps buffering input
/// for every connection (including this one) while a request is solving.
fn drain_connection(engine: &Engine, conn: &Conn) {
    loop {
        let line = {
            let mut st = conn.lock_state();
            match st.pending.pop_front() {
                Some(line) => line,
                None => {
                    st.busy = false;
                    return;
                }
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(engine, &line);
        let failed = write_line_nonblocking(&conn.stream, &reply.text).is_err();
        if failed || reply.shutdown || engine.is_shut_down() {
            // Mirror the per-thread loop: an I/O failure or a shutdown
            // ends this connection; unanswered pipelined lines are
            // dropped, exactly as the blocking reader never reads them.
            let mut st = conn.lock_state();
            st.pending.clear();
            st.closed = true;
            st.busy = false;
            return;
        }
    }
}

/// One pool worker: block on the ready queue, take ownership of a
/// connection with queued lines, answer them, repeat until the drain flag
/// is raised and the queue is empty.
fn pool_worker(
    engine: &Engine,
    queue: &Mutex<VecDeque<Arc<Conn>>>,
    ready: &Condvar,
    done: &AtomicBool,
) {
    loop {
        let conn = {
            let mut q = queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(conn) = q.pop_front() {
                    break Some(conn);
                }
                if done.load(Ordering::Acquire) {
                    break None;
                }
                q = ready.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(conn) = conn else { return };
        drain_connection(engine, &conn);
    }
}

/// Serves concurrent NDJSON clients on a TCP listener with a fixed pool
/// of `workers` threads (clamped to at least 1) instead of a thread per
/// connection. The accept thread runs a nonblocking readiness loop:
/// accept new sockets, drain readable bytes into per-connection line
/// queues, and hand each connection with queued lines to exactly one pool
/// worker at a time. Per-connection replies therefore stay strictly in
/// request order while total thread count is bounded by the pool width.
///
/// Shutdown drains in four steps: cancel in-flight searches through the
/// engine, give busy workers a bounded grace window to flush replies
/// already earned (most importantly the `shutdown` reply itself), unblock
/// every socket, then stop the pool and join it.
///
/// # Errors
///
/// Fails with the underlying I/O error when configuring or polling the
/// listener fails. Per-connection I/O errors tear down that connection
/// only.
pub fn serve_listen_pooled(
    engine: &Engine,
    listener: TcpListener,
    workers: usize,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let workers = workers.max(1);
    let queue: Mutex<VecDeque<Arc<Conn>>> = Mutex::new(VecDeque::new());
    let ready = Condvar::new();
    let done = AtomicBool::new(false);
    std::thread::scope(|s| -> std::io::Result<()> {
        for _ in 0..workers {
            s.spawn(|| pool_worker(engine, &queue, &ready, &done));
        }
        let mut conns: Vec<Arc<Conn>> = Vec::new();
        // As in the threaded transport, a fatal accept error falls
        // through to the drain below rather than returning early past
        // blocked pool workers.
        let accept_result = 'serve: loop {
            if engine.is_shut_down() {
                break Ok(());
            }
            let mut progressed = false;
            loop {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        // The poll loop multiplexes with nonblocking
                        // reads; a socket that cannot switch modes cannot
                        // join it.
                        if stream.set_nonblocking(true).is_ok() {
                            conns.push(Arc::new(Conn::new(stream)));
                            progressed = true;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    // Transient per-connection failures must not kill the
                    // server.
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::ConnectionAborted | std::io::ErrorKind::Interrupted
                        ) => {}
                    Err(e) => break 'serve Err(e),
                }
            }
            let mut i = 0;
            while i < conns.len() {
                // td-lint: allow(panic-path) the loop guard `i < conns.len()`
                // holds: swap_remove shrinks len without advancing i
                let conn = &conns[i];
                let already_closed = conn.lock_state().closed;
                if !already_closed && conn.poll_read() {
                    progressed = true;
                }
                let (enqueue, retire) = {
                    let mut st = conn.lock_state();
                    let enqueue = !st.busy && !st.pending.is_empty();
                    if enqueue {
                        st.busy = true;
                    }
                    (enqueue, st.closed && !st.busy && st.pending.is_empty())
                };
                if enqueue {
                    queue
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push_back(Arc::clone(conn));
                    ready.notify_one();
                }
                if retire {
                    // Dropping the poller's Arc closes the socket (no
                    // worker owns a retired connection).
                    conns.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if !progressed {
                std::thread::sleep(Duration::from_millis(1));
            }
        };
        // Drain step 1: stop in-flight searches (idempotent after a
        // client shutdown op).
        engine.shutdown();
        // Step 2: bounded grace window so busy workers can flush replies
        // already earned — without it the `shutdown` reply itself could
        // be cut off by the socket shutdown below.
        let deadline = Instant::now() + Duration::from_secs(2);
        while conns.iter().any(|c| c.lock_state().busy) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Step 3: unblock every client still connected.
        for conn in &conns {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        // Step 4: stop the pool; the scope joins the workers.
        done.store(true, Ordering::Release);
        ready.notify_all();
        accept_result
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use td_reduction::engine::EngineConfig;

    fn wp_line(id: &str, renamed: bool) -> String {
        if renamed {
            format!(
                "{{\"id\":\"{id}\",\"op\":\"wp\",\"alphabet\":[\"s\",\"g\",\"z\"],\
                 \"a0\":\"s\",\"zero\":\"z\",\"eqs\":[\"g g = s\",\"g g = z\"]}}"
            )
        } else {
            format!(
                "{{\"id\":\"{id}\",\"op\":\"wp\",\"alphabet\":[\"A0\",\"A1\",\"0\"],\
                 \"eqs\":[\"A1 A1 = A0\",\"A1 A1 = 0\"]}}"
            )
        }
    }

    #[test]
    fn wp_requests_share_the_cache() {
        let engine = Engine::new();
        let first = handle_line(&engine, &wp_line("a", false));
        assert!(first.text.contains("\"verdict\":\"implied\""), "{first:?}");
        assert!(first.text.contains("\"cached\":false"));
        assert!(!first.shutdown);
        let second = handle_line(&engine, &wp_line("b", true));
        assert!(second.text.contains("\"cached\":true"), "{second:?}");
        assert!(second.text.starts_with("{\"id\":\"b\",\"ok\":true"));
    }

    #[test]
    fn malformed_lines_get_structured_errors() {
        let engine = Engine::new();
        let r = handle_line(&engine, "not json");
        assert!(r
            .text
            .starts_with("{\"id\":null,\"ok\":false,\"error\":{\"msg\":"));
        assert!(r.text.contains("\"byte\":"), "{}", r.text);

        let r = handle_line(&engine, "{\"id\":7}");
        assert_eq!(
            r.text,
            "{\"id\":7,\"ok\":false,\"error\":{\"msg\":\"missing \\\"op\\\" field\"}}"
        );

        let r = handle_line(&engine, "{\"id\":\"x\",\"op\":\"frobnicate\"}");
        assert!(r.text.contains("unknown op `frobnicate`"));

        let r = handle_line(&engine, "{\"op\":\"wp\",\"alphabet\":[\"A0\",\"0\"]}");
        assert!(r.text.contains("missing \\\"eqs\\\" array"), "{}", r.text);
        assert_eq!(
            engine.stats().requests,
            0,
            "rejected lines are not requests"
        );
    }

    #[test]
    fn stats_and_shutdown_round_trip() {
        let engine = Engine::new();
        handle_line(&engine, &wp_line("a", false));
        let stats = handle_line(&engine, "{\"id\":\"s\",\"op\":\"stats\"}");
        assert_eq!(
            stats.text,
            "{\"id\":\"s\",\"ok\":true,\"op\":\"stats\",\"requests\":1,\"cache_hits\":0,\
             \"solved\":1,\"fastpath_hits\":0,\"keys_cached\":1,\"evictions\":0}"
        );
        let with_spend = handle_line(&engine, "{\"id\":\"s2\",\"op\":\"stats\",\"spend\":true}");
        assert!(with_spend.text.contains("\"derivation_states\":"));

        let bye = handle_line(&engine, "{\"id\":\"q\",\"op\":\"shutdown\"}");
        assert!(bye.shutdown);
        assert_eq!(bye.text, "{\"id\":\"q\",\"ok\":true,\"op\":\"shutdown\"}");
        assert!(engine.is_shut_down());
        // Uncached work after shutdown is refused with the envelope.
        let refused = handle_line(&engine, &wp_line("late", true));
        assert!(refused.text.contains("\"cached\":true"), "warm keys drain");
        let refused = handle_line(
            &engine,
            "{\"id\":\"new\",\"op\":\"wp\",\"alphabet\":[\"A0\",\"0\"],\"eqs\":[]}",
        );
        assert!(
            refused.text.contains("engine is shut down"),
            "{}",
            refused.text
        );
    }

    #[test]
    fn cache_ops_round_trip_through_a_fresh_engine() {
        let dir = std::env::temp_dir().join(format!("tdq_serve_cache_ops_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ops.tdsnap");
        let path_json = path.to_str().unwrap().replace('\\', "/");

        let engine = Engine::new();
        let r = handle_line(
            &engine,
            "{\"id\":\"w\",\"op\":\"wp\",\"alphabet\":[\"A0\",\"0\"],\"eqs\":[]}",
        );
        assert!(r.text.contains("\"cached\":false"), "{}", r.text);
        let r = handle_line(
            &engine,
            &format!("{{\"id\":\"s\",\"op\":\"cache_save\",\"path\":\"{path_json}\"}}"),
        );
        assert!(r.text.contains("\"ok\":true"), "{}", r.text);
        assert!(r.text.contains("\"keys\":1"), "{}", r.text);

        // A *fresh* engine — the restart — answers from the loaded image.
        let warm = Engine::new();
        let r = handle_line(
            &warm,
            &format!("{{\"id\":\"l\",\"op\":\"cache_load\",\"path\":\"{path_json}\"}}"),
        );
        assert!(r.text.contains("\"keys_loaded\":1"), "{}", r.text);
        assert!(r.text.contains("\"keys_skipped_version\":0"), "{}", r.text);
        let r = handle_line(
            &warm,
            "{\"id\":\"w2\",\"op\":\"wp\",\"alphabet\":[\"A0\",\"0\"],\"eqs\":[]}",
        );
        assert!(r.text.contains("\"cached\":true"), "{}", r.text);
        assert_eq!(warm.stats().solved, 0, "warm replay never ran the solver");

        // Failure envelopes: missing path field, unreadable file, corrupt
        // image — all structured errors, none fatal to the session.
        let r = handle_line(&warm, "{\"id\":\"e1\",\"op\":\"cache_load\"}");
        assert!(r.text.contains("missing \\\"path\\\" field"), "{}", r.text);
        let r = handle_line(
            &warm,
            "{\"id\":\"e2\",\"op\":\"cache_load\",\"path\":\"/nonexistent/x.tdsnap\"}",
        );
        assert!(r.text.contains("cannot read"), "{}", r.text);
        let mut image = std::fs::read(&path).unwrap();
        let mid = image.len() / 2;
        image[mid] ^= 0x20;
        std::fs::write(&path, &image).unwrap();
        let r = handle_line(
            &warm,
            &format!("{{\"id\":\"e3\",\"op\":\"cache_load\",\"path\":\"{path_json}\"}}"),
        );
        assert!(r.text.contains("\"ok\":false"), "{}", r.text);
        assert!(r.text.contains("snapshot byte"), "{}", r.text);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_overrides_are_validated_and_clamped() {
        let engine = Engine::new();
        let r = handle_line(
            &engine,
            "{\"id\":\"b\",\"op\":\"wp\",\"alphabet\":[\"A0\",\"0\"],\"eqs\":[],\
             \"budgets\":{\"model_nodes\":-3}}",
        );
        assert!(
            r.text.contains("must be a non-negative integer"),
            "{}",
            r.text
        );
        // Out-of-range: 2^64 is integral and non-negative but exceeds
        // u64, so it must surface as the structured error envelope, not
        // saturate to u64::MAX and silently mean "unbounded-ish".
        let r = handle_line(
            &engine,
            "{\"id\":\"b3\",\"op\":\"wp\",\"alphabet\":[\"A0\",\"0\"],\"eqs\":[],\
             \"budgets\":{\"derivation_states\":18446744073709551616}}",
        );
        assert!(r.text.contains("\"ok\":false"), "{}", r.text);
        assert!(
            r.text
                .contains("budgets.derivation_states must be a non-negative integer"),
            "{}",
            r.text
        );
        // A tiny valid override still answers (the analytic shortcut needs
        // zero search nodes for this instance).
        let r = handle_line(
            &engine,
            "{\"id\":\"b2\",\"op\":\"wp\",\"alphabet\":[\"A0\",\"0\"],\"eqs\":[],\
             \"budgets\":{\"derivation_states\":1,\"model_nodes\":1},\"spend\":true}",
        );
        assert!(r.text.contains("\"verdict\":\"refuted\""), "{}", r.text);
        assert!(r.text.contains("\"spend\":{"), "{}", r.text);
    }

    const PROD_TEXT: &str = "schema R(A, B)\\ntd prod: (a, b) (a2, b2) -> (a, b2)\\n";
    const PT_TEXT: &str = "schema R(A, B)\\ntd pt: (a, b) (a2, b) (a2, b2) -> (a, b2)\\n";

    fn session_line(id: &str, op: &str, sid: &str, extra: &str) -> String {
        format!("{{\"id\":\"{id}\",\"op\":\"{op}\",\"session\":\"{sid}\"{extra}}}")
    }

    #[test]
    fn session_ops_round_trip() {
        let engine = Engine::new();
        let r = handle_line(&engine, &session_line("1", "session_open", "s1", ""));
        assert_eq!(
            r.text,
            "{\"id\":\"1\",\"ok\":true,\"op\":\"session_open\",\"session\":\"s1\"}"
        );

        // Empty Σ refutes any non-trivial goal: the frozen goal instance is
        // already a fixpoint and the conclusion is absent.
        let ask_pt = format!(",\"text\":\"{PT_TEXT}\"");
        let r = handle_line(&engine, &session_line("2", "session_ask", "s1", &ask_pt));
        assert!(r.text.contains("\"verdict\":\"refuted\""), "{}", r.text);
        assert!(r.text.contains("\"goal\":\"pt\""), "{}", r.text);
        assert!(r.text.contains("\"cached\":false"), "{}", r.text);

        // Adding the product TD flips the verdict: prod implies every full
        // TD over the schema, so the NotImplied verdict must be dropped and
        // the parked chase resumed.
        let add = format!(",\"text\":\"{PROD_TEXT}\"");
        let r = handle_line(&engine, &session_line("3", "session_add_dep", "s1", &add));
        assert_eq!(
            r.text,
            "{\"id\":\"3\",\"ok\":true,\"op\":\"session_add_dep\",\"session\":\"s1\",\
             \"added\":[\"prod\"],\"deps\":1}"
        );
        let r = handle_line(&engine, &session_line("4", "session_ask", "s1", &ask_pt));
        assert!(r.text.contains("\"verdict\":\"implied\""), "{}", r.text);
        assert!(r.text.contains("\"cached\":false"), "{}", r.text);
        let r = handle_line(&engine, &session_line("5", "session_ask", "s1", &ask_pt));
        assert!(r.text.contains("\"cached\":true"), "{}", r.text);

        // Removal reverts to the empty-Σ refutation (recomputed, not cached).
        let r = handle_line(
            &engine,
            &session_line("6", "session_remove_dep", "s1", ",\"name\":\"prod\""),
        );
        assert_eq!(
            r.text,
            "{\"id\":\"6\",\"ok\":true,\"op\":\"session_remove_dep\",\"session\":\"s1\",\
             \"removed\":\"prod\",\"deps\":0}"
        );
        let r = handle_line(&engine, &session_line("7", "session_ask", "s1", &ask_pt));
        assert!(r.text.contains("\"verdict\":\"refuted\""), "{}", r.text);
        assert!(r.text.contains("\"cached\":false"), "{}", r.text);

        let r = handle_line(&engine, &session_line("8", "session_close", "s1", ""));
        assert_eq!(
            r.text,
            "{\"id\":\"8\",\"ok\":true,\"op\":\"session_close\",\"session\":\"s1\"}"
        );
        let r = handle_line(&engine, &session_line("9", "session_ask", "s1", &ask_pt));
        assert!(r.text.contains("unknown session `s1`"), "{}", r.text);
    }

    #[test]
    fn session_error_envelopes() {
        let engine = Engine::new();
        let r = handle_line(&engine, "{\"id\":\"a\",\"op\":\"session_open\"}");
        assert!(
            r.text.contains("missing \\\"session\\\" field"),
            "{}",
            r.text
        );

        let r = handle_line(&engine, &session_line("b", "session_close", "ghost", ""));
        assert!(r.text.contains("unknown session `ghost`"), "{}", r.text);

        handle_line(&engine, &session_line("c", "session_open", "s", ""));
        let r = handle_line(&engine, &session_line("c2", "session_open", "s", ""));
        assert!(r.text.contains("already open"), "{}", r.text);

        let r = handle_line(&engine, &session_line("d", "session_add_dep", "s", ""));
        assert!(r.text.contains("missing \\\"text\\\" field"), "{}", r.text);

        let eid = ",\"text\":\"schema R(A, B)\\neid e: (a, b) (a, b2) -> (x, b) (x, b2)\\n\"";
        let r = handle_line(&engine, &session_line("e", "session_add_dep", "s", eid));
        assert!(r.text.contains("found an EID"), "{}", r.text);

        // A two-TD text is a fine dependency payload but not a goal.
        let both = ",\"text\":\"schema R(A, B)\\ntd prod: (a, b) (a2, b2) -> (a, b2)\\n\
                    td pt: (a, b) (a2, b) (a2, b2) -> (a, b2)\\n\"";
        let r = handle_line(&engine, &session_line("f", "session_ask", "s", both));
        assert!(r.text.contains("exactly one TD"), "{}", r.text);

        let r = handle_line(
            &engine,
            &session_line("g", "session_remove_dep", "s", ",\"name\":\"nope\""),
        );
        assert!(r.text.contains("no dependency named"), "{}", r.text);
    }

    #[test]
    fn stats_session_counters_are_opt_in() {
        let engine = Engine::new();
        handle_line(&engine, &session_line("1", "session_open", "s1", ""));
        let plain = handle_line(&engine, "{\"id\":\"s\",\"op\":\"stats\"}");
        assert!(
            !plain.text.contains("sessions_open"),
            "default stats reply must stay byte-stable: {}",
            plain.text
        );
        let with = handle_line(
            &engine,
            "{\"id\":\"s2\",\"op\":\"stats\",\"sessions\":true}",
        );
        assert!(with.text.contains("\"sessions_open\":1"), "{}", with.text);
        assert!(with.text.contains("\"sessions_opened\":1"), "{}", with.text);
        assert!(
            with.text.contains("\"session_evictions\":0"),
            "{}",
            with.text
        );
        // Session traffic does not perturb the decision-request counters.
        assert_eq!(engine.stats().requests, 0);
    }

    #[test]
    fn stats_jobs_width_is_opt_in() {
        let engine = Engine::with_config(EngineConfig {
            jobs: 3,
            ..EngineConfig::default()
        });
        let plain = handle_line(&engine, "{\"id\":\"s\",\"op\":\"stats\"}");
        assert!(
            !plain.text.contains("\"jobs\""),
            "default stats reply must stay byte-stable: {}",
            plain.text
        );
        let with = handle_line(&engine, "{\"id\":\"s2\",\"op\":\"stats\",\"jobs\":true}");
        assert!(with.text.ends_with(",\"jobs\":3}"), "{}", with.text);
    }

    /// Drives one pooled listener end to end: three clients each pipeline
    /// two requests up front (exercising the per-connection pending
    /// queue), then a control connection reads stats and shuts the server
    /// down. Per-connection reply order must hold at any pool width.
    fn run_pooled_session(workers: usize) {
        let engine = Engine::with_config(EngineConfig {
            jobs: workers,
            ..EngineConfig::default()
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            let engine = &engine;
            let server = s.spawn(move || serve_listen_pooled(engine, listener, workers));
            let handles: Vec<_> = (0..3)
                .map(|c| {
                    s.spawn(move || {
                        let stream = TcpStream::connect(addr).unwrap();
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        let mut writer = &stream;
                        write!(
                            writer,
                            "{}\n\n{}\n",
                            wp_line(&format!("c{c}-0"), false),
                            wp_line(&format!("c{c}-1"), true),
                        )
                        .unwrap();
                        let mut lines = Vec::new();
                        for _ in 0..2 {
                            let mut line = String::new();
                            reader.read_line(&mut line).unwrap();
                            lines.push(line.trim().to_owned());
                        }
                        lines
                    })
                })
                .collect();
            let replies: Vec<Vec<String>> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            for (c, lines) in replies.iter().enumerate() {
                assert!(
                    lines[0].starts_with(&format!("{{\"id\":\"c{c}-0\"")),
                    "client {c} replies out of order: {lines:?}"
                );
                assert!(
                    lines[1].starts_with(&format!("{{\"id\":\"c{c}-1\"")),
                    "client {c} replies out of order: {lines:?}"
                );
                assert!(
                    lines[1].contains("\"cached\":true"),
                    "second ask of the same class hits the cache: {lines:?}"
                );
            }

            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = &stream;
            writeln!(writer, "{{\"id\":\"st\",\"op\":\"stats\",\"jobs\":true}}").unwrap();
            let mut stats = String::new();
            reader.read_line(&mut stats).unwrap();
            assert!(stats.contains("\"requests\":6"), "{stats}");
            assert!(stats.contains("\"solved\":1"), "{stats}");
            assert!(stats.contains("\"cache_hits\":5"), "{stats}");
            assert!(
                stats.contains(&format!("\"jobs\":{workers}")),
                "effective pool width surfaces in stats: {stats}"
            );
            writeln!(writer, "{{\"id\":\"q\",\"op\":\"shutdown\"}}").unwrap();
            let mut bye = String::new();
            reader.read_line(&mut bye).unwrap();
            assert_eq!(bye.trim(), "{\"id\":\"q\",\"ok\":true,\"op\":\"shutdown\"}");
            server.join().unwrap().unwrap();
        });
    }

    #[test]
    fn pooled_listener_orders_pipelined_replies_per_connection() {
        run_pooled_session(2);
    }

    #[test]
    fn single_worker_pool_still_serves_every_connection() {
        run_pooled_session(1);
    }

    #[test]
    fn threaded_listener_baseline_still_serves() {
        let engine = Engine::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            let engine = &engine;
            let server = s.spawn(move || serve_listen_threaded(engine, listener));
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = &stream;
            writeln!(writer, "{}", wp_line("a", false)).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("{\"id\":\"a\""), "{line}");
            writeln!(writer, "{{\"id\":\"q\",\"op\":\"shutdown\"}}").unwrap();
            let mut bye = String::new();
            reader.read_line(&mut bye).unwrap();
            assert_eq!(bye.trim(), "{\"id\":\"q\",\"ok\":true,\"op\":\"shutdown\"}");
            server.join().unwrap().unwrap();
        });
    }

    #[test]
    fn stdio_session_is_ordered_and_stops_at_shutdown() {
        let engine = Engine::with_config(EngineConfig::default());
        let session = format!(
            "{}\n\n{}\n{}\n{}\n",
            wp_line("1", false),
            wp_line("2", true),
            "{\"id\":\"3\",\"op\":\"shutdown\"}",
            wp_line("never", false),
        );
        let mut out = Vec::new();
        serve_stdio(&engine, session.as_bytes(), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines.len(),
            3,
            "the post-shutdown line is never read:\n{out}"
        );
        assert!(lines[0].starts_with("{\"id\":\"1\""));
        assert!(lines[1].starts_with("{\"id\":\"2\""));
        assert!(lines[1].contains("\"cached\":true"));
        assert_eq!(lines[2], "{\"id\":\"3\",\"ok\":true,\"op\":\"shutdown\"}");
    }
}
