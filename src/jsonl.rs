//! A minimal, dependency-free JSON reader/writer for the `tdq batch`
//! JSONL interface.
//!
//! The build environment has no registry access (no `serde`), and the
//! batch corpus format only needs objects, arrays, strings, numbers,
//! booleans and `null` — so this module implements exactly RFC 8259's
//! value grammar with a recursive-descent parser and a string escaper, and
//! nothing more. Numbers are carried as `f64` (every count the batch
//! interface emits fits losslessly).
//!
//! Errors are structured: every [`JsonError`] carries the 0-based byte
//! offset where parsing failed, so `tdq batch` can report
//! `line 7, byte 12: …` for a bad corpus line. A top-level value followed
//! by anything but whitespace — `{"a":1} {"a":2}` crammed onto one JSONL
//! line, a stray `]`, a second scalar — is rejected as trailing garbage,
//! never silently ignored.

// The serve layer feeds this parser raw client bytes: everything here
// must degrade to a structured `JsonError`, never a panic. The td-lint
// panic-path pass enforces the same rule lexically; this clippy pair
// keeps `cargo clippy` aligned with it.
#![warn(clippy::unwrap_used, clippy::expect_used)]

/// A JSON parse error: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 0-based byte offset into the parsed text.
    pub byte: usize,
    /// Human-readable description.
    pub msg: String,
}

impl JsonError {
    fn new(byte: usize, msg: impl Into<String>) -> Self {
        Self {
            byte,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.byte, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in declaration order (duplicate keys keep the first
    /// occurrence on lookup).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace after the
    /// value — a second value, a stray bracket, any garbage — is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::new(
                pos,
                "trailing garbage after the top-level value",
            ));
        }
        Ok(value)
    }

    /// Object field lookup (first occurrence); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integral number
    /// that `f64` represents exactly.
    ///
    /// The upper bound is strict: `u64::MAX as f64` rounds **up** to 2^64,
    /// so a `<=` guard would accept the out-of-range `18446744073709551616`
    /// and saturate it to `u64::MAX`. The round-trip check rejects any
    /// residue of that rounding — every in-range `f64` with `fract() == 0`
    /// is an exact integer, so for them `n as u64 as f64 == n` holds and
    /// nothing representable is turned away.
    pub fn as_u64(&self) -> Option<u64> {
        const TWO_POW_64: f64 = 18_446_744_073_709_551_616.0; // 2^64, exact
        match *self {
            Json::Num(n)
                if n >= 0.0 && n.fract() == 0.0 && n < TWO_POW_64 && (n as u64) as f64 == n =>
            {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Renders this value as compact JSON (no whitespace), the writer the
    /// NDJSON reply stream uses. Integral numbers inside the `f64`-exact
    /// range print without a fractional part (`3`, not `3.0`), so counts
    /// round-trip through [`Json::as_u64`]; non-finite numbers (which RFC
    /// 8259 cannot represent) render as `null`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() <= EXACT {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

/// Escapes `s` as the *contents* of a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::new(
            *pos,
            format!("expected `{}`", char::from(b)),
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::new(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(JsonError::new(
            *pos,
            format!("unexpected character `{}`", char::from(c)),
        )),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes
        .get(*pos..)
        .is_some_and(|rest| rest.starts_with(word.as_bytes()))
    {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError::new(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let raw = bytes.get(start..*pos).unwrap_or_default();
    let text = std::str::from_utf8(raw).map_err(|_| JsonError::new(start, "invalid number"))?;
    // RFC 8259 number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // — f64::parse alone is laxer (it accepts `.5`, `1.`, `+1`), so the
    // shape is checked first.
    let bad = || JsonError::new(start, format!("invalid number `{text}`"));
    let mut rest = text.strip_prefix('-').unwrap_or(text).as_bytes();
    match rest {
        [b'0', tail @ ..] => rest = tail,
        [b'1'..=b'9', ..] => {
            while let [b'0'..=b'9', tail @ ..] = rest {
                rest = tail;
            }
        }
        _ => return Err(bad()),
    }
    if let [b'.', tail @ ..] = rest {
        rest = tail;
        if !matches!(rest, [b'0'..=b'9', ..]) {
            return Err(bad());
        }
        while let [b'0'..=b'9', tail @ ..] = rest {
            rest = tail;
        }
    }
    if let [b'e' | b'E', tail @ ..] = rest {
        rest = tail;
        if let [b'+' | b'-', tail @ ..] = rest {
            rest = tail;
        }
        if !matches!(rest, [b'0'..=b'9', ..]) {
            return Err(bad());
        }
        while let [b'0'..=b'9', tail @ ..] = rest {
            rest = tail;
        }
    }
    if !rest.is_empty() {
        return Err(bad());
    }
    text.parse::<f64>().map(Json::Num).map_err(|_| bad())
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::new(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::new(*pos, "truncated \\u escape"))?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(JsonError::new(*pos, "bad \\u escape"));
                        }
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::new(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::new(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed by the batch
                        // format; map lone surrogates to the replacement
                        // character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::new(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Consume one UTF-8 scalar. The width comes from the
                // leading byte, so only that scalar is validated — not the
                // whole remaining input per character (which made long
                // strings quadratic).
                let width = match b {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = bytes
                    .get(*pos..*pos + width)
                    .ok_or_else(|| JsonError::new(*pos, "truncated UTF-8 sequence"))?;
                let scalar =
                    std::str::from_utf8(chunk).map_err(|e| JsonError::new(*pos, e.to_string()))?;
                out.push_str(scalar);
                *pos += width;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::new(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(JsonError::new(*pos, "expected `,` or `}`")),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_batch_shaped_line() {
        let j = Json::parse(
            r#"{"id": "q1", "alphabet": ["A0", "A1", "0"], "eqs": ["A1 A1 = A0"], "n": 3}"#,
        )
        .unwrap();
        assert_eq!(j.get("id").and_then(Json::as_str), Some("q1"));
        let alphabet = j.get("alphabet").and_then(Json::as_array).unwrap();
        assert_eq!(alphabet.len(), 3);
        assert_eq!(alphabet[2].as_str(), Some("0"));
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(3));
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn scalars_and_nesting() {
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            Json::parse("[[],{}]").unwrap(),
            Json::Arr(vec![Json::Arr(vec![]), Json::Obj(vec![])])
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        let j = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\nd\u{41}"));
        let s = "quote\" back\\ nl\n tab\t ctrl\u{1}";
        let reparsed = Json::parse(&format!("\"{}\"", escape(s))).unwrap();
        assert_eq!(reparsed.as_str(), Some(s));
    }

    #[test]
    fn errors_are_reported() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err(), "trailing tokens rejected");
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn trailing_garbage_after_top_level_values_is_rejected() {
        // Two values crammed onto one JSONL line must not be half-read.
        for bad in [
            r#"{"a":1} {"a":2}"#,
            r#"{"a":1}]"#,
            "[1,2] x",
            "\"str\" \"str2\"",
            "null,",
            "true[]",
            "7 // comment",
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(
                err.msg.contains("trailing garbage"),
                "{bad}: wrong error {err}"
            );
        }
        // Trailing whitespace alone stays fine.
        assert!(Json::parse("{\"a\": 1}  \t ").is_ok());
    }

    #[test]
    fn errors_carry_byte_positions() {
        let err = Json::parse(r#"{"a":1} oops"#).unwrap_err();
        assert_eq!(err.byte, 8, "{err}");
        assert_eq!(
            err.to_string(),
            "byte 8: trailing garbage after the top-level value"
        );
        let err = Json::parse(r#"{"a" 1}"#).unwrap_err();
        assert_eq!(err.byte, 5, "{err}");
        let err = Json::parse("[1, oops]").unwrap_err();
        assert_eq!(err.byte, 4, "{err}");
    }

    #[test]
    fn render_roundtrips_and_is_compact() {
        for text in [
            r#"{"id":"q1","alphabet":["A0","A1","0"],"eqs":[],"n":3,"ok":true,"x":null}"#,
            r#"[1,2.5,-3,"s\nt",[],{}]"#,
            "null",
            "-25",
        ] {
            let parsed = Json::parse(text).unwrap();
            assert_eq!(parsed.render(), text, "compact form is canonical");
            assert_eq!(Json::parse(&parsed.render()).unwrap(), parsed);
        }
        // Integral f64s print as integers; non-finite degrade to null.
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(-0.5).render(), "-0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::from(7u64).render(), "7");
        assert_eq!(Json::from("a\"b").render(), "\"a\\\"b\"");
        assert_eq!(Json::Bool(false).as_bool(), Some(false));
        assert_eq!(Json::Null.as_bool(), None);
    }

    #[test]
    fn non_integral_numbers_are_not_u64() {
        assert_eq!(Json::parse("2.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
    }

    /// Regression: the old guard `n <= u64::MAX as f64` compared against
    /// 2^64 (the nearest `f64` to `u64::MAX`, rounded up), so the
    /// out-of-range literal `18446744073709551616` slipped through and
    /// saturated to `Some(u64::MAX)`.
    #[test]
    fn as_u64_range_boundaries() {
        // Around 2^53, the edge of contiguous integer representability:
        // all three neighbours are exact f64 values and in range.
        assert_eq!(
            Json::parse("9007199254740991").unwrap().as_u64(),
            Some((1 << 53) - 1)
        );
        assert_eq!(
            Json::parse("9007199254740992").unwrap().as_u64(),
            Some(1 << 53)
        );
        // 2^53 + 1 is not representable; the parsed f64 is exactly 2^53,
        // which as_u64 faithfully (and exactly) converts.
        assert_eq!(
            Json::parse("9007199254740993").unwrap().as_u64(),
            Some(1 << 53)
        );

        // u64::MAX − 1 and u64::MAX both round up to 2^64 when parsed:
        // out of range, never saturated.
        assert_eq!(Json::parse("18446744073709551614").unwrap().as_u64(), None);
        assert_eq!(Json::parse("18446744073709551615").unwrap().as_u64(), None);
        // 2^64 itself: the bug's headline case.
        assert_eq!(Json::parse("18446744073709551616").unwrap().as_u64(), None);
        assert_eq!(Json::Num(u64::MAX as f64).as_u64(), None);

        // The largest u64 an f64 can hold exactly: 2^64 − 2^11.
        assert_eq!(
            Json::parse("18446744073709549568").unwrap().as_u64(),
            Some(u64::MAX - 2047)
        );
        assert_eq!(
            Json::Num((u64::MAX - 2047) as f64).as_u64(),
            Some(u64::MAX - 2047)
        );
        // Powers of two near the top are exact and accepted.
        assert_eq!(
            Json::parse("9223372036854775808").unwrap().as_u64(),
            Some(1 << 63)
        );
    }

    #[test]
    fn rfc_number_grammar_enforced() {
        // Valid per RFC 8259.
        for ok in ["0", "-0", "10", "0.5", "-2.25", "1e3", "1E+3", "2.5e-1"] {
            assert!(Json::parse(ok).is_ok(), "{ok} must parse");
        }
        // f64::parse would accept these, but JSON must not.
        for bad in [".5", "1.", "01", "+1", "1e", "1e+", "-", "0x1", "1.e3"] {
            assert!(Json::parse(bad).is_err(), "{bad} must be rejected");
        }
        // \u escapes require exactly four hex digits (no sign tolerance).
        assert!(Json::parse(r#""\u+12f""#).is_err());
        assert!(Json::parse(r#""\u012""#).is_err());
        assert_eq!(Json::parse(r#""\u0041""#).unwrap().as_str(), Some("A"));
    }
}
