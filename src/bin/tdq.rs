//! `tdq` — template-dependency query tool.
//!
//! ```text
//! tdq deps FILE         analyse a dependency file (td-core text format)
//! tdq wp FILE           solve a word-problem instance (td-semigroup format)
//! tdq normalize FILE    normalize a presentation to (2,1)/(1,1) equations
//! tdq reduce FILE       print the Gurevich–Lewis reduction of an instance
//! tdq help              this text
//! ```

use std::process::ExitCode;

use template_deps::prelude::*;
use template_deps::serve;
use template_deps::td_core::render::{diagram_to_ascii, diagram_to_dot};
use template_deps::td_reduction::engine::EngineConfig;
use template_deps::td_reduction::part_b::RowLabel;
use template_deps::td_reduction::verify::structural_report;

const USAGE: &str = "\
tdq — template-dependency query tool

USAGE:
    tdq deps [--timings] [--strategy S] [--format F] [--parallel N] FILE
                                    analyse a dependency file (schema/td/eid/row lines)
    tdq wp [--timings] [--strategy S] [--format F] [--parallel N] FILE
                                    solve a word-problem instance (alphabet/eq lines)
    tdq batch [--jobs N] [--parallel N] [--cache-stats] [--strategy S]
              [--cache-cap N] [--cache-load PATH] [--cache-save PATH] FILE
                                    decide a JSONL corpus of word-problem instances,
                                    deduplicated by canonical key (one JSON line out
                                    per line in, input order preserved)
    tdq serve --stdio [OPTS]        long-lived NDJSON session on stdin/stdout
    tdq serve --listen ADDR [OPTS]  concurrent NDJSON sessions over TCP; all
                                    clients share one engine (warm decision
                                    cache, cumulative stats). Both modes also
                                    speak the incremental Σ-session ops
                                    (session_open/_add_dep/_remove_dep/_ask/
                                    _close) and the cache persistence ops
                                    (cache_save/cache_load). See docs/PROTOCOL.md
    tdq normalize FILE              normalize a presentation to (2,1)/(1,1) equations
    tdq reduce FILE                 print the reduction (attributes, D, D0) of an instance
    tdq help                        print this text

OPTIONS:
    --timings       print per-phase wall-clock timings after the result
                    (parse/analysis for `deps`; normalize/reduce/derivation/
                    model/certificate plus spent-budget accounting for `wp`)
    --strategy S    homomorphism matcher: `indexed` (default; dense-index
                    join planner) or `naive` (full-scan differential
                    oracle). Verdicts never depend on this — it exists for
                    debugging and differential runs
    --format F      `human` (default) or `json`: one reply object on stdout
                    using the same schema as `tdq serve` (verdict, spend,
                    timings); validation errors also emit the JSON error
                    envelope. For `wp` and `deps` only
    --jobs N        worker threads for the batch solver pool and the serve
                    connection pool (default: available parallelism)
    --parallel N    intra-solve worker threads for the chase's semi-naive
                    trigger discovery (default 1 = sequential; N <= 1
                    disables). Verdicts, proofs and output bytes are
                    identical at every width — this is a speed knob only
    --cache-stats   append a JSON stats line ({\"total\",\"unique\",\"cache_hits\",
                    \"solved\",\"jobs\"}) after the batch verdicts
    --cache-cap N   decision-cache capacity per shard for batch/serve
                    (default 65536; 16 shards)
    --max-sessions N
                    bound on concurrently open Σ-sessions for serve
                    (default 64; oldest-opened is evicted at the cap)
    --cache-load PATH
                    warm-start batch/serve from a decision-cache snapshot;
                    a snapshot from a different canon-scheme version loads
                    zero keys (cold start + warning), a corrupt one is a
                    hard error
    --cache-save PATH
                    write the decision cache to PATH as a versioned
                    snapshot (atomic tmp-file + rename). batch: after the
                    corpus; serve: on clean shutdown (EOF or shutdown op)
    --cache-flush-every SECS
                    serve only, requires --cache-save: additionally flush
                    the snapshot every SECS seconds in the background

BATCH INPUT (one JSON object per line):
    {\"id\": \"q1\", \"alphabet\": [\"A0\", \"A1\", \"0\"],
     \"eqs\": [\"A1 A1 = A0\", \"A1 A1 = 0\"]}
    Optional keys: \"a0\" and \"zero\" designate the distinguished symbols
    (defaults \"A0\" and \"0\"); \"id\" defaults to the line number.
";

/// Parses a `--strategy` value.
fn parse_strategy(v: &str) -> Result<MatchStrategy, String> {
    match v {
        "naive" => Ok(MatchStrategy::Naive),
        "indexed" => Ok(MatchStrategy::Indexed),
        other => Err(format!(
            "--strategy: expected `naive` or `indexed`, got `{other}`"
        )),
    }
}

/// Output format of `tdq wp|deps`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Format {
    /// The human-readable report (the golden-pinned default).
    #[default]
    Human,
    /// One serve-schema JSON reply object on stdout.
    Json,
}

/// Parses a `--format` value.
fn parse_format(v: &str) -> Result<Format, String> {
    match v {
        "human" => Ok(Format::Human),
        "json" => Ok(Format::Json),
        other => Err(format!(
            "--format: expected `human` or `json`, got `{other}`"
        )),
    }
}

/// Parses a `--parallel` value: the chase-internal worker width. `N <= 1`
/// means sequential discovery (the byte-identity oracle path).
fn parse_parallel(v: &str) -> Result<Parallelism, String> {
    let n: usize = v
        .parse()
        .map_err(|_| format!("--parallel: invalid worker count `{v}`"))?;
    Ok(if n <= 1 {
        Parallelism::Off
    } else {
        Parallelism::Threads(n)
    })
}

/// One engine per `tdq` invocation: every solving subcommand routes
/// through it, so the one-shot CLI and the persistent `serve` mode are
/// the same code path.
fn build_engine(
    strategy: MatchStrategy,
    parallelism: Parallelism,
    jobs: Option<usize>,
    cache_cap: Option<usize>,
) -> Engine {
    build_engine_with(strategy, parallelism, jobs, cache_cap, None)
}

/// `build_engine` plus the serve-only session-registry bound.
fn build_engine_with(
    strategy: MatchStrategy,
    parallelism: Parallelism,
    jobs: Option<usize>,
    cache_cap: Option<usize>,
    max_sessions: Option<usize>,
) -> Engine {
    let mut config = EngineConfig {
        opts: SolveOptions {
            strategy,
            parallelism,
            ..SolveOptions::default()
        },
        ..EngineConfig::default()
    };
    if let Some(jobs) = jobs {
        config.jobs = jobs;
    }
    if let Some(cap) = cache_cap {
        config.cache_cap = cap;
    }
    if let Some(max) = max_sessions {
        config.max_sessions = max;
    }
    Engine::with_config(config)
}

/// Loads a decision-cache snapshot into the engine, reporting the import
/// on stderr (the machine stream on stdout stays reply-only). A
/// structurally invalid snapshot is a hard error; a canon-scheme mismatch
/// degrades to a cold start with a warning.
fn cache_load(engine: &Engine, path: &str) -> Result<(), String> {
    let bytes =
        std::fs::read(path).map_err(|e| format!("--cache-load: cannot read {path}: {e}"))?;
    let stats = engine
        .load_snapshot(&bytes)
        .map_err(|e| format!("--cache-load {path}: {e}"))?;
    if stats.keys_skipped_version > 0 {
        eprintln!(
            "tdq: --cache-load {path}: skipped {} key(s) written under a different \
             canon-scheme version; starting cold",
            stats.keys_skipped_version
        );
    } else {
        eprintln!(
            "tdq: --cache-load {path}: {} cached verdict(s) loaded",
            stats.keys_loaded
        );
    }
    Ok(())
}

/// Writes the engine's decision cache to `path` as an atomic snapshot
/// (tmp file + rename — a concurrent reader never sees a torn image).
fn cache_save(engine: &Engine, path: &str) -> Result<(), String> {
    let image = engine.save_snapshot();
    template_deps::td_reduction::snapshot::write_atomic(std::path::Path::new(path), &image)
        .map_err(|e| format!("--cache-save: cannot write {path}: {e}"))?;
    eprintln!(
        "tdq: --cache-save {path}: {} cached verdict(s), {} bytes",
        engine.cache().len(),
        image.len()
    );
    Ok(())
}

/// Removes a `--flag VALUE` pair from `args`, returning the value.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(ix) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if ix + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(ix + 1);
    args.remove(ix);
    Ok(Some(value))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("batch") => {
            return match cmd_batch(&args[1..]) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("tdq: {msg}");
                    ExitCode::FAILURE
                }
            };
        }
        Some("serve") => {
            return match cmd_serve(&args[1..]) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("tdq: {msg}");
                    ExitCode::FAILURE
                }
            };
        }
        _ => {}
    }
    let timings = {
        let before = args.len();
        args.retain(|a| a != "--timings");
        args.len() != before
    };
    let strategy = match take_value_flag(&mut args, "--strategy")
        .and_then(|v| v.as_deref().map(parse_strategy).transpose())
    {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("tdq: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let format = match take_value_flag(&mut args, "--format")
        .and_then(|v| v.as_deref().map(parse_format).transpose())
    {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("tdq: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let parallel = match take_value_flag(&mut args, "--parallel")
        .and_then(|v| v.as_deref().map(parse_parallel).transpose())
    {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("tdq: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (cmd, path) = match args.as_slice() {
        [cmd, path] => (cmd.as_str(), path.as_str()),
        [cmd] if cmd == "help" || cmd == "--help" || cmd == "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if timings && !matches!(cmd, "deps" | "wp") {
        eprintln!("tdq: --timings is not supported for `{cmd}`\n{USAGE}");
        return ExitCode::from(2);
    }
    if strategy.is_some() && !matches!(cmd, "deps" | "wp") {
        eprintln!("tdq: --strategy is not supported for `{cmd}`\n{USAGE}");
        return ExitCode::from(2);
    }
    if format.is_some() && !matches!(cmd, "deps" | "wp") {
        eprintln!("tdq: --format is not supported for `{cmd}`\n{USAGE}");
        return ExitCode::from(2);
    }
    if parallel.is_some() && !matches!(cmd, "deps" | "wp") {
        eprintln!("tdq: --parallel is not supported for `{cmd}`\n{USAGE}");
        return ExitCode::from(2);
    }
    let strategy = strategy.unwrap_or_default();
    let format = format.unwrap_or_default();
    let parallel = parallel.unwrap_or_default();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tdq: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "deps" => cmd_deps(&text, timings, strategy, format, parallel),
        "wp" => cmd_wp(&text, timings, strategy, format, parallel),
        "normalize" => cmd_normalize(&text),
        "reduce" => cmd_reduce(&text),
        other => {
            eprintln!("tdq: unknown command `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tdq: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Prints a serve-schema JSON error envelope on stdout (the machine
/// stream) before the human diagnostic goes to stderr via the returned
/// `Err`.
fn json_error(msg: &str) -> String {
    println!(
        "{}",
        serve::error_reply(&template_deps::jsonl::Json::Null, msg, None)
    );
    msg.to_owned()
}

fn cmd_deps(
    text: &str,
    timings: bool,
    strategy: MatchStrategy,
    format: Format,
    parallel: Parallelism,
) -> Result<(), String> {
    let engine = build_engine(strategy, parallel, None, None);
    if format == Format::Json {
        use template_deps::jsonl::Json;
        let t_parse = std::time::Instant::now();
        let file = td_core::parser::parse(text).map_err(|e| json_error(&e.to_string()))?;
        let t_parse = t_parse.elapsed();
        let t_analysis = std::time::Instant::now();
        let mut reply =
            serve::deps_file_reply(&engine, &Json::Null, &file).map_err(|e| json_error(&e))?;
        let us = |d: std::time::Duration| Json::Num(d.as_micros() as f64);
        if let Json::Obj(fields) = &mut reply {
            fields.push((
                "timings".to_owned(),
                Json::Obj(vec![
                    ("parse_us".to_owned(), us(t_parse)),
                    ("analysis_us".to_owned(), us(t_analysis.elapsed())),
                ]),
            ));
        }
        println!("{}", reply.render());
        return Ok(());
    }
    let t_parse = std::time::Instant::now();
    let file = td_core::parser::parse(text).map_err(|e| e.to_string())?;
    let t_parse = t_parse.elapsed();
    let t_analysis = std::time::Instant::now();
    println!("schema: {}", file.schema);
    for td in &file.tds {
        println!("\n{td}");
        println!(
            "  {} | {} antecedents | trivial: {} | weakly-acyclic alone: {}",
            if td.is_full() { "full" } else { "embedded" },
            td.antecedent_count(),
            td.is_trivial(),
            td_core::chase::weakly_acyclic(std::slice::from_ref(td)),
        );
        println!("{}", diagram_to_ascii(&Diagram::from_td(td)));
        if !file.instance.is_empty() {
            println!(
                "  holds in instance: {}",
                td_core::satisfaction::satisfies_with(strategy, &file.instance, td)
            );
        }
    }
    if file.tds.len() > 1 {
        println!("redundancy:");
        let verdicts = engine.redundancy(&file.tds).map_err(|e| e.to_string())?;
        for (td, v) in file.tds.iter().zip(&verdicts) {
            println!(
                "  {}: {}",
                td.name(),
                match v {
                    InferenceVerdict::Implied(_) => "redundant",
                    InferenceVerdict::NotImplied(_) => "essential",
                    InferenceVerdict::Unknown(_) => "unknown",
                }
            );
        }
    }
    for eid in &file.eids {
        println!(
            "\neid {}: {} antecedents, {} conclusion atoms{}",
            eid.name(),
            eid.antecedents().len(),
            eid.conclusions().len(),
            if file.instance.is_empty() {
                String::new()
            } else {
                format!(
                    ", holds in instance: {}",
                    td_core::eid::eid_satisfies(&file.instance, eid)
                )
            }
        );
    }
    if timings {
        println!(
            "\ntimings: parse {t_parse:.2?}, analysis {:.2?}",
            t_analysis.elapsed()
        );
    }
    Ok(())
}

fn cmd_wp(
    text: &str,
    timings: bool,
    strategy: MatchStrategy,
    format: Format,
    parallel: Parallelism,
) -> Result<(), String> {
    let engine = build_engine(strategy, parallel, None, None);
    if format == Format::Json {
        use template_deps::jsonl::Json;
        let p = td_semigroup::parser::parse(text).map_err(|e| json_error(&e.to_string()))?;
        let decision = engine.decide(&p).map_err(|e| json_error(&e.to_string()))?;
        println!("{}", serve::wp_reply(&Json::Null, &decision, true, true));
        return Ok(());
    }
    let p = td_semigroup::parser::parse(text).map_err(|e| e.to_string())?;
    print!("{p}");
    let run = engine.run_full(&p).map_err(|e| e.to_string())?;
    let report = structural_report(&run.system);
    println!(
        "reduction: {} attributes, {} dependencies (max {} antecedents)",
        report.n_attributes, report.n_deps, report.max_antecedents
    );
    match &run.outcome {
        PipelineOutcome::Implied { derivation, proof } => {
            println!("verdict: IMPLIED — A0 = 0 is derivable, hence D ⊨ D0");
            let words = derivation
                .replay(&run.normalized.presentation)
                .map_err(|e| e.to_string())?;
            let alphabet = run.normalized.presentation.alphabet();
            println!(
                "derivation ({} steps): {}",
                derivation.len(),
                words
                    .iter()
                    .map(|w| w.render(alphabet))
                    .collect::<Vec<_>>()
                    .join(" => ")
            );
            println!("chase proof: {} firings (verified)", proof.proof.len());
        }
        PipelineOutcome::Refuted { model, report } => {
            println!(
                "verdict: REFUTED — finite countermodel with {} rows (finite D ⊭ D0)",
                model.len()
            );
            let alphabet = run.system.attrs.alphabet();
            for (i, l) in model.labels.iter().enumerate() {
                match l {
                    RowLabel::P(e) => println!("  row {i}: P {e}"),
                    RowLabel::Q(a, s, b) => {
                        println!("  row {i}: Q <{a},{},{b}>", alphabet.name(*s))
                    }
                }
            }
            println!(
                "checks: D holds {}, D0 fails {}, Facts 1/2: {}/{}",
                report.violated_deps.is_empty(),
                report.d0_fails,
                report.fact1,
                report.fact2
            );
        }
        PipelineOutcome::FastSettled { verdict } => {
            if verdict.is_implied() {
                println!("verdict: IMPLIED — settled by the fast path, hence D ⊨ D0");
            } else {
                println!("verdict: REFUTED — settled by the fast path (finite D ⊭ D0)");
            }
            println!("fastpath: {}", verdict.describe(&run.system));
            println!("(re-run with the full solver for the replayable certificates)");
        }
        PipelineOutcome::Unknown {
            derivation_states,
            model_nodes,
        } => {
            println!(
                "verdict: UNKNOWN (searched {derivation_states} words, {model_nodes} model nodes) \
                 — enlarge the budgets; undecidability guarantees this case cannot be eliminated"
            );
        }
    }
    if timings {
        let t = &run.timings;
        println!(
            "timings: normalize {:.2?}, reduce {:.2?}, fastpath {:.2?}, derivation {:.2?}, \
             model {:.2?}, certificate {:.2?}, total {:.2?} (derivation and model race on threads)",
            t.normalize, t.reduce, t.fastpath, t.derivation, t.model, t.certificate, t.total
        );
        // One clause per portfolio lane, in lane order, each in its own
        // work unit — sourced from `lanes()` so a new lane shows up here
        // without another hand-maintained format string.
        let unit = |lane: &str| match lane {
            "fastpath" => "checks",
            "derivation" => "words",
            "model" => "nodes",
            _ => "units",
        };
        let label = |truncated: bool| if truncated { "truncated" } else { "exact" };
        let clauses: Vec<String> = run
            .spend
            .lanes()
            .iter()
            .map(|l| {
                format!(
                    "{} {} {} ({})",
                    l.lane,
                    l.units,
                    unit(l.lane),
                    label(l.truncated)
                )
            })
            .collect();
        println!("spend: {}", clauses.join(", "));
    }
    Ok(())
}

/// Parses one JSONL corpus line into an id and a presentation (the shared
/// serve-protocol instance format; the id defaults to the line number).
fn parse_batch_line(line: &str, line_no: usize) -> Result<(String, Presentation), String> {
    use template_deps::jsonl::Json;
    let j = Json::parse(line).map_err(|e| e.to_string())?;
    serve::parse_instance(&j, &format!("line{line_no}"))
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let mut jobs: Option<usize> = None;
    let mut parallel = Parallelism::default();
    let mut cache_cap: Option<usize> = None;
    let mut cache_stats = false;
    let mut strategy = MatchStrategy::default();
    let mut load_path: Option<String> = None;
    let mut save_path: Option<String> = None;
    let mut path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a number")?;
                jobs = Some(
                    v.parse()
                        .map_err(|_| format!("--jobs: invalid worker count `{v}`"))?,
                );
            }
            "--parallel" => {
                let v = it.next().ok_or("--parallel needs a number")?;
                parallel = parse_parallel(v)?;
            }
            "--cache-cap" => {
                let v = it.next().ok_or("--cache-cap needs a number")?;
                cache_cap = Some(
                    v.parse()
                        .map_err(|_| format!("--cache-cap: invalid capacity `{v}`"))?,
                );
            }
            "--strategy" => {
                let v = it.next().ok_or("--strategy needs a value")?;
                strategy = parse_strategy(v)?;
            }
            "--cache-load" => {
                let v = it.next().ok_or("--cache-load needs a snapshot path")?;
                load_path = Some(v.clone());
            }
            "--cache-save" => {
                let v = it.next().ok_or("--cache-save needs a snapshot path")?;
                save_path = Some(v.clone());
            }
            "--cache-stats" => cache_stats = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown batch option `{other}`\n{USAGE}"));
            }
            other => {
                if path.is_some() {
                    return Err(format!("batch takes exactly one input file\n{USAGE}"));
                }
                path = Some(other);
            }
        }
    }
    let path = path.ok_or_else(|| format!("batch needs an input file\n{USAGE}"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;

    // Parse every line before solving anything, carrying 1-based line
    // numbers into the diagnostics; all invalid lines are reported in one
    // pass rather than one-per-rerun.
    let mut ids = Vec::new();
    let mut items = Vec::new();
    let mut bad_lines: Vec<String> = Vec::new();
    for (ix, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let line_no = ix + 1;
        match parse_batch_line(line, line_no) {
            Ok((id, p)) => {
                ids.push(id);
                items.push(p);
            }
            Err(e) => bad_lines.push(format!("line {line_no}: {e}")),
        }
    }
    if !bad_lines.is_empty() {
        return Err(format!(
            "{} invalid corpus line(s):\n  {}",
            bad_lines.len(),
            bad_lines.join("\n  ")
        ));
    }

    let engine = build_engine(strategy, parallel, jobs, cache_cap);
    if let Some(p) = &load_path {
        cache_load(&engine, p)?;
    }
    let run = engine.solve_batch(&items).map_err(|e| e.to_string())?;
    if let Some(p) = &save_path {
        cache_save(&engine, p)?;
    }
    for (id, verdict) in ids.iter().zip(&run.verdicts) {
        println!("{}", serve::batch_line(id, verdict));
    }
    if cache_stats {
        // The 6-field shape of this line is pinned by the batch golden
        // (`fastpath` counts the solver runs the prescreen settled;
        // `jobs` is the effective solver-pool width, so operators can
        // confirm what a run actually fanned out to); the full accounting
        // (evictions, spend) lives on the serve/json surfaces.
        let s = run.stats;
        println!(
            "{{\"total\":{},\"unique\":{},\"cache_hits\":{},\"solved\":{},\"fastpath\":{},\"jobs\":{}}}",
            s.total,
            s.unique,
            s.cache_hits,
            s.solved,
            s.fastpath,
            engine.jobs()
        );
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut jobs: Option<usize> = None;
    let mut parallel = Parallelism::default();
    let mut cache_cap: Option<usize> = None;
    let mut max_sessions: Option<usize> = None;
    let mut strategy = MatchStrategy::default();
    let mut stdio = false;
    let mut listen: Option<String> = None;
    let mut load_path: Option<String> = None;
    let mut save_path: Option<String> = None;
    let mut flush_every: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stdio" => stdio = true,
            "--cache-load" => {
                let v = it.next().ok_or("--cache-load needs a snapshot path")?;
                load_path = Some(v.clone());
            }
            "--cache-save" => {
                let v = it.next().ok_or("--cache-save needs a snapshot path")?;
                save_path = Some(v.clone());
            }
            "--cache-flush-every" => {
                let v = it.next().ok_or("--cache-flush-every needs seconds")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("--cache-flush-every: invalid seconds `{v}`"))?;
                if n == 0 {
                    return Err("--cache-flush-every: must be at least 1 second".to_owned());
                }
                flush_every = Some(n);
            }
            "--listen" => {
                let v = it.next().ok_or("--listen needs an address (host:port)")?;
                listen = Some(v.clone());
            }
            "--max-sessions" => {
                let v = it.next().ok_or("--max-sessions needs a number")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--max-sessions: invalid session count `{v}`"))?;
                if n == 0 {
                    return Err("--max-sessions: must be at least 1".to_owned());
                }
                max_sessions = Some(n);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a number")?;
                jobs = Some(
                    v.parse()
                        .map_err(|_| format!("--jobs: invalid worker count `{v}`"))?,
                );
            }
            "--parallel" => {
                let v = it.next().ok_or("--parallel needs a number")?;
                parallel = parse_parallel(v)?;
            }
            "--cache-cap" => {
                let v = it.next().ok_or("--cache-cap needs a number")?;
                cache_cap = Some(
                    v.parse()
                        .map_err(|_| format!("--cache-cap: invalid capacity `{v}`"))?,
                );
            }
            "--strategy" => {
                let v = it.next().ok_or("--strategy needs a value")?;
                strategy = parse_strategy(v)?;
            }
            other => {
                return Err(format!("unknown serve option `{other}`\n{USAGE}"));
            }
        }
    }
    if stdio == listen.is_some() {
        return Err(format!(
            "serve needs exactly one of --stdio or --listen ADDR\n{USAGE}"
        ));
    }
    if flush_every.is_some() && save_path.is_none() {
        return Err("--cache-flush-every needs --cache-save PATH".to_owned());
    }
    let engine = build_engine_with(strategy, parallel, jobs, cache_cap, max_sessions);
    if let Some(p) = &load_path {
        cache_load(&engine, p)?;
    }

    // The periodic flusher and the serve loop share one scope, so the
    // flusher is always joined before the final save below — no torn or
    // out-of-order snapshot writes on the way out.
    let done = std::sync::atomic::AtomicBool::new(false);
    let served = std::thread::scope(|s| {
        if let (Some(path), Some(secs)) = (save_path.clone(), flush_every) {
            let engine = &engine;
            let done = &done;
            s.spawn(move || {
                let tick = std::time::Duration::from_millis(100);
                let mut since_flush = std::time::Duration::ZERO;
                // Poll-wait so shutdown is observed within a tick rather
                // than a full flush period.
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    since_flush += tick;
                    if since_flush.as_secs() >= secs {
                        since_flush = std::time::Duration::ZERO;
                        if let Err(e) = cache_save(engine, &path) {
                            eprintln!("tdq: periodic cache flush failed: {e}");
                        }
                    }
                }
            });
        }
        // Run the transport in a closure so *every* exit path — error or
        // clean — flips `done` and joins the flusher.
        let result = (|| {
            if stdio {
                let stdin = std::io::stdin();
                let stdout = std::io::stdout();
                serve::serve_stdio(&engine, stdin.lock(), stdout.lock())
                    .map_err(|e| format!("serve --stdio: {e}"))
            } else {
                let addr = listen.as_deref().expect("checked above");
                let listener = std::net::TcpListener::bind(addr)
                    .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
                let local = listener
                    .local_addr()
                    .map_err(|e| format!("cannot resolve listen address: {e}"))?;
                // The ready line: machine-readable, so tests and scripts
                // can bind port 0 and discover the actual endpoint.
                println!("{{\"serving\":\"{local}\"}}");
                use std::io::Write;
                std::io::stdout()
                    .flush()
                    .map_err(|e| format!("cannot flush ready line: {e}"))?;
                serve::serve_listen(&engine, listener).map_err(|e| format!("serve --listen: {e}"))
            }
        })();
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        result
    });
    served?;
    // Save on the clean-shutdown path only: both transports return `Ok`
    // after the cancellation drain (EOF or a `shutdown` op), so the
    // snapshot reflects a quiesced cache.
    if let Some(p) = &save_path {
        cache_save(&engine, p)?;
    }
    Ok(())
}

fn cmd_normalize(text: &str) -> Result<(), String> {
    let p = td_semigroup::parser::parse(text).map_err(|e| e.to_string())?;
    let n = normalize(&p.zero_saturated()).map_err(|e| e.to_string())?;
    print!("{}", n.presentation);
    if !n.definitions.is_empty() {
        println!("fresh symbols:");
        let alphabet = n.presentation.alphabet();
        for &(s, a, b) in &n.definitions {
            println!(
                "  {} := {} · {}",
                alphabet.name(s),
                alphabet.name(a),
                alphabet.name(b)
            );
        }
    }
    Ok(())
}

fn cmd_reduce(text: &str) -> Result<(), String> {
    let p = td_semigroup::parser::parse(text).map_err(|e| e.to_string())?;
    let n = normalize(&p.zero_saturated()).map_err(|e| e.to_string())?;
    let system = build_system(&n.presentation).map_err(|e| e.to_string())?;
    println!("schema: {}", system.attrs.schema());
    for td in &system.deps {
        println!("{td}");
    }
    println!("{}", system.d0);
    println!(
        "\n# DOT for D0 (pipe into `dot -Tsvg`):\n{}",
        diagram_to_dot(&Diagram::from_td(&system.d0), "D0")
    );
    Ok(())
}
