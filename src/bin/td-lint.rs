//! `td-lint` — the workspace's own static-analysis driver.
//!
//! Runs the four td-analysis passes (lock-discipline, budget-poll,
//! panic-path, doc-error-hygiene) over the workspace sources and prints
//! positioned `file:line:col` diagnostics.
//!
//! ```text
//! td-lint [--format text|json] [--fixtures] [ROOT]
//! ```
//!
//! * `--format json` emits one NDJSON object per finding (reusing the
//!   serve layer's `jsonl` writer), for CI and tooling.
//! * `--fixtures` self-tests the passes against the checked-in
//!   known-good/known-bad snippets under `crates/analysis/fixtures/`.
//! * `ROOT` defaults to the enclosing workspace root (found by walking up
//!   from the current directory to a `Cargo.toml` containing
//!   `[workspace]`).
//!
//! Exit codes: `0` clean, `1` findings (or fixture failures), `2` usage
//! or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use td_analysis::source::Diagnostic;
use template_deps::jsonl::Json;

fn main() -> ExitCode {
    let mut format_json = false;
    let mut fixtures = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!("td-lint: --format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--fixtures" => fixtures = true,
            "--help" | "-h" => {
                eprintln!("usage: td-lint [--format text|json] [--fixtures] [ROOT]");
                return ExitCode::SUCCESS;
            }
            _ if root.is_none() && !a.starts_with('-') => root = Some(PathBuf::from(a)),
            _ => {
                eprintln!("td-lint: unrecognized argument `{a}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("td-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if fixtures {
        return run_fixture_mode(&root);
    }

    let diags = match td_analysis::run_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("td-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for d in &diags {
        if format_json {
            println!("{}", render_json(d));
        } else {
            println!("{d}");
        }
    }
    if diags.is_empty() {
        if !format_json {
            println!("td-lint: workspace clean");
        }
        ExitCode::SUCCESS
    } else {
        if !format_json {
            println!("td-lint: {} finding(s)", diags.len());
        }
        ExitCode::FAILURE
    }
}

/// Renders one diagnostic as a single NDJSON line via the serve layer's
/// `jsonl` writer — the same code path the wire protocol uses, so the
/// output is parseable by anything that already reads tdq output.
fn render_json(d: &Diagnostic) -> String {
    Json::Obj(vec![
        ("pass".to_string(), Json::from(d.pass.as_str())),
        ("file".to_string(), Json::from(d.file.as_str())),
        ("line".to_string(), Json::from(d.line as u64)),
        ("col".to_string(), Json::from(d.col as u64)),
        ("msg".to_string(), Json::from(d.msg.as_str())),
    ])
    .render()
}

/// Self-test against the fixture suite.
fn run_fixture_mode(root: &Path) -> ExitCode {
    let dir = root.join("crates/analysis/fixtures");
    match td_analysis::run_fixtures(&dir) {
        Ok(failures) if failures.is_empty() => {
            println!("td-lint: fixtures ok");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            for f in &failures {
                eprintln!("td-lint: fixture {}: {}", f.file, f.msg);
            }
            eprintln!("td-lint: {} fixture failure(s)", failures.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("td-lint: cannot read fixtures at {}: {e}", dir.display());
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the first `Cargo.toml`
/// containing a `[workspace]` table.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(
                "no workspace root found above the current directory (pass ROOT explicitly)"
                    .to_string(),
            );
        }
    }
}
