//! # template-deps
//!
//! A comprehensive Rust reproduction of
//!
//! > Yuri Gurevich and Harry R. Lewis, *The Inference Problem for Template
//! > Dependencies*, Information and Control 55, 69–79 (1982); preliminary
//! > version in PODS 1982.
//!
//! The paper proves that the inference problem for typed template
//! dependencies — given a finite set `D` of dependencies and a single
//! dependency `D₀`, does `D₀` hold in every database satisfying `D`? — is
//! **undecidable**, over finite databases and over unrestricted ones, via a
//! reduction from the word problem for cancellation semigroups with zero.
//!
//! This facade re-exports the three library crates:
//!
//! * [`td_core`] — typed template dependencies, relational instances (tuple
//!   and equivalence-partition views), Fagin-style diagrams, satisfaction,
//!   the chase (restricted/oblivious, budgeted, certificate-producing),
//!   semi-decision of implication plus an exact decision procedure for full
//!   TDs, EIDs as the baseline class, a naive finite countermodel search,
//!   and a small text format.
//! * [`td_semigroup`] — the substrate: words, zero-saturated presentations,
//!   normalization to `(2,1)` equations, BFS derivation search with
//!   replayable certificates, rewriting, bounded congruence closure, finite
//!   semigroups as Cayley tables with the paper's cancellation conditions
//!   (i)/(ii), identity adjunction, analytic countermodel families, and a
//!   backtracking finite-model finder.
//! * [`td_reduction`] — the paper's contribution as an executable object:
//!   the `2n+2`-attribute scheme, the dependencies `D1…D4` per equation and
//!   the goal `D₀` (Fig. 3), bridges (Fig. 2), part (A) — derivation ⇒
//!   verified chase proof of `D ⊨ D₀` — and part (B) — finite cancellation
//!   semigroup ⇒ finite database satisfying `D` but violating `D₀` — plus
//!   an end-to-end pipeline and independent verifiers.
//!
//! ## Where to start
//!
//! ```
//! use template_deps::prelude::*;
//!
//! // A word-problem instance: A1·A1 = A0 and A1·A1 = 0  (so A0 ⇒* 0).
//! let p = td_semigroup::parser::parse(
//!     "alphabet A0 A1 0\neq A1 A1 = A0\neq A1 A1 = 0\nzerosat\n",
//! ).unwrap();
//!
//! // Run the full reduction pipeline.
//! let run = solve(&p, &Budgets::default()).unwrap();
//! assert!(run.outcome.is_implied()); // D ⊨ D0, with a replayable proof
//! ```
//!
//! See `examples/` for richer scenarios and `DESIGN.md` / `EXPERIMENTS.md`
//! for the experiment index.

#![forbid(unsafe_code)]

pub use td_core;
pub use td_reduction;
pub use td_semigroup;

pub mod jsonl;
pub mod serve;

/// One-stop re-exports spanning all three crates.
pub mod prelude {
    pub use td_core::prelude::*;
    pub use td_reduction::prelude::*;
    pub use td_semigroup::prelude::*;
}
