//! A known-good snippet: clean under every td-lint pass. Guards are
//! dropped before solver entry, nested loops reach a poll, nothing on
//! the happy path panics, and every fallible contract documents its
//! errors. Fixtures are lexed, never compiled, so the helper types are
//! free-standing.

use std::sync::Mutex;

/// Parses a count.
///
/// # Errors
///
/// Fails when `s` is not a decimal number.
pub fn parse_count(s: &str) -> Result<u32, String> {
    s.trim().parse().map_err(|_| format!("bad count `{s}`"))
}

/// Reads the shared counter, releasing the guard before solver entry.
pub fn snapshot_then_solve(m: &Mutex<u32>) -> u32 {
    let guard = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let seed = *guard;
    drop(guard);
    solve_from(seed)
}

/// A nested sweep that stays interruptible: the outer body ticks the
/// budget once per row.
pub fn sweep(grid: &[Vec<u32>], ticker: &mut Ticker) -> u32 {
    let mut total = 0;
    for row in grid {
        ticker.tick();
        for x in row {
            total += *x;
        }
    }
    total
}

/// A bounded nested sweep justified by annotation instead of a poll.
pub fn bounded_sweep(rows: &[u32]) -> u32 {
    let mut total = 0;
    // td-lint: allow(budget-poll) bounded sweep over an in-memory table,
    // charged by the caller's ticker before entry.
    for r in rows {
        for _ in 0..*r {
            total += 1;
        }
    }
    total
}

/// An unbounded drain that polls its cancellation token.
pub fn drain(cancel: &Cancellation) {
    while has_work() {
        if cancel.is_cancelled() {
            break;
        }
        step();
    }
}

fn solve_from(seed: u32) -> u32 {
    seed
}

fn has_work() -> bool {
    false
}

fn step() {}
