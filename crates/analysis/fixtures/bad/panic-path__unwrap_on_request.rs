//! Known-bad: `.unwrap()` on a request path. An empty input panics the
//! handler thread instead of producing an error envelope.

/// Returns the first element.
pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}
