//! Known-bad: a mutex guard held live across a solver entry point. The
//! solver can block for the whole search budget, so every other thread
//! queuing on this lock stalls behind one request.

use std::sync::Mutex;

/// Reads the seed and solves while still holding the lock.
pub fn ask(m: &Mutex<u32>) -> u32 {
    let guard = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let seed = *guard;
    let answer = solve_from(seed);
    drop(guard);
    answer
}

fn solve_from(seed: u32) -> u32 {
    seed
}
