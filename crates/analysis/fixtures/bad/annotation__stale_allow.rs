//! Known-bad: a `td-lint: allow` that suppresses nothing. Stale allows
//! are errors so that suppressions cannot outlive the code they were
//! written for.

/// Adds one.
pub fn bump(x: u32) -> u32 {
    // td-lint: allow(panic-path) nothing on the next line can panic
    x + 1
}
