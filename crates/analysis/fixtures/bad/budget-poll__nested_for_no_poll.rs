//! Known-bad: a nested `for` whose body never reaches a Ticker or
//! Cancellation poll — the shape that wedges a serve worker when the
//! data is adversarially large.

/// Sums a grid without ever observing the budget.
pub fn sweep(grid: &[Vec<u32>]) -> u32 {
    let mut total = 0;
    for row in grid {
        for x in row {
            total += *x;
        }
    }
    total
}
