//! Known-bad: a `pub fn` returning `Result` whose docs are silent about
//! when it goes wrong — the caller cannot decide whether to retry,
//! propagate, or envelope without reading the body.

/// Parses the input.
pub fn parse_count(s: &str) -> Result<u32, String> {
    s.trim().parse().map_err(|_| "not a number".to_string())
}
