//! The two dogfooding gates, runnable as plain `cargo test`:
//!
//! 1. the workspace itself must lint clean under every td-lint pass
//!    (violations are either fixed or carry a justified
//!    `td-lint: allow`), and
//! 2. the checked-in fixture suite must behave — every `ok/` snippet
//!    clean, every `bad/` snippet caught by the pass its name claims.
//!
//! These are the same checks `td-lint` and `td-lint --fixtures` run; the
//! test form keeps them inside the tier-1 `cargo test` gate.

use std::path::{Path, PathBuf};

/// `crates/analysis` → the workspace root.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis has a grandparent")
        .to_path_buf()
}

#[test]
fn workspace_lints_clean() {
    let diags = td_analysis::run_workspace(&workspace_root()).expect("scan workspace sources");
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(
        diags.is_empty(),
        "td-lint found {} violation(s); fix them or justify each with a \
         `// td-lint: allow(<pass>) <reason>`:\n{}",
        diags.len(),
        rendered.join("\n")
    );
}

#[test]
fn fixtures_behave() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let failures = td_analysis::run_fixtures(&dir).expect("read fixture tree");
    let rendered: Vec<String> = failures
        .iter()
        .map(|f| format!("{}: {}", f.file, f.msg))
        .collect();
    assert!(
        failures.is_empty(),
        "fixture expectations failed:\n{}",
        rendered.join("\n")
    );
}
