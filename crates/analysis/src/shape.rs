//! Shallow shape recovery over the token stream: function items and loop
//! expressions. This is deliberately not a parser — it finds the spans the
//! passes need (function bodies, loop bodies) by delimiter matching, and
//! is documented as lexical in `docs/ANALYSIS.md`.

use crate::source::SourceFile;

/// A discovered `fn` item (or nested fn).
#[derive(Debug, Clone)]
pub struct Func {
    /// The function name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub kw_idx: usize,
    /// Token index of the name identifier.
    pub name_idx: usize,
    /// Body brace group as `(open, close)` token indices; `None` for
    /// bodyless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
}

/// Which loop keyword introduced a [`Loop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `loop { … }`
    Loop,
    /// `while … { … }` (including `while let`)
    While,
    /// `for … in … { … }`
    For,
}

impl LoopKind {
    /// The source keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            LoopKind::Loop => "loop",
            LoopKind::While => "while",
            LoopKind::For => "for",
        }
    }
}

/// A discovered loop expression.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Which keyword introduced it.
    pub kind: LoopKind,
    /// Token index of the keyword.
    pub kw_idx: usize,
    /// Body brace group as `(open, close)` token indices.
    pub body: (usize, usize),
    /// `true` if another loop starts inside this one's body.
    pub nested: bool,
}

/// Finds every `fn` item in the file by scanning for the keyword and
/// skipping balanced groups to the body brace (or a `;` for bodyless
/// declarations). `fn`-pointer types (`fn(…) -> …`) are skipped because
/// they have no name identifier after the keyword.
pub fn functions(sf: &SourceFile) -> Vec<Func> {
    let mut out = Vec::new();
    for (i, t) in sf.tokens.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name_tok) = sf.tok(i + 1) else {
            continue;
        };
        if name_tok.kind != crate::lexer::TokKind::Ident {
            continue; // `fn(…)` pointer type
        }
        let sig_end = sf.scan_at_level(i + 2, |t| t.is_punct('{') || t.is_punct(';'));
        let body = match sig_end {
            Some(j) if sf.tokens[j].is_punct('{') => sf.close_of(j).map(|c| (j, c)),
            _ => None,
        };
        out.push(Func {
            name: name_tok.text.clone(),
            kw_idx: i,
            name_idx: i + 1,
            body,
        });
    }
    out
}

/// Finds every loop expression. A `for` token only counts as a loop when
/// an `in` appears at nesting level between the keyword and the body brace
/// (this is what separates `for x in xs { … }` from `impl T for U { … }`
/// and higher-ranked `for<'a>` binders).
pub fn loops(sf: &SourceFile) -> Vec<Loop> {
    let mut out: Vec<Loop> = Vec::new();
    for (i, t) in sf.tokens.iter().enumerate() {
        let kind = if t.is_ident("loop") {
            LoopKind::Loop
        } else if t.is_ident("while") {
            LoopKind::While
        } else if t.is_ident("for") {
            LoopKind::For
        } else {
            continue;
        };
        let Some(body_open) = sf.scan_at_level(i + 1, |t| t.is_punct('{')) else {
            continue;
        };
        if kind == LoopKind::For {
            let has_in = (i + 1..body_open).any(|j| sf.tokens[j].is_ident("in"));
            if !has_in {
                continue;
            }
        }
        let Some(body_close) = sf.close_of(body_open) else {
            continue;
        };
        out.push(Loop {
            kind,
            kw_idx: i,
            body: (body_open, body_close),
            nested: false,
        });
    }
    let spans: Vec<(usize, usize, usize)> =
        out.iter().map(|l| (l.kw_idx, l.body.0, l.body.1)).collect();
    for l in &mut out {
        l.nested = spans
            .iter()
            .any(|&(kw, _, _)| kw > l.body.0 && kw < l.body.1);
    }
    out
}

/// The innermost brace group strictly containing token `idx`, if any.
pub fn enclosing_block(sf: &SourceFile, idx: usize) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize)> = None;
    for (i, t) in sf.tokens.iter().enumerate() {
        if i >= idx {
            break;
        }
        if t.is_punct('{') {
            if let Some(c) = sf.close_of(i) {
                if c > idx && best.is_none_or(|(b, _)| i > b) {
                    best = Some((i, c));
                }
            }
        }
    }
    best
}

/// Walks backward from `idx` to the start of the enclosing statement:
/// the token right after the previous `;`, `{`, or `}` at this nesting
/// level (complete groups are jumped over, so a `;` inside a nested
/// closure does not terminate the scan).
pub fn statement_start(sf: &SourceFile, idx: usize) -> usize {
    let mut i = idx;
    while i > 0 {
        let j = i - 1;
        let t = &sf.tokens[j];
        if t.is_punct('}') {
            // A complete sibling block (`if { … }`, a `match` statement)
            // ends here. Treating every closed brace group as a boundary
            // shortens liveness for `let g = match … { … }.lock()`-style
            // statements — conservative in the safe direction.
            return j + 1;
        }
        if t.is_punct(')') || t.is_punct(']') {
            // Jump over the complete group (it closes before `idx`).
            match sf.match_of.get(j) {
                Some(&open) if open != usize::MAX && open < j => {
                    i = open;
                    continue;
                }
                _ => return j + 1,
            }
        }
        if t.is_punct(';') || t.is_punct('{') {
            return j + 1;
        }
        i = j;
    }
    0
}

/// Walks forward from `idx` to the end of the enclosing statement: the
/// next `;` at this nesting level, stepping *out* of any groups `idx` is
/// nested inside, but never past the end of the enclosing block. Returns
/// the index of the terminating token.
pub fn statement_end(sf: &SourceFile, idx: usize) -> usize {
    let mut i = idx;
    while i < sf.tokens.len() {
        let t = &sf.tokens[i];
        if t.is_punct(';') {
            return i;
        }
        if t.is_punct('}') {
            return i; // end of enclosing block: statement ends here
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            match sf.close_of(i) {
                Some(c) => {
                    i = c + 1;
                    continue;
                }
                None => return sf.tokens.len().saturating_sub(1),
            }
        }
        if t.is_punct(')') || t.is_punct(']') {
            // Stepping out of a group idx was nested in.
            i += 1;
            continue;
        }
        i += 1;
    }
    sf.tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("t.rs", src)
    }

    #[test]
    fn finds_functions_and_bodies() {
        let sf = parse("pub fn a(x: u32) -> bool { x > 0 }\nfn b<T: Fn(u8) -> u8>(f: T) {}\ntrait T { fn c(&self); }");
        let fns = functions(&sf);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert!(fns[0].body.is_some());
        assert!(fns[1].body.is_some());
        assert!(fns[2].body.is_none());
    }

    #[test]
    fn loops_vs_impl_for() {
        let src = "impl Display for Foo { fn f(&self) { for x in 0..3 { g(x); } while x { h(); } loop { break; } } }";
        let sf = parse(src);
        let ls = loops(&sf);
        let kinds: Vec<_> = ls.iter().map(|l| l.kind).collect();
        assert_eq!(kinds, [LoopKind::For, LoopKind::While, LoopKind::Loop]);
    }

    #[test]
    fn nested_detection() {
        let sf = parse("fn f() { for a in x { for b in y { g(); } } while c { h(); } }");
        let ls = loops(&sf);
        assert!(ls[0].nested);
        assert!(!ls[1].nested);
        assert!(!ls[2].nested);
    }

    #[test]
    fn statement_boundaries() {
        let sf = parse("fn f() { let a = g(1, 2); let b = h(); }");
        // index of `h`
        let h = sf.tokens.iter().position(|t| t.is_ident("h")).unwrap();
        let start = statement_start(&sf, h);
        assert!(sf.tokens[start].is_ident("let"));
        let end = statement_end(&sf, h);
        assert!(sf.tokens[end].is_punct(';'));
    }

    #[test]
    fn statement_start_skips_nested_groups() {
        let sf = parse("fn f() { let a = g(|x| { x; }, 2).h(); }");
        let h = sf.tokens.iter().position(|t| t.is_ident("h")).unwrap();
        let start = statement_start(&sf, h);
        assert!(sf.tokens[start].is_ident("let"));
    }

    #[test]
    fn enclosing_block_is_innermost() {
        let sf = parse("fn f() { { let a = 1; } let b = 2; }");
        let b = sf.tokens.iter().position(|t| t.is_ident("b")).unwrap();
        let (open, close) = enclosing_block(&sf, b).unwrap();
        assert!(sf.tokens[open].is_punct('{'));
        assert_eq!(close, sf.tokens.len() - 1);
    }
}
