//! The analysed view of one source file: token stream, matching-delimiter
//! map, `#[cfg(test)]` regions, and parsed `td-lint: allow` annotations.

use crate::lexer::{lex, Comment, CommentKind, Token};

/// The annotation grammar: `// td-lint: allow(<pass>) <reason>`.
///
/// The reason is mandatory — an allow with no stated justification is a
/// grammar error, and an allow that suppresses nothing is *stale* and also
/// an error (both are reported by the framework under the `annotation`
/// pass). An annotation on its own line governs the next line that carries
/// code; a trailing annotation governs its own line.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The pass this annotation silences.
    pub pass: String,
    /// The justification text (non-empty by construction).
    pub reason: String,
    /// The line the annotation *governs* (not necessarily its own line).
    pub target_line: u32,
    /// The line the annotation sits on (for stale-allow reporting).
    pub line: u32,
}

/// One lint finding, positioned `file:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Name of the pass that produced the finding (or `annotation` for
    /// framework findings about the allow annotations themselves).
    pub pass: String,
    /// Path of the offending file, as handed to the driver.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.pass, self.msg
        )
    }
}

/// A lexed, pre-analysed source file ready for passes to inspect.
#[derive(Debug)]
pub struct SourceFile {
    /// The path, as handed to the driver (used verbatim in diagnostics).
    pub path: String,
    /// The token stream (comments and string contents stripped).
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    /// For each token index holding `(`/`[`/`{`, the index of its matching
    /// close token (and vice versa). `usize::MAX` when unbalanced.
    pub match_of: Vec<usize>,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(u32, u32)>,
    /// Parsed, well-formed `td-lint: allow` annotations.
    pub allows: Vec<Allow>,
    /// Grammar errors found while parsing annotations.
    pub annotation_errors: Vec<Diagnostic>,
}

/// The passes an annotation may name. Kept here so the annotation parser
/// can reject unknown names without a cycle onto the pass registry.
pub const PASS_NAMES: [&str; 4] = [
    "lock-discipline",
    "budget-poll",
    "panic-path",
    "doc-error-hygiene",
];

impl SourceFile {
    /// Lexes and pre-analyses `text` as the contents of `path`.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let lexed = lex(text);
        let match_of = match_delimiters(&lexed.tokens);
        let test_regions = find_test_regions(&lexed.tokens, &match_of);
        let mut sf = SourceFile {
            path: path.to_string(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            match_of,
            test_regions,
            allows: Vec::new(),
            annotation_errors: Vec::new(),
        };
        sf.parse_allows();
        sf
    }

    /// `true` if `line` falls inside a `#[cfg(test)]`/`#[test]` region.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// The token at `idx`, if in range.
    pub fn tok(&self, idx: usize) -> Option<&Token> {
        self.tokens.get(idx)
    }

    /// The matching close index for the open delimiter at `idx`.
    pub fn close_of(&self, idx: usize) -> Option<usize> {
        match self.match_of.get(idx) {
            Some(&m) if m != usize::MAX => Some(m),
            _ => None,
        }
    }

    /// Walks forward from `idx` skipping over complete delimiter groups,
    /// returning the index of the first token satisfying `stop` at the
    /// current nesting level.
    pub fn scan_at_level(&self, mut idx: usize, stop: impl Fn(&Token) -> bool) -> Option<usize> {
        while let Some(t) = self.tokens.get(idx) {
            if stop(t) {
                return Some(idx);
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                idx = self.close_of(idx)? + 1;
            } else {
                idx += 1;
            }
        }
        None
    }

    /// Parses every `// td-lint:` comment into [`Allow`] records or
    /// grammar-error diagnostics.
    fn parse_allows(&mut self) {
        for c in &self.comments {
            if c.kind != CommentKind::Line {
                continue;
            }
            let Some(rest) = c.text.strip_prefix("td-lint:") else {
                continue;
            };
            let rest = rest.trim();
            let err = |msg: String| Diagnostic {
                pass: "annotation".to_string(),
                file: self.path.clone(),
                line: c.line,
                col: c.col,
                msg,
            };
            let Some(args) = rest.strip_prefix("allow(") else {
                self.annotation_errors.push(err(format!(
                    "unrecognized td-lint annotation `{}` (expected `allow(<pass>) <reason>`)",
                    c.text
                )));
                continue;
            };
            let Some(close) = args.find(')') else {
                self.annotation_errors
                    .push(err("unclosed `allow(` in td-lint annotation".to_string()));
                continue;
            };
            let pass = args[..close].trim();
            let reason = args[close + 1..].trim();
            if !PASS_NAMES.contains(&pass) {
                self.annotation_errors.push(err(format!(
                    "unknown pass `{pass}` in td-lint allow (known: {})",
                    PASS_NAMES.join(", ")
                )));
                continue;
            }
            if reason.is_empty() {
                self.annotation_errors.push(err(format!(
                    "td-lint allow({pass}) has no reason; every allow must justify itself"
                )));
                continue;
            }
            let target_line = self.allow_target_line(c.line);
            self.allows.push(Allow {
                pass: pass.to_string(),
                reason: reason.to_string(),
                target_line,
                line: c.line,
            });
        }
    }

    /// A trailing annotation governs its own line; a whole-line annotation
    /// governs the next line that carries a token.
    fn allow_target_line(&self, comment_line: u32) -> u32 {
        if self.tokens.iter().any(|t| t.line == comment_line) {
            return comment_line;
        }
        self.tokens
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > comment_line)
            .min()
            .unwrap_or(comment_line)
    }
}

/// Builds the matching-delimiter map with a stack walk. Unbalanced files
/// (mid-edit, macro fragments) leave `usize::MAX` entries rather than
/// failing the run.
fn match_delimiters(tokens: &[Token]) -> Vec<usize> {
    let mut map = vec![usize::MAX; tokens.len()];
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        for (open, close) in [('(', ')'), ('[', ']'), ('{', '}')] {
            if t.is_punct(open) {
                stack.push((open, i));
            } else if t.is_punct(close) {
                if let Some(pos) = stack.iter().rposition(|&(o, _)| o == open) {
                    let (_, j) = stack.remove(pos);
                    map[i] = j;
                    map[j] = i;
                }
            }
        }
    }
    map
}

/// Finds line spans of items guarded by `#[cfg(test)]` or `#[test]`: after
/// the attribute, the next brace group at the item level is the body; its
/// line span (attribute line through closing brace) is excluded from
/// linting. Passes treat these regions as out of scope — test code is
/// allowed to unwrap, spin, and panic.
fn find_test_regions(tokens: &[Token], match_of: &[usize]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let open = i + 1;
        let close = match match_of.get(open) {
            Some(&c) if c != usize::MAX => c,
            _ => {
                i += 1;
                continue;
            }
        };
        let inner: Vec<&str> = tokens[open + 1..close]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        let is_test_attr = inner.first() == Some(&"test")
            || (inner.first() == Some(&"cfg") && inner.contains(&"test"));
        if !is_test_attr {
            i = close + 1;
            continue;
        }
        // Skip any further attributes, then find the item body brace.
        let mut j = close + 1;
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            match match_of.get(j + 1) {
                Some(&c) if c != usize::MAX => j = c + 1,
                _ => break,
            }
        }
        // Scan to the first `{` at this level (a `;` means no body).
        let mut k = j;
        let mut body: Option<(usize, usize)> = None;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('{') {
                if let Some(&c) = match_of.get(k) {
                    if c != usize::MAX {
                        body = Some((k, c));
                    }
                }
                break;
            }
            if t.is_punct('(') || t.is_punct('[') {
                match match_of.get(k) {
                    Some(&c) if c != usize::MAX => k = c + 1,
                    _ => break,
                }
            } else {
                k += 1;
            }
        }
        if let Some((_, body_close)) = body {
            regions.push((tokens[i].line, tokens[body_close].line));
            i = body_close + 1;
        } else {
            i = close + 1;
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delimiters_match() {
        let sf = SourceFile::parse("t.rs", "fn f(a: u32) { g([1, 2]); }");
        let open_paren = sf.tokens.iter().position(|t| t.is_punct('(')).unwrap();
        let close = sf.close_of(open_paren).unwrap();
        assert!(sf.tokens[close].is_punct(')'));
        let open_brace = sf.tokens.iter().position(|t| t.is_punct('{')).unwrap();
        assert!(sf.tokens[sf.close_of(open_brace).unwrap()].is_punct('}'));
    }

    #[test]
    fn cfg_test_mod_region_detected() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let sf = SourceFile::parse("t.rs", src);
        assert_eq!(sf.test_regions, vec![(2, 5)]);
        assert!(!sf.in_test_region(1));
        assert!(sf.in_test_region(4));
        assert!(!sf.in_test_region(6));
    }

    #[test]
    fn test_fn_with_extra_attrs_detected() {
        let src = "#[test]\n#[ignore]\nfn slow() {\n  body();\n}";
        let sf = SourceFile::parse("t.rs", src);
        assert_eq!(sf.test_regions, vec![(1, 5)]);
    }

    #[test]
    fn allow_parsing_and_targeting() {
        let src = "\
// td-lint: allow(panic-path) poisoning is unreachable: no panic while held
let x = m.lock().unwrap();
let y = 1; // td-lint: allow(budget-poll) bounded by arity
";
        let sf = SourceFile::parse("t.rs", src);
        assert_eq!(sf.allows.len(), 2);
        assert_eq!(sf.allows[0].pass, "panic-path");
        assert_eq!(sf.allows[0].target_line, 2);
        assert_eq!(sf.allows[1].pass, "budget-poll");
        assert_eq!(sf.allows[1].target_line, 3);
        assert!(sf.annotation_errors.is_empty());
    }

    #[test]
    fn allow_grammar_errors() {
        let src = "\
// td-lint: allow(no-such-pass) reason here
// td-lint: allow(panic-path)
// td-lint: disallow(panic-path) huh
";
        let sf = SourceFile::parse("t.rs", src);
        assert!(sf.allows.is_empty());
        assert_eq!(sf.annotation_errors.len(), 3);
        assert!(sf.annotation_errors[0].msg.contains("unknown pass"));
        assert!(sf.annotation_errors[1].msg.contains("no reason"));
        assert!(sf.annotation_errors[2].msg.contains("unrecognized"));
    }
}
