//! **doc-error-hygiene**: every `pub fn` returning a `Result` must
//! document its error conditions. A caller deciding whether to propagate,
//! retry, or envelope an error needs the conditions in the contract, not
//! in the body.
//!
//! "Documents its error conditions" is satisfied by an `# Errors` section
//! or by doc prose mentioning the error/failure cases (the tree's house
//! style documents errors inline: "Returns an error when …"). A `pub fn`
//! with no doc comment at all, or docs silent about errors, is flagged.

use super::Pass;
use crate::lexer::{CommentKind, TokKind};
use crate::shape::functions;
use crate::source::{Diagnostic, SourceFile};

/// See the module docs.
#[derive(Debug)]
pub struct DocErrorHygiene;

/// Lower-cased needles accepted as error documentation.
const ERROR_NEEDLES: [&str; 4] = ["error", "errs", "err(", "fail"];

impl Pass for DocErrorHygiene {
    fn name(&self) -> &'static str {
        "doc-error-hygiene"
    }

    fn check(&self, sf: &SourceFile, out: &mut Vec<Diagnostic>) {
        for f in functions(sf) {
            let kw = &sf.tokens[f.kw_idx];
            if sf.in_test_region(kw.line) {
                continue;
            }
            let Some(pub_idx) = public_fn(sf, f.kw_idx) else {
                continue;
            };
            if !returns_result(sf, &f) {
                continue;
            }
            let docs = doc_text_above(sf, pub_idx);
            let lower = docs.to_lowercase();
            if ERROR_NEEDLES.iter().any(|n| lower.contains(n)) {
                continue;
            }
            out.push(Diagnostic {
                pass: "doc-error-hygiene".to_string(),
                file: sf.path.clone(),
                line: kw.line,
                col: kw.col,
                msg: format!(
                    "pub fn `{}` returns `Result` but its docs never state when it \
                     errs; add an `# Errors` note",
                    f.name
                ),
            });
        }
    }
}

/// If the `fn` at `kw_idx` is `pub` (not `pub(crate)`), the token index
/// of the `pub` keyword. Qualifiers (`const`, `async`, `unsafe`,
/// `extern "C"`) between `pub` and `fn` are skipped.
fn public_fn(sf: &SourceFile, kw_idx: usize) -> Option<usize> {
    let mut i = kw_idx;
    while i > 0 {
        let prev = &sf.tokens[i - 1];
        if prev.is_ident("const")
            || prev.is_ident("async")
            || prev.is_ident("unsafe")
            || prev.is_ident("extern")
            || prev.kind == TokKind::Literal
        {
            i -= 1;
            continue;
        }
        if prev.is_ident("pub") {
            return Some(i - 1);
        }
        return None; // includes `pub(crate) fn`: prev is `)`
    }
    None
}

/// `true` when the signature (tokens from the name to the body brace or
/// `;`) contains `-> … Result`.
fn returns_result(sf: &SourceFile, f: &crate::shape::Func) -> bool {
    let sig_end = match f.body {
        Some((open, _)) => open,
        None => sf
            .scan_at_level(f.name_idx + 1, |t| t.is_punct(';'))
            .unwrap_or(sf.tokens.len()),
    };
    // Walk the signature at delimiter level 0 (skipping paren/bracket
    // groups, so closure-type arrows in parameters are invisible) and
    // track `<…>` generic depth manually, so arrows inside generic bounds
    // (`F: Fn() -> u8`) are not mistaken for the return arrow.
    let mut i = f.name_idx + 1;
    let mut angle: usize = 0;
    let mut seen_arrow = false;
    while i < sig_end {
        let t = &sf.tokens[i];
        if t.is_punct('-') && sf.tok(i + 1).is_some_and(|n| n.is_punct('>')) {
            if angle == 0 {
                seen_arrow = true;
            }
            i += 2; // never let the arrow's `>` close a generic bracket
            continue;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            match sf.close_of(i) {
                Some(c) => {
                    i = c + 1;
                    continue;
                }
                None => return false,
            }
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = angle.saturating_sub(1);
        } else if seen_arrow && t.is_ident("where") && angle == 0 {
            return false; // `where` ends the return type
        } else if seen_arrow && t.is_ident("Result") {
            return true;
        }
        i += 1;
    }
    false
}

/// The contiguous doc-comment text immediately above the item whose first
/// token is at `item_idx` (walking over any attribute lines between the
/// docs and the item).
fn doc_text_above(sf: &SourceFile, item_idx: usize) -> String {
    // Walk backward over attributes: `#` `[` … `]` groups directly above.
    let mut i = item_idx;
    while i >= 2 && sf.tokens[i - 1].is_punct(']') {
        match sf.match_of.get(i - 1) {
            Some(&open) if open != usize::MAX && open >= 1 && sf.tokens[open - 1].is_punct('#') => {
                i = open - 1;
            }
            _ => break,
        }
    }
    let first_line = sf.tokens[i].line;
    // Collect doc comments on consecutive lines ending at first_line - 1.
    let mut parts: Vec<&str> = Vec::new();
    let mut expect = first_line.saturating_sub(1);
    for c in sf.comments.iter().rev() {
        if c.line > expect {
            continue;
        }
        if c.line < expect {
            break;
        }
        match c.kind {
            CommentKind::DocLine | CommentKind::DocBlock => {
                parts.push(&c.text);
                expect = c.line.saturating_sub(1);
            }
            _ => break,
        }
    }
    parts.reverse();
    parts.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::run_passes;

    fn findings(src: &str) -> Vec<Diagnostic> {
        let sf = SourceFile::parse("t.rs", src);
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(DocErrorHygiene)];
        run_passes(&sf, &passes)
    }

    #[test]
    fn undocumented_result_fn_is_flagged() {
        let d = findings("/// Does a thing.\npub fn f() -> Result<u32, E> { g() }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("`f`"));
    }

    #[test]
    fn errors_section_is_accepted() {
        let src = "/// Does a thing.\n///\n/// # Errors\n/// Fails when the input is empty.\npub fn f() -> Result<u32, E> { g() }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn inline_error_prose_is_accepted() {
        let src = "/// Returns an error when the schema mismatches.\npub fn f() -> Result<u32, E> { g() }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn private_and_non_result_fns_are_exempt() {
        assert!(findings("fn f() -> Result<u32, E> { g() }").is_empty());
        assert!(findings("/// Doc.\npub fn f() -> u32 { 1 }").is_empty());
        assert!(findings("/// Doc.\npub(crate) fn f() -> Result<u32, E> { g() }").is_empty());
    }

    #[test]
    fn attributes_between_docs_and_fn_are_transparent() {
        let src = "/// # Errors\n/// When g fails.\n#[inline]\n#[must_use]\npub fn f() -> Result<u32, E> { g() }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn result_in_where_clause_is_not_a_return() {
        let src = "/// Doc.\npub fn f<T>(t: T) where T: Into<Result<u32, E>> { }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn no_docs_at_all_is_flagged() {
        let d = findings("pub fn f() -> Result<u32, E> { g() }");
        assert_eq!(d.len(), 1);
    }
}
