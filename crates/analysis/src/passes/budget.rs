//! **budget-poll**: every loop body in the search/chase hot paths must
//! reach a budget or cancellation poll. The inference problem is
//! undecidable, so *every* potentially long-running loop has to stay
//! interruptible — a loop that neither ticks a [`Ticker`] nor polls a
//! [`Cancellation`] can wedge a serve worker forever.
//!
//! `loop` and `while` bodies are checked unconditionally (they are the
//! potentially unbounded shapes). `for` bodies are checked only when they
//! contain another loop: flat `for` loops over rows/columns are bounded by
//! data already in memory, and flagging them all would drown the signal —
//! the calibration is documented in `docs/ANALYSIS.md`.
//!
//! A body "reaches a poll" if it lexically contains a poll token
//! (`tick`, `poll`, `poll_cancelled`, `is_cancelled`) or a call to a
//! function in the same file that (transitively) does — a small
//! same-file fixpoint, because the chase routes its polls through a
//! `poll_cancelled` helper.
//!
//! [`Ticker`]: https://docs.rs/td-core
//! [`Cancellation`]: https://docs.rs/td-core

use std::collections::HashSet;

use super::Pass;
use crate::lexer::TokKind;
use crate::shape::{functions, loops, LoopKind};
use crate::source::{Diagnostic, SourceFile};

/// See the module docs.
#[derive(Debug)]
pub struct BudgetPoll;

/// Identifiers that constitute a poll observation.
const POLL_TOKENS: [&str; 4] = ["tick", "poll", "poll_cancelled", "is_cancelled"];

impl Pass for BudgetPoll {
    fn name(&self) -> &'static str {
        "budget-poll"
    }

    fn check(&self, sf: &SourceFile, out: &mut Vec<Diagnostic>) {
        let polling = polling_functions(sf);
        for l in loops(sf) {
            let kw = &sf.tokens[l.kw_idx];
            if sf.in_test_region(kw.line) {
                continue;
            }
            if l.kind == LoopKind::For && !l.nested {
                continue;
            }
            if body_polls(sf, l.body, &polling) {
                continue;
            }
            out.push(Diagnostic {
                pass: "budget-poll".to_string(),
                file: sf.path.clone(),
                line: kw.line,
                col: kw.col,
                msg: format!(
                    "`{}` body never reaches a Ticker/Cancellation poll; add a \
                     `ticker.tick()`/`is_cancelled()` check (or justify with \
                     `// td-lint: allow(budget-poll) <why>`)",
                    l.kind.keyword()
                ),
            });
        }
    }
}

/// `true` if the token range `body` contains a poll token or a call to a
/// known polling function.
fn body_polls(sf: &SourceFile, body: (usize, usize), polling: &HashSet<String>) -> bool {
    sf.tokens[body.0..=body.1].iter().any(|t| {
        t.kind == TokKind::Ident
            && (POLL_TOKENS.contains(&t.text.as_str()) || polling.contains(&t.text))
    })
}

/// Same-file fixpoint: the set of function names whose bodies contain a
/// poll token, or a mention of a function already in the set.
fn polling_functions(sf: &SourceFile) -> HashSet<String> {
    let fns = functions(sf);
    let mut polling: HashSet<String> = HashSet::new();
    loop {
        let mut changed = false;
        for f in &fns {
            if polling.contains(&f.name) {
                continue;
            }
            let Some(body) = f.body else { continue };
            if body_polls(sf, body, &polling) {
                polling.insert(f.name.clone());
                changed = true;
            }
        }
        if !changed {
            return polling;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::run_passes;

    fn findings(src: &str) -> Vec<Diagnostic> {
        let sf = SourceFile::parse("t.rs", src);
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(BudgetPoll)];
        run_passes(&sf, &passes)
    }

    #[test]
    fn unpolled_while_is_flagged() {
        let d = findings("fn f() { while work() { step(); } }");
        assert_eq!(d.len(), 1);
        assert!(d[0].msg.contains("while"));
    }

    #[test]
    fn ticked_loop_is_clean() {
        let d =
            findings("fn f(t: &mut Ticker) { loop { if t.tick().is_err() { break; } step(); } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn flat_for_is_exempt_nested_for_is_not() {
        assert!(findings("fn f() { for x in xs { g(x); } }").is_empty());
        let d = findings("fn f() { for x in xs { for y in ys { g(x, y); } } }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("for"));
    }

    #[test]
    fn poll_through_same_file_helper_counts() {
        let src = "\
fn check(c: &Cancellation) -> bool { c.is_cancelled() }
fn f(c: &Cancellation) { while busy() { if check(c) { break; } step(); } }
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn two_level_helper_fixpoint() {
        let src = "\
fn inner(c: &C) -> bool { c.is_cancelled() }
fn outer(c: &C) -> bool { inner(c) }
fn f(c: &C) { loop { if outer(c) { break; } } }
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn allow_suppresses() {
        let src = "\
fn f() {
    // td-lint: allow(budget-poll) bounded by the 8-entry table
    while i < table.len() { i += 1; }
}
";
        assert!(findings(src).is_empty());
    }
}
