//! The pass framework and the four project-specific passes.

use crate::source::{Diagnostic, SourceFile};

mod budget;
mod docs;
mod lock;
mod panic;

pub use budget::BudgetPoll;
pub use docs::DocErrorHygiene;
pub use lock::LockDiscipline;
pub use panic::PanicPath;

/// One lint pass: a named check over a single [`SourceFile`].
pub trait Pass {
    /// The pass name (what `td-lint: allow(<name>)` refers to).
    fn name(&self) -> &'static str;
    /// Appends findings for `sf` to `out`. Passes emit freely; allow
    /// annotations are applied by [`run_passes`], not by the pass.
    fn check(&self, sf: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// Every pass, in reporting order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(LockDiscipline),
        Box::new(BudgetPoll),
        Box::new(PanicPath),
        Box::new(DocErrorHygiene),
    ]
}

/// Runs `passes` over `sf`, applies the file's `td-lint: allow`
/// annotations, and appends annotation hygiene findings: grammar errors
/// and *stale* allows (an allow that suppressed nothing is an error — it
/// either outlived its violation or never matched it, and both mean the
/// source is lying about why it is exempt).
pub fn run_passes(sf: &SourceFile, passes: &[Box<dyn Pass>]) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    for p in passes {
        p.check(sf, &mut raw);
    }
    let mut used = vec![false; sf.allows.len()];
    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            let mut suppressed = false;
            for (i, a) in sf.allows.iter().enumerate() {
                if a.pass == d.pass && a.target_line == d.line {
                    used[i] = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();
    for (i, a) in sf.allows.iter().enumerate() {
        if !used[i] {
            out.push(Diagnostic {
                pass: "annotation".to_string(),
                file: sf.path.clone(),
                line: a.line,
                col: 1,
                msg: format!(
                    "stale `td-lint: allow({})` — it suppresses nothing on line {}; \
                     remove it or move it next to the violation it justifies",
                    a.pass, a.target_line
                ),
            });
        }
    }
    out.extend(sf.annotation_errors.iter().cloned());
    out.sort_by(|a, b| (a.line, a.col, &a.pass).cmp(&(b.line, b.col, &b.pass)));
    out
}
