//! **lock-discipline**: no `.read()`/`.write()`/`.lock()` guard may be
//! live across a call into the solver (`solve*`/`decide*`/`chase*`/
//! `resume*`) or blocking I/O, and shard locks must be acquired in
//! ascending index order.
//!
//! Holding a shard or registry guard across a solve wedges every other
//! request hashing to that shard for the duration of an (undecidable!)
//! search; out-of-order shard acquisition is the classic deadlock shape
//! once the serve loop goes multicore. Guard liveness is recovered
//! lexically: a **let-bound** guard lives from its binding to the end of
//! the enclosing block or an explicit `drop(name)`, whichever comes
//! first; a **temporary** guard lives to the end of its statement.

use super::Pass;
use crate::lexer::TokKind;
use crate::shape::{enclosing_block, statement_end, statement_start};
use crate::source::{Diagnostic, SourceFile};

/// See the module docs.
#[derive(Debug)]
pub struct LockDiscipline;

/// No-argument guard-producing methods.
const GUARD_METHODS: [&str; 3] = ["read", "write", "lock"];

/// Call-name prefixes that enter the solver. `resume` is the chase
/// engine's re-entry constructor (`ChaseEngine::resume`), the same hot
/// path as `chase*` under a different name.
const SOLVER_PREFIXES: [&str; 4] = ["solve", "decide", "chase", "resume"];

/// Blocking I/O calls (`Condvar::wait` is deliberately absent: it
/// *requires* holding the lock and releases it atomically).
const BLOCKING_CALLS: [&str; 10] = [
    "read_line",
    "read_to_string",
    "read_exact",
    "write_all",
    "flush",
    "accept",
    "connect",
    "recv",
    "recv_timeout",
    "sleep",
];

/// A discovered guard acquisition and its lexical liveness span.
#[derive(Debug)]
struct Guard {
    /// Token index of the `read`/`write`/`lock` method identifier.
    site: usize,
    /// Exclusive end of the liveness span (token index).
    end: usize,
    /// Shard index when the receiver is literally `shards[<int>]`.
    shard: Option<u64>,
}

impl Pass for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn check(&self, sf: &SourceFile, out: &mut Vec<Diagnostic>) {
        let guards = find_guards(sf);
        for g in &guards {
            let gt = &sf.tokens[g.site];
            if sf.in_test_region(gt.line) {
                continue;
            }
            // Danger calls inside the liveness span.
            let mut i = g.site + 2; // skip the guard's own `(`
            while i < g.end.min(sf.tokens.len()) {
                let t = &sf.tokens[i];
                if t.kind == TokKind::Ident && sf.tok(i + 1).is_some_and(|n| n.is_punct('(')) {
                    if SOLVER_PREFIXES.iter().any(|p| t.text.starts_with(p)) {
                        out.push(diag(
                            sf,
                            t.line,
                            t.col,
                            format!(
                                "`{}(…)` called while a `.{}()` guard (line {}) is live; \
                                 drop the guard before entering the solver",
                                t.text, gt.text, gt.line
                            ),
                        ));
                    } else if BLOCKING_CALLS.contains(&t.text.as_str()) {
                        out.push(diag(
                            sf,
                            t.line,
                            t.col,
                            format!(
                                "blocking call `{}(…)` while a `.{}()` guard (line {}) is \
                                 live; drop the guard before blocking (or justify with \
                                 `// td-lint: allow(lock-discipline) <why>`)",
                                t.text, gt.text, gt.line
                            ),
                        ));
                    }
                }
                i += 1;
            }
        }
        // Shard ordering: a shard guard acquired while another shard guard
        // with an equal-or-higher index is still live.
        for g in &guards {
            let Some(outer_idx) = g.shard else { continue };
            if sf.in_test_region(sf.tokens[g.site].line) {
                continue;
            }
            for h in &guards {
                let Some(inner_idx) = h.shard else { continue };
                if h.site > g.site && h.site < g.end && inner_idx <= outer_idx {
                    let t = &sf.tokens[h.site];
                    out.push(diag(
                        sf,
                        t.line,
                        t.col,
                        format!(
                            "shard lock {inner_idx} acquired while shard lock {outer_idx} \
                             (line {}) is live: shard locks must be taken in ascending \
                             index order",
                            sf.tokens[g.site].line
                        ),
                    ));
                }
            }
        }
    }
}

fn diag(sf: &SourceFile, line: u32, col: u32, msg: String) -> Diagnostic {
    Diagnostic {
        pass: "lock-discipline".to_string(),
        file: sf.path.clone(),
        line,
        col,
        msg,
    }
}

/// Finds every `.read()`/`.write()`/`.lock()` site and computes its
/// lexical liveness span.
fn find_guards(sf: &SourceFile) -> Vec<Guard> {
    let mut out = Vec::new();
    for (i, t) in sf.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || !GUARD_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if i == 0 || !sf.tokens[i - 1].is_punct('.') {
            continue;
        }
        // Require an empty argument list: `.read()`, not `.read(&mut buf)`.
        if !(sf.tok(i + 1).is_some_and(|n| n.is_punct('('))
            && sf.tok(i + 2).is_some_and(|n| n.is_punct(')')))
        {
            continue;
        }
        // `stdout().lock()` / `stderr.lock()` / `stdin().lock()` hand out
        // I/O handles meant to be written while held — not shared-state
        // guards. Exclude them by receiver name.
        if receiver_is_std_stream(sf, i) {
            continue;
        }
        let start = statement_start(sf, i);
        let let_bound = sf.tokens.get(start).is_some_and(|t| t.is_ident("let"))
            && chain_yields_guard(sf, i + 2);
        let end = if let_bound {
            let name = binding_name(sf, start);
            let block_end = enclosing_block(sf, i).map_or(sf.tokens.len(), |(_, c)| c);
            match name.and_then(|n| find_drop(sf, i, block_end, &n)) {
                Some(d) => d,
                None => block_end,
            }
        } else {
            statement_end(sf, i)
        };
        out.push(Guard {
            site: i,
            end,
            shard: shard_index(sf, i),
        });
    }
    out
}

/// Follows the method chain after the guard call's `)` at `close_idx`:
/// the binding holds the *guard* only if the chain ends the initializer
/// (`;`) passing through nothing but guard-preserving adapters
/// (`.expect(…)`, `.unwrap()`, `.unwrap_or_else(…)`, `.map_err(…)`,
/// `?`). A chain like `.lock().len()` binds a plain value — the guard is
/// a temporary.
fn chain_yields_guard(sf: &SourceFile, close_idx: usize) -> bool {
    const PRESERVING: [&str; 4] = ["expect", "unwrap", "unwrap_or_else", "map_err"];
    let mut j = close_idx + 1;
    loop {
        let Some(t) = sf.tok(j) else { return false };
        if t.is_punct(';') {
            return true;
        }
        if t.is_punct('?') {
            j += 1;
            continue;
        }
        if t.is_punct('.')
            && sf
                .tok(j + 1)
                .is_some_and(|m| m.kind == TokKind::Ident && PRESERVING.contains(&m.text.as_str()))
            && sf.tok(j + 2).is_some_and(|p| p.is_punct('('))
        {
            match sf.close_of(j + 2) {
                Some(c) => {
                    j = c + 1;
                    continue;
                }
                None => return false,
            }
        }
        return false;
    }
}

/// The identifier bound by a `let` statement starting at `start`
/// (skipping `mut`; tuple/struct patterns yield their first identifier,
/// which is good enough to recognize a later `drop(name)`).
fn binding_name(sf: &SourceFile, start: usize) -> Option<String> {
    let mut i = start + 1;
    while let Some(t) = sf.tok(i) {
        if t.is_ident("mut") || t.is_punct('(') {
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            return Some(t.text.clone());
        }
        return None;
    }
    None
}

/// `true` when the receiver of the guard method at `site` is one of the
/// standard I/O streams (`stdout`, `stderr`, `stdin`), directly or as a
/// call (`io::stdout().lock()`).
fn receiver_is_std_stream(sf: &SourceFile, site: usize) -> bool {
    const STREAMS: [&str; 3] = ["stdout", "stderr", "stdin"];
    if site < 2 {
        return false;
    }
    let prev = &sf.tokens[site - 2];
    if prev.kind == TokKind::Ident {
        return STREAMS.contains(&prev.text.as_str());
    }
    if prev.is_punct(')') {
        if let Some(&open) = sf.match_of.get(site - 2) {
            if open != usize::MAX && open > 0 {
                let callee = &sf.tokens[open - 1];
                return callee.kind == TokKind::Ident && STREAMS.contains(&callee.text.as_str());
            }
        }
    }
    false
}

/// Finds `drop(<name>)` between `from` and `to`, returning its index.
fn find_drop(sf: &SourceFile, from: usize, to: usize, name: &str) -> Option<usize> {
    (from..to.min(sf.tokens.len())).find(|&j| {
        sf.tokens[j].is_ident("drop")
            && sf.tok(j + 1).is_some_and(|t| t.is_punct('('))
            && sf.tok(j + 2).is_some_and(|t| t.is_ident(name))
            && sf.tok(j + 3).is_some_and(|t| t.is_punct(')'))
    })
}

/// When the guard's receiver is literally `shards[<int>]`, the index.
fn shard_index(sf: &SourceFile, site: usize) -> Option<u64> {
    // tokens: … shards [ <lit> ] . read
    if site < 2 || !sf.tokens[site - 2].is_punct(']') {
        return None;
    }
    let close = site - 2;
    let open = match sf.match_of.get(close) {
        Some(&o) if o != usize::MAX => o,
        _ => return None,
    };
    if open == 0 || !sf.tokens[open - 1].is_ident("shards") {
        return None;
    }
    if close != open + 2 {
        return None; // not a single-token index
    }
    let lit = &sf.tokens[open + 1];
    if lit.kind != TokKind::Literal {
        return None;
    }
    lit.text.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::run_passes;

    fn findings(src: &str) -> Vec<Diagnostic> {
        let sf = SourceFile::parse("t.rs", src);
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(LockDiscipline)];
        run_passes(&sf, &passes)
    }

    #[test]
    fn guard_across_chase_resume_is_flagged() {
        let src = "fn f() { let mut inner = s.inner.lock().expect(\"p\"); \
                   let mut e = ChaseEngine::resume(&tds, st, policy, budget)?; e.go(); }";
        let d = findings(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("resume"));
    }

    #[test]
    fn map_err_chain_still_binds_the_guard() {
        let src = "fn f() -> Result<()> { let g = s.inner.lock().map_err(|_| E::Poisoned)?; \
                   solve(&g); Ok(()) }";
        let d = findings(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("solve"));
    }

    #[test]
    fn let_bound_guard_across_solve_is_flagged() {
        let src =
            "fn f() { let g = cache.read(); let v = solve_word_problem(&p); use_both(g, v); }";
        let d = findings(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("solve_word_problem"));
    }

    #[test]
    fn dropping_the_guard_first_is_clean() {
        let src = "fn f() { let g = cache.read(); let k = g.key(); drop(g); solve(&k); }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn block_scoped_guard_is_clean() {
        let src = "fn f() { let k = { let g = cache.read(); g.key() }; solve(&k); }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn guard_live_across_decide_is_flagged() {
        let src = "fn f() { let g = map.lock(); let v = decide_request(g.key()); }";
        let d = findings(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("decide_request"));
    }

    #[test]
    fn blocking_io_while_guarded_is_flagged() {
        let src = "fn f() { let reg = clients.lock(); out.write_all(b).ok(); }";
        let d = findings(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("write_all"));
    }

    #[test]
    fn statement_scoped_temporary_does_not_leak() {
        let src = "fn f() { let n = map.lock().len(); solve(n); }";
        assert!(findings(src).is_empty(), "temporary dies at the `;`");
    }

    #[test]
    fn shard_order_violation() {
        let src = "fn f() { let a = shards[2].read(); let b = shards[1].read(); }";
        let d = findings(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("ascending"));
    }

    #[test]
    fn ascending_shards_are_clean() {
        let src = "fn f() { let a = shards[0].read(); let b = shards[1].read(); }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn read_with_args_is_not_a_guard() {
        let src = "fn f() { file.read(&mut buf); solve(&buf); }";
        assert!(findings(src).is_empty());
    }
}
