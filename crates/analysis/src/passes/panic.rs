//! **panic-path**: no `unwrap()` / `expect()` / `panic!`-family macros /
//! slice indexing on request-path files. A panic in a request path kills a
//! client thread (or, pre-1.82-style, poisons a shared lock); request
//! handling must degrade to structured error envelopes instead.

use super::Pass;
use crate::lexer::TokKind;
use crate::source::{Diagnostic, SourceFile};

/// See the module docs.
#[derive(Debug)]
pub struct PanicPath;

/// Method calls that panic on the unhappy path.
const PANICKY_CALLS: [&str; 2] = ["unwrap", "expect"];

/// Macros that are always a panic.
const PANICKY_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede a `[` without it being an index
/// expression (array literals, types, attribute positions).
const NON_INDEX_PREV: [&str; 14] = [
    "in", "return", "break", "if", "else", "match", "let", "mut", "ref", "move", "as", "dyn",
    "impl", "where",
];

impl Pass for PanicPath {
    fn name(&self) -> &'static str {
        "panic-path"
    }

    fn check(&self, sf: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (i, t) in sf.tokens.iter().enumerate() {
            if sf.in_test_region(t.line) {
                continue;
            }
            // `.unwrap(` / `.expect(`
            if t.kind == TokKind::Ident
                && PANICKY_CALLS.contains(&t.text.as_str())
                && i > 0
                && sf.tokens[i - 1].is_punct('.')
                && sf.tok(i + 1).is_some_and(|n| n.is_punct('('))
            {
                out.push(diag(
                    sf,
                    t.line,
                    t.col,
                    format!(
                        "`.{}()` on a request path: return a structured error instead, \
                         or justify with `// td-lint: allow(panic-path) <why>`",
                        t.text
                    ),
                ));
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
            if t.kind == TokKind::Ident
                && PANICKY_MACROS.contains(&t.text.as_str())
                && sf.tok(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(diag(
                    sf,
                    t.line,
                    t.col,
                    format!(
                        "`{}!` on a request path: this aborts request handling",
                        t.text
                    ),
                ));
            }
            // Index expressions `expr[…]`: a `[` whose previous token ends
            // an expression (identifier, `)`, or `]`). Array literals,
            // attribute brackets and type positions are excluded by the
            // previous-token test.
            if t.is_punct('[') && i > 0 {
                let prev = &sf.tokens[i - 1];
                let is_expr_end = (prev.kind == TokKind::Ident
                    && !NON_INDEX_PREV.contains(&prev.text.as_str()))
                    || prev.is_punct(')')
                    || prev.is_punct(']');
                if is_expr_end {
                    out.push(diag(
                        sf,
                        t.line,
                        t.col,
                        "index/slice expression on a request path can panic on \
                         out-of-bounds: use `.get(…)` and handle `None`, or justify \
                         with `// td-lint: allow(panic-path) <why>`"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

fn diag(sf: &SourceFile, line: u32, col: u32, msg: String) -> Diagnostic {
    Diagnostic {
        pass: "panic-path".to_string(),
        file: sf.path.clone(),
        line,
        col,
        msg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::run_passes;

    fn findings(src: &str) -> Vec<Diagnostic> {
        let sf = SourceFile::parse("t.rs", src);
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(PanicPath)];
        run_passes(&sf, &passes)
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let d = findings("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }");
        assert_eq!(d.len(), 3);
        assert!(d[0].msg.contains("unwrap"));
    }

    #[test]
    fn flags_indexing_but_not_array_literals() {
        let d = findings("fn f() { let a = [1, 2]; let b: [u8; 2] = a; let c = a[0]; }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("index"));
    }

    #[test]
    fn attributes_and_types_are_not_indexing() {
        let d = findings("#[derive(Debug)]\nstruct S { v: Vec<[u8; 4]> }\nfn f(x: &[u8]) {}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_suppresses_and_is_marked_used() {
        let d = findings(
            "fn f() {\n    // td-lint: allow(panic-path) len checked on the line above\n    x.unwrap();\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn stale_allow_is_an_error() {
        let d =
            findings("fn f() {\n    // td-lint: allow(panic-path) nothing here\n    let x = 1;\n}");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].pass, "annotation");
        assert!(d[0].msg.contains("stale"));
    }

    #[test]
    fn test_regions_are_exempt() {
        let d = findings("#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); v[0]; }\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn expect_like_names_are_not_flagged() {
        let d = findings("fn f() { schema.expect_same(other)?; }");
        assert!(d.is_empty(), "{d:?}");
    }
}
