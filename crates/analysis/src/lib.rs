//! # td-analysis — workspace-native static analysis for template-deps
//!
//! A dependency-free lexical analyser and pass framework enforcing the
//! hand-maintained disciplines the engine's concurrency story rests on.
//! The `td-lint` binary (in the facade crate) drives four passes over the
//! whole workspace:
//!
//! * **lock-discipline** — no `RwLock`/`Mutex` guard live across a call
//!   into the solver or blocking I/O; shard locks acquired in ascending
//!   index order.
//! * **budget-poll** — every loop body in the search/chase hot paths
//!   reaches a `Ticker::tick`/`Cancellation` poll.
//! * **panic-path** — no `unwrap()`/`expect()`/`panic!`/indexing in the
//!   request-path files (`src/serve.rs`, `crates/reduction/src/engine.rs`,
//!   `src/jsonl.rs`).
//! * **doc-error-hygiene** — every `pub fn` returning `Result` documents
//!   its error conditions.
//!
//! Violations are governed by in-source `// td-lint: allow(<pass>) <reason>`
//! annotations; an allow that suppresses nothing is itself an error, so
//! exemptions cannot rot. The tool is deliberately *lexical* — it lexes
//! (comments, strings, and nesting handled honestly) but does not parse or
//! type-check; `docs/ANALYSIS.md` spells out the soundness caveats that
//! follow from that choice.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod driver;
pub mod lexer;
pub mod passes;
pub mod shape;
pub mod source;

pub use driver::{lint_file, pass_applies, run_fixtures, run_workspace};
pub use passes::{all_passes, run_passes, Pass};
pub use source::{Allow, Diagnostic, SourceFile};
