//! A hand-rolled lexer for Rust source, sufficient for lexical linting.
//!
//! The lexer produces a positioned token stream with comments and string
//! literal *contents* stripped out of the analysable surface: `//` line
//! comments (collected separately, because `td-lint: allow` annotations
//! live there), nested `/* */` block comments, plain/raw/byte string
//! literals, and character literals (distinguished from lifetimes). It does
//! **not** parse: downstream passes work on the token stream plus a
//! matching-delimiter map, which is exactly enough for the discipline
//! checks this crate implements and is honest about being no more.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `while`, `unwrap`, …).
    Ident,
    /// A lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
    /// A literal: number, string, char, byte string. String-like literals
    /// keep only a placeholder text (`"…"`) so their contents can never
    /// confuse a pass.
    Literal,
    /// A single punctuation character (`.`, `;`, `(`, `{`, `!`, …).
    /// Multi-character operators appear as consecutive punct tokens.
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind.
    pub kind: TokKind,
    /// The token text (placeholder text for string-like literals).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

impl Token {
    /// `true` if this token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// What kind of comment a [`Comment`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommentKind {
    /// `// …` (the kind `td-lint:` annotations live in).
    Line,
    /// `/// …` outer doc comment.
    DocLine,
    /// `//! …` inner doc comment.
    DocInner,
    /// `/* … */` block comment.
    Block,
    /// `/** … */` or `/*! … */` block doc comment.
    DocBlock,
}

/// A comment, collected out-of-band with its position and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// The comment kind.
    pub kind: CommentKind,
    /// The body text (marker stripped; block bodies keep inner newlines).
    pub text: String,
    /// 1-based line of the comment *start*.
    pub line: u32,
    /// 1-based column of the comment start.
    pub col: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and literal contents stripped.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. The lexer is total: unknown bytes
/// become single punct tokens rather than errors, so a pathological file
/// degrades to noise instead of aborting the lint run.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    chars: Vec<char>,
    src: std::marker::PhantomData<&'s str>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Self {
            chars: src.chars().collect(),
            src: std::marker::PhantomData,
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push_token(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek_at(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek_at(1) == Some('*') {
                self.block_comment(line, col);
            } else if c == '"' {
                self.string_literal(line, col);
            } else if c == 'r' && matches!(self.peek_at(1), Some('"' | '#')) && self.raw_start(1) {
                self.raw_string(line, col, 1);
            } else if c == 'b' && self.peek_at(1) == Some('"') {
                self.bump();
                self.string_literal(line, col);
            } else if c == 'b' && self.peek_at(1) == Some('\'') {
                self.bump();
                self.char_literal(line, col);
            } else if c == 'b'
                && self.peek_at(1) == Some('r')
                && matches!(self.peek_at(2), Some('"' | '#'))
                && self.raw_start(2)
            {
                self.raw_string(line, col, 2);
            } else if c == '\'' {
                self.quote(line, col);
            } else if c == '_' || c.is_alphabetic() {
                self.ident(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else {
                self.bump();
                self.push_token(TokKind::Punct, c.to_string(), line, col);
            }
        }
        self.out
    }

    /// `true` if starting at `off` there is `#* "` — i.e. a raw string
    /// opener (vs. an identifier that merely starts with `r`/`br`).
    fn raw_start(&self, off: usize) -> bool {
        let mut i = off;
        while self.peek_at(i) == Some('#') {
            i += 1;
        }
        self.peek_at(i) == Some('"')
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump(); // `//`
        let kind = match self.peek() {
            Some('/') if self.peek_at(1) != Some('/') => {
                self.bump();
                CommentKind::DocLine
            }
            Some('!') => {
                self.bump();
                CommentKind::DocInner
            }
            _ => CommentKind::Line,
        };
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            kind,
            text: text.trim().to_string(),
            line,
            col,
        });
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump(); // `/*`
        let kind = match self.peek() {
            Some('*') if self.peek_at(1) != Some('/') => CommentKind::DocBlock,
            Some('!') => CommentKind::DocBlock,
            _ => CommentKind::Block,
        };
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    text.push_str("/*");
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated: tolerate
            }
        }
        self.out.comments.push(Comment {
            kind,
            text: text.trim().to_string(),
            line,
            col,
        });
    }

    fn string_literal(&mut self, line: u32, col: u32) {
        self.bump(); // opening `"`
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump(); // skip the escaped char
            } else if c == '"' {
                break;
            }
        }
        self.push_token(TokKind::Literal, "\"…\"".to_string(), line, col);
    }

    fn raw_string(&mut self, line: u32, col: u32, prefix: usize) {
        for _ in 0..prefix {
            self.bump(); // `r` or `br`
        }
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening `"`
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek_at(i) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push_token(TokKind::Literal, "r\"…\"".to_string(), line, col);
    }

    /// A `'`: either a char literal (`'x'`, `'\n'`) or a lifetime (`'a`).
    fn quote(&mut self, line: u32, col: u32) {
        // Lookahead decides: escape or `<char>'` means char literal.
        if self.peek_at(1) == Some('\\') || self.peek_at(2) == Some('\'') {
            self.char_literal(line, col);
            return;
        }
        self.bump(); // `'`
        let mut text = String::from("'");
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(TokKind::Lifetime, text, line, col);
    }

    fn char_literal(&mut self, line: u32, col: u32) {
        self.bump(); // `'`
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '\'' {
                break;
            }
        }
        self.push_token(TokKind::Literal, "'…'".to_string(), line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(TokKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `0..n` does not.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(TokKind::Literal, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_stripped_and_collected() {
        let l = lex("let x = 1; // trailing note\n/* block\nspans */ let y = 2;");
        assert_eq!(
            idents("let x = 1; // c\nlet y = 2;"),
            ["let", "x", "let", "y"]
        );
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].kind, CommentKind::Line);
        assert_eq!(l.comments[0].text, "trailing note");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].kind, CommentKind::Block);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still */ b");
        assert_eq!(idents("a /* x /* y */ z */ b"), ["a", "b"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn string_contents_cannot_leak_tokens() {
        // `unwrap(` inside a string must not look like a call.
        let l = lex(r#"let m = "call .unwrap() here"; x"#);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.tokens.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn raw_and_byte_strings() {
        let l = lex(r###"let s = r#"has "quotes" and // no comment"#; done"###);
        assert!(l.comments.is_empty());
        assert!(l.tokens.iter().any(|t| t.is_ident("done")));
        let l = lex(r#"let b = b"bytes"; let c = b'x'; end"#);
        assert!(l.tokens.iter().any(|t| t.is_ident("end")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text == "'…'")
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("ab\n  cd");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }

    #[test]
    fn numbers_and_ranges() {
        let l = lex("for i in 0..10 { let f = 1.5; let h = 0xff_u32; }");
        let lits: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, ["0", "10", "1.5", "0xff_u32"]);
    }

    #[test]
    fn doc_comment_kinds() {
        let l = lex("/// outer doc\n//! inner doc\n// plain\nfn f() {}");
        let kinds: Vec<_> = l.comments.iter().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            [
                CommentKind::DocLine,
                CommentKind::DocInner,
                CommentKind::Line
            ]
        );
    }
}
