//! The workspace driver: which files are scanned, which passes apply to
//! which files, and the fixture self-test.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::passes::{all_passes, run_passes, Pass};
use crate::source::{Diagnostic, SourceFile};

/// Source roots scanned relative to the workspace root. The shims are
/// vendored stand-ins for external crates and are out of policy scope;
/// `tests/`, `examples/`, and bench `bin/` fixtures are exercised code,
/// not request paths, and test-style unwraps are idiomatic there.
const SCAN_ROOTS: [&str; 7] = [
    "src",
    "crates/core/src",
    "crates/semigroup/src",
    "crates/reduction/src",
    "crates/bench/src",
    "crates/analysis/src",
    "crates/bench/src/bin",
];

/// Decides whether `pass` runs on the workspace-relative path `rel`.
///
/// * `panic-path` is scoped to the three request-path files named in the
///   policy: the serve loop, the engine, and the wire format.
/// * `budget-poll` is scoped to the search/chase hot paths.
/// * `lock-discipline` and `doc-error-hygiene` run everywhere.
pub fn pass_applies(pass: &str, rel: &str) -> bool {
    match pass {
        "panic-path" => matches!(
            rel,
            "src/serve.rs" | "src/jsonl.rs" | "crates/reduction/src/engine.rs"
        ),
        "budget-poll" => {
            rel == "crates/semigroup/src/derivation.rs"
                || rel == "crates/semigroup/src/model_search.rs"
                || rel.starts_with("crates/core/src/chase")
        }
        _ => true,
    }
}

/// Lints the file contents `text` (at workspace-relative path `rel`) with
/// every pass that applies to it, returning the surviving diagnostics.
pub fn lint_file(rel: &str, text: &str) -> Vec<Diagnostic> {
    let sf = SourceFile::parse(rel, text);
    let passes: Vec<Box<dyn Pass>> = all_passes()
        .into_iter()
        .filter(|p| pass_applies(p.name(), rel))
        .collect();
    run_passes(&sf, &passes)
}

/// Lints the whole workspace rooted at `root`, returning diagnostics
/// sorted by path and position.
///
/// # Errors
///
/// Propagates I/O errors from walking the source roots or reading a
/// source file (an unreadable tree must fail the lint run loudly, not
/// pass it quietly).
pub fn run_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    files.dedup();
    let mut out = Vec::new();
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&f)?;
        out.extend(lint_file(&rel, &text));
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`, skipping fixture trees.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One fixture expectation failure.
#[derive(Debug)]
pub struct FixtureFailure {
    /// The fixture file.
    pub file: String,
    /// What went wrong.
    pub msg: String,
}

/// Self-tests the passes against the checked-in fixture suite at
/// `fixtures_dir`: every `ok/*.rs` must lint clean under **all** passes,
/// and every `bad/<pass>__<case>.rs` must produce at least one finding
/// from exactly the pass its name claims.
///
/// # Errors
///
/// Propagates I/O errors from reading the fixture tree.
pub fn run_fixtures(fixtures_dir: &Path) -> io::Result<Vec<FixtureFailure>> {
    let mut failures = Vec::new();
    let all = all_passes();
    for entry in fs::read_dir(fixtures_dir.join("ok"))? {
        let path = entry?.path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let text = fs::read_to_string(&path)?;
        let sf = SourceFile::parse(&path.to_string_lossy(), &text);
        let diags = run_passes(&sf, &all);
        if !diags.is_empty() {
            failures.push(FixtureFailure {
                file: path.to_string_lossy().into_owned(),
                msg: format!(
                    "expected clean, got {} finding(s): {}",
                    diags.len(),
                    diags[0]
                ),
            });
        }
    }
    for entry in fs::read_dir(fixtures_dir.join("bad"))? {
        let path = entry?.path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let Some((want_pass, _)) = stem.split_once("__") else {
            failures.push(FixtureFailure {
                file: path.to_string_lossy().into_owned(),
                msg: "bad fixture name: expected `<pass>__<case>.rs`".to_string(),
            });
            continue;
        };
        let text = fs::read_to_string(&path)?;
        let sf = SourceFile::parse(&path.to_string_lossy(), &text);
        let diags = run_passes(&sf, &all);
        if !diags.iter().any(|d| d.pass == want_pass) {
            failures.push(FixtureFailure {
                file: path.to_string_lossy().into_owned(),
                msg: format!(
                    "expected a `{want_pass}` finding, got {:?}",
                    diags.iter().map(|d| &d.pass).collect::<Vec<_>>()
                ),
            });
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_table() {
        assert!(pass_applies("panic-path", "src/serve.rs"));
        assert!(!pass_applies("panic-path", "crates/reduction/src/cache.rs"));
        assert!(pass_applies(
            "budget-poll",
            "crates/core/src/chase/engine.rs"
        ));
        assert!(!pass_applies("budget-poll", "src/serve.rs"));
        assert!(pass_applies(
            "lock-discipline",
            "crates/reduction/src/cache.rs"
        ));
        assert!(pass_applies("doc-error-hygiene", "crates/core/src/td.rs"));
    }

    #[test]
    fn lint_file_respects_scope() {
        // An unwrap outside the panic-path scope is not a finding…
        let d = lint_file("crates/core/src/td.rs", "fn f() { x.unwrap(); }");
        assert!(d.is_empty(), "{d:?}");
        // …but inside it, it is.
        let d = lint_file("src/serve.rs", "fn f() { x.unwrap(); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].pass, "panic-path");
    }
}
