//! Backtracking search for finite cancellation countermodels.
//!
//! Given a zero-saturated presentation `p`, [`find_counter_model`] looks for
//! a finite S-generated semigroup `G` *without identity*, with zero, with
//! the cancellation property, satisfying every equation of `p`, in which
//! `A₀ ≠ 0` — i.e. a witness that φ belongs to the Main Lemma's second set.
//!
//! The search fixes element `0` as the zero (harmless up to isomorphism),
//! enumerates interpretations of the alphabet (the zero symbol is pinned to
//! `0`, `A₀` to a nonzero element), pre-fills table cells forced by the
//! `(2,1)` equations, and then backtracks over the remaining cells with
//! eager pruning:
//!
//! * **cancellation (i)**: a duplicate nonzero value in a row or column is
//!   rejected immediately;
//! * **cancellation (ii)**: `x·y = x` (or `y·x = x`) with `x ≠ 0` is
//!   rejected immediately (we search for identity-free semigroups, where
//!   (ii) is required);
//! * **associativity**: every triple all of whose needed cells are decided
//!   is checked as soon as its last cell is assigned;
//! * remaining global conditions (no identity, S-generation, non-`(2,1)`
//!   equations) are checked at the leaves.
//!
//! Undecidability lives here too: failure to find a model up to
//! `max_size` proves nothing (Gurevich 1966 — the finite-semigroup word
//! problem is itself undecidable), so the result type is three-valued.

use td_core::budget::{Cancellation, Ticker};

use crate::cayley::{FiniteSemigroup, Interpretation};
use crate::error::Result;
use crate::presentation::Presentation;
use crate::properties;

/// Options for [`find_counter_model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSearchOptions {
    /// Smallest semigroup order to try (≥ 2: zero plus one nonzero element).
    pub min_size: usize,
    /// Largest semigroup order to try.
    pub max_size: usize,
    /// Give up after this many search nodes (cell assignments).
    pub max_nodes: u64,
}

impl Default for ModelSearchOptions {
    fn default() -> Self {
        Self {
            min_size: 2,
            max_size: 4,
            max_nodes: 50_000_000,
        }
    }
}

/// Result of a model search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSearchResult {
    /// A countermodel was found (and re-verified with
    /// [`properties::is_countermodel`] before being returned).
    Found(FiniteSemigroup, Interpretation),
    /// No countermodel of order `≤ max_size` exists. (Larger ones may.)
    ExhaustedSizes {
        /// Search nodes visited.
        nodes: u64,
    },
    /// The node budget ran out.
    BudgetExhausted {
        /// Search nodes visited.
        nodes: u64,
    },
}

impl ModelSearchResult {
    /// The model, if found.
    pub fn model(&self) -> Option<(&FiniteSemigroup, &Interpretation)> {
        match self {
            ModelSearchResult::Found(g, i) => Some((g, i)),
            _ => None,
        }
    }
}

const UNSET: u16 = u16::MAX;

/// The cancellation token is polled every `CANCEL_POLL_MASK + 1` search
/// nodes — rarely enough that the atomic load stays off the hot path.
const CANCEL_POLL_MASK: u64 = 0x3FF;

struct Search<'a> {
    n: usize,
    p: &'a Presentation,
    /// Flattened n×n table; UNSET marks undecided cells.
    table: Vec<u16>,
    /// Node budget + cancellation polling, via the shared
    /// [`td_core::budget`] substrate: one tick per cell assignment, the
    /// cancellation token observed every [`CANCEL_POLL_MASK`]+1 nodes.
    ticker: Ticker<'a>,
}

impl Search<'_> {
    #[inline]
    fn get(&self, a: usize, b: usize) -> u16 {
        self.table[a * self.n + b]
    }

    #[inline]
    fn set(&mut self, a: usize, b: usize, v: u16) {
        self.table[a * self.n + b] = v;
    }

    /// Checks cancellation conditions for a freshly decided `(a, b) = v`.
    fn cancellation_ok(&self, a: usize, b: usize, v: u16) -> bool {
        // (ii): x·y = x (or y·x = x) with x != 0.
        if v as usize == a && a != 0 {
            return false;
        }
        if v as usize == b && b != 0 {
            return false;
        }
        if v != 0 {
            // (i) left: same row, same nonzero value, different column.
            for b2 in 0..self.n {
                if b2 != b && self.get(a, b2) == v {
                    return false;
                }
            }
            // (i) right: same column, same nonzero value, different row.
            for a2 in 0..self.n {
                if a2 != a && self.get(a2, b) == v {
                    return false;
                }
            }
        }
        true
    }

    /// Checks every associativity triple that involves the cell `(a, b)`
    /// and is now fully decided.
    fn assoc_ok(&self, a: usize, b: usize) -> bool {
        let n = self.n;
        // Triples (x, y, z) use cells (x,y), (xy,z), (y,z), (x,yz).
        // Case 1: (x,y) = (a,b); z free.
        let ab = self.get(a, b);
        for z in 0..n {
            let bz = self.get(b, z);
            if bz == UNSET {
                continue;
            }
            let left = self.get(ab as usize, z);
            let right = self.get(a, bz as usize);
            if left != UNSET && right != UNSET && left != right {
                return false;
            }
        }
        // Case 2: (y,z) = (a,b); x free.
        for x in 0..n {
            let xa = self.get(x, a);
            if xa == UNSET {
                continue;
            }
            let left = self.get(xa as usize, b);
            let right = self.get(x, ab as usize);
            if left != UNSET && right != UNSET && left != right {
                return false;
            }
        }
        // Case 3: (a,b) plays the role of an *outer* cell: (xy, z) = (a, b)
        // or (x, yz) = (a, b). These are covered when the corresponding
        // inner cells were assigned (cases 1 and 2 above ran then), except
        // when the outer cell is assigned *after* both inner cells. Scan
        // for pairs (x, y) with x·y = a:
        // td-lint: allow(budget-poll) bounded n² sweep of the multiplication table (n is the
        // candidate model order, capped by the search's size bound); the enclosing DFS polls
        // the ticker at every node.
        for x in 0..n {
            for y in 0..n {
                if self.get(x, y) != a as u16 {
                    continue;
                }
                // (x, y, b): left = (xy)·b = a·b; right = x·(y·b).
                let yb = self.get(y, b);
                if yb != UNSET {
                    let right = self.get(x, yb as usize);
                    if right != UNSET && right != ab {
                        return false;
                    }
                }
            }
        }
        // (x, a, …) with inner (a, b): x·(a·b) vs (x·a)·b.
        for x in 0..n {
            let xa = self.get(x, a);
            if xa == UNSET {
                continue;
            }
            let left = self.get(xa as usize, b);
            let right = self.get(x, ab as usize);
            if left != UNSET && right != UNSET && left != right {
                return false;
            }
        }
        true
    }

    fn next_unset(&self) -> Option<(usize, usize)> {
        // td-lint: allow(budget-poll) bounded n² scan for the first unset table cell; the
        // enclosing DFS polls the ticker at every node.
        for a in 1..self.n {
            for b in 1..self.n {
                if self.get(a, b) == UNSET {
                    return Some((a, b));
                }
            }
        }
        None
    }

    fn dfs(&mut self, interp: &Interpretation) -> Option<FiniteSemigroup> {
        if self.ticker.stopped() {
            return None;
        }
        let Some((a, b)) = self.next_unset() else {
            return self.try_leaf(interp);
        };
        for v in 0..self.n as u16 {
            if !self.ticker.tick() {
                return None;
            }
            if !self.cancellation_ok(a, b, v) {
                continue;
            }
            self.set(a, b, v);
            if self.assoc_ok(a, b) {
                if let Some(found) = self.dfs(interp) {
                    return Some(found);
                }
                if self.ticker.stopped() {
                    self.set(a, b, UNSET);
                    return None;
                }
            }
            self.set(a, b, UNSET);
        }
        None
    }

    fn try_leaf(&mut self, interp: &Interpretation) -> Option<FiniteSemigroup> {
        let rows: Vec<Vec<usize>> = (0..self.n)
            .map(|a| (0..self.n).map(|b| self.get(a, b) as usize).collect())
            .collect();
        let g = FiniteSemigroup::new_unchecked_associativity(rows).ok()?;
        // Full verification: the incremental checks make failures rare, but
        // the final word goes to the independent checkers.
        if g.check_associative().is_err() {
            return None;
        }
        properties::is_countermodel(&g, interp, self.p).then_some(g)
    }
}

/// Enumerates interpretations: zero symbol ↦ 0, `A₀` ↦ nonzero, the rest
/// free. `f` returns `true` to stop.
fn for_each_interpretation(
    p: &Presentation,
    n: usize,
    f: &mut impl FnMut(&Interpretation) -> bool,
) -> bool {
    let k = p.alphabet().len();
    let zero_ix = p.alphabet().zero().index();
    let a0_ix = p.alphabet().a0().index();
    let mut map = vec![0usize; k];

    fn rec(
        map: &mut Vec<usize>,
        sym: usize,
        n: usize,
        zero_ix: usize,
        a0_ix: usize,
        f: &mut impl FnMut(&Interpretation) -> bool,
    ) -> bool {
        if sym == map.len() {
            let interp = Interpretation::from_raw(map.iter().copied());
            return f(&interp);
        }
        if sym == zero_ix {
            map[sym] = 0;
            return rec(map, sym + 1, n, zero_ix, a0_ix, f);
        }
        let start = usize::from(sym == a0_ix);
        for v in start..n {
            map[sym] = v;
            if rec(map, sym + 1, n, zero_ix, a0_ix, f) {
                return true;
            }
        }
        false
    }
    rec(&mut map, 0, n, zero_ix, a0_ix, f)
}

/// Searches for a finite cancellation countermodel of the zero-saturated
/// presentation `p`.
///
/// # Errors
///
/// Fails when a found table cannot be assembled into a
/// [`FiniteSemigroup`] (propagated from the Cayley constructors; does not
/// happen for tables the search itself completes).
pub fn find_counter_model(
    p: &Presentation,
    opts: &ModelSearchOptions,
) -> Result<ModelSearchResult> {
    let never = Cancellation::new();
    find_counter_model_cancellable(p, opts, &never)
}

/// A model-search outcome together with exact spend accounting, for the
/// racing pipeline's deterministic budget reports
/// ([`find_counter_model_tracked`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackedModelSearch {
    /// The classical three-valued result.
    pub result: ModelSearchResult,
    /// Search nodes visited — exact even for
    /// [`ModelSearchResult::Found`], which does not carry a count of its
    /// own.
    pub nodes: u64,
    /// `true` when the run stopped because the cancellation token was
    /// observed (at a per-interpretation check or a per-1024-DFS-nodes
    /// poll point of the shared [`td_core::budget::Ticker`]) rather than
    /// by finding a model or exhausting its own size/node budgets. A
    /// cancelled run's `nodes` is a lower bound of what the same search
    /// would visit uncancelled.
    pub cancelled: bool,
}

/// [`find_counter_model`] with a cooperative [`Cancellation`] token, for
/// racing against the derivation search: the token is polled every few
/// hundred search nodes, and a cancelled run reports
/// [`ModelSearchResult::BudgetExhausted`] with the nodes visited so far
/// (the caller that cancelled has its own certificate and discards this
/// side's result). Use [`find_counter_model_tracked`] when the caller must
/// distinguish cancellation from genuine budget exhaustion.
///
/// # Errors
///
/// Same as [`find_counter_model`].
pub fn find_counter_model_cancellable(
    p: &Presentation,
    opts: &ModelSearchOptions,
    cancel: &Cancellation,
) -> Result<ModelSearchResult> {
    Ok(find_counter_model_tracked(p, opts, cancel)?.result)
}

/// [`find_counter_model_cancellable`] with exact spend accounting: the
/// returned [`TrackedModelSearch`] carries the nodes visited (even on
/// success) and whether the run was cut short by the cancellation flag
/// rather than by its own budgets.
///
/// # Errors
///
/// Same as [`find_counter_model`].
pub fn find_counter_model_tracked(
    p: &Presentation,
    opts: &ModelSearchOptions,
    cancel: &Cancellation,
) -> Result<TrackedModelSearch> {
    let mut total_nodes: u64 = 0;
    for n in opts.min_size.max(2)..=opts.max_size {
        let mut found: Option<(FiniteSemigroup, Interpretation)> = None;
        let mut budget_hit = false;
        let mut cancelled = false;
        for_each_interpretation(p, n, &mut |interp| {
            // A cancelled run stops before the next interpretation, too:
            // the in-search poll only fires every few hundred nodes, and
            // small tables burn most of their time across interpretations.
            if cancel.is_cancelled() {
                budget_hit = true;
                cancelled = true;
                return true;
            }
            // Fresh table per interpretation: zero row and column pinned;
            // the ticker gets whatever node budget is still unspent.
            let mut search = Search {
                n,
                p,
                table: vec![UNSET; n * n],
                ticker: Ticker::new(
                    cancel,
                    opts.max_nodes.saturating_sub(total_nodes),
                    CANCEL_POLL_MASK,
                ),
            };
            for x in 0..n {
                search.set(0, x, 0);
                search.set(x, 0, 0);
            }
            // Pre-fill cells forced by (2,1) equations.
            let mut consistent = true;
            for eq in p.equations() {
                if !eq.is_two_one() {
                    continue;
                }
                let a = interp.of(eq.lhs.get(0)).index();
                let b = interp.of(eq.lhs.get(1)).index();
                let c = interp.of(eq.rhs.get(0)).index() as u16;
                let existing = search.get(a, b);
                if existing != UNSET && existing != c {
                    consistent = false;
                    break;
                }
                search.set(a, b, c);
            }
            // Validate prefilled cells against pruning rules.
            if consistent {
                // td-lint: allow(budget-poll) bounded n² validation of the prefilled table,
                // run once per candidate order before the (ticker-polled) DFS starts.
                for a in 1..n {
                    for b in 1..n {
                        let v = search.get(a, b);
                        if v != UNSET {
                            // Temporarily unset to reuse the checker.
                            search.set(a, b, UNSET);
                            let ok = search.cancellation_ok(a, b, v);
                            search.set(a, b, v);
                            if !ok || !search.assoc_ok(a, b) {
                                consistent = false;
                            }
                        }
                        if !consistent {
                            break;
                        }
                    }
                    if !consistent {
                        break;
                    }
                }
            }
            if consistent {
                if let Some(g) = search.dfs(interp) {
                    found = Some((g, interp.clone()));
                    total_nodes += search.ticker.spent();
                    return true;
                }
            }
            total_nodes += search.ticker.spent();
            if search.ticker.stopped() {
                budget_hit = true;
                cancelled |= search.ticker.cancelled();
                return true;
            }
            false
        });
        if let Some((g, interp)) = found {
            debug_assert!(properties::is_countermodel(&g, &interp, p));
            return Ok(TrackedModelSearch {
                result: ModelSearchResult::Found(g, interp),
                nodes: total_nodes,
                cancelled: false,
            });
        }
        if budget_hit {
            return Ok(TrackedModelSearch {
                result: ModelSearchResult::BudgetExhausted { nodes: total_nodes },
                nodes: total_nodes,
                cancelled,
            });
        }
    }
    Ok(TrackedModelSearch {
        result: ModelSearchResult::ExhaustedSizes { nodes: total_nodes },
        nodes: total_nodes,
        cancelled: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::equation::Equation;
    use crate::presentation::{example_derivable, example_refutable};
    use crate::properties::is_countermodel;

    #[test]
    fn finds_null2_for_zero_only_presentation() {
        let p = example_refutable();
        let r = find_counter_model(&p, &ModelSearchOptions::default()).unwrap();
        let (g, interp) = r.model().expect("null(2) exists at size 2");
        assert_eq!(g.len(), 2);
        assert!(is_countermodel(g, interp, &p));
    }

    #[test]
    fn derivable_presentation_has_no_countermodel() {
        // A0 => A1 A1 => 0 is derivable, so *no* semigroup at any size can
        // satisfy the equations yet refute A0 = 0; the search must exhaust.
        let p = example_derivable();
        let r = find_counter_model(
            &p,
            &ModelSearchOptions {
                min_size: 2,
                max_size: 3,
                max_nodes: 10_000_000,
            },
        )
        .unwrap();
        assert!(
            matches!(r, ModelSearchResult::ExhaustedSizes { .. }),
            "{r:?}"
        );
    }

    #[test]
    fn respects_nontrivial_equations() {
        // A0 A0 = A1 (so A1 is a genuine square) with zero saturation; the
        // cyclic nilpotent of order ≥ 4 models it with A0 -> a, A1 -> a².
        // The search should find *some* model of order ≤ 4; verify it.
        let alphabet = Alphabet::standard(2);
        let sq = Equation::parse("A0 A0 = A1", &alphabet).unwrap();
        let mut p = Presentation::new(alphabet, vec![sq]).unwrap();
        p.saturate_with_zero_equations();
        let r = find_counter_model(&p, &ModelSearchOptions::default()).unwrap();
        let (g, interp) = r.model().expect("nilpotent-style model exists");
        assert!(is_countermodel(g, interp, &p));
        // A1 must be interpreted as the square of A0's interpretation.
        let a0 = interp.of(p.alphabet().sym("A0").unwrap());
        let a1 = interp.of(p.alphabet().sym("A1").unwrap());
        assert_eq!(g.mul(a0, a0), a1);
    }

    #[test]
    fn budget_exhaustion_reported() {
        // At order 3 the searcher must decide 4 free cells; one node cannot
        // finish them.
        let p = example_refutable();
        let r = find_counter_model(
            &p,
            &ModelSearchOptions {
                min_size: 3,
                max_size: 4,
                max_nodes: 1,
            },
        )
        .unwrap();
        assert!(
            matches!(r, ModelSearchResult::BudgetExhausted { .. }),
            "{r:?}"
        );
    }

    #[test]
    fn tracked_search_distinguishes_cancellation_from_exhaustion() {
        let p = example_refutable();
        let never = Cancellation::new();
        let t = find_counter_model_tracked(&p, &ModelSearchOptions::default(), &never).unwrap();
        assert!(matches!(t.result, ModelSearchResult::Found(..)));
        assert!(!t.cancelled);

        // Pre-cancelled token: stops at the first per-interpretation check.
        let always = Cancellation::new();
        always.cancel();
        let t = find_counter_model_tracked(&p, &ModelSearchOptions::default(), &always).unwrap();
        assert!(matches!(
            t.result,
            ModelSearchResult::BudgetExhausted { .. }
        ));
        assert!(t.cancelled);

        // Genuine node exhaustion is not cancellation.
        let t = find_counter_model_tracked(
            &p,
            &ModelSearchOptions {
                min_size: 3,
                max_size: 4,
                max_nodes: 1,
            },
            &never,
        )
        .unwrap();
        assert!(matches!(
            t.result,
            ModelSearchResult::BudgetExhausted { nodes } if nodes == t.nodes
        ));
        assert!(!t.cancelled);
    }

    #[test]
    fn found_models_never_have_identity() {
        // Search over a presentation satisfiable by a monoid; the finder
        // must still return an identity-free semigroup (condition of the
        // Main Lemma) or nothing.
        let alphabet = Alphabet::standard(1);
        let mut p = Presentation::new(alphabet, vec![]).unwrap();
        p.saturate_with_zero_equations();
        if let ModelSearchResult::Found(g, _) =
            find_counter_model(&p, &ModelSearchOptions::default()).unwrap()
        {
            assert!(g.identity().is_none());
        } else {
            panic!("a countermodel exists (null(2))");
        }
    }
}
