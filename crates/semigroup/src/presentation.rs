//! Finitely presented semigroups with zero: the word-problem instances φ.
//!
//! A [`Presentation`] is an alphabet plus equations; the implicit *goal* is
//! always the paper's `A₀ = 0`. The Main Lemma requires "the equations
//! A·0 = 0 and 0·A = 0 for all A ∈ S … among the antecedents";
//! [`Presentation::zero_saturated`] adds them.

use crate::alphabet::Alphabet;
use crate::equation::Equation;
use crate::error::Result;
use crate::symbol::Sym;
use crate::word::Word;

/// An alphabet plus a finite list of equations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Presentation {
    alphabet: Alphabet,
    equations: Vec<Equation>,
}

impl Presentation {
    /// Creates a presentation, validating that every symbol used in the
    /// equations belongs to the alphabet.
    ///
    /// # Errors
    ///
    /// Fails with [`SgError::SymbolOutOfRange`] when an equation mentions
    /// a symbol outside the alphabet.
    pub fn new(alphabet: Alphabet, equations: Vec<Equation>) -> Result<Self> {
        for eq in &equations {
            for &s in eq.lhs.syms().iter().chain(eq.rhs.syms()) {
                alphabet.check(s)?;
            }
        }
        Ok(Self {
            alphabet,
            equations,
        })
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The equations.
    pub fn equations(&self) -> &[Equation] {
        &self.equations
    }

    /// Appends an equation (symbols must be in range).
    ///
    /// # Errors
    ///
    /// Fails with [`SgError::SymbolOutOfRange`] when the equation mentions
    /// a symbol outside the alphabet.
    pub fn push_equation(&mut self, eq: Equation) -> Result<()> {
        for &s in eq.lhs.syms().iter().chain(eq.rhs.syms()) {
            self.alphabet.check(s)?;
        }
        self.equations.push(eq);
        Ok(())
    }

    /// The zero-absorption equations `A·0 = 0` and `0·A = 0` for every
    /// `A ∈ S` (including `0·0 = 0`, listed once).
    pub fn zero_equations(alphabet: &Alphabet) -> Vec<Equation> {
        let zero = alphabet.zero();
        let zero_w = Word::single(zero);
        let mut eqs = Vec::with_capacity(2 * alphabet.len());
        for a in alphabet.syms() {
            let right = Word::new([a, zero]).expect("two symbols");
            eqs.push(Equation::new(right, zero_w.clone()));
            if a != zero {
                let left = Word::new([zero, a]).expect("two symbols");
                eqs.push(Equation::new(left, zero_w.clone()));
            }
        }
        eqs
    }

    /// Adds any missing zero-absorption equations, returning how many were
    /// added.
    pub fn saturate_with_zero_equations(&mut self) -> usize {
        let mut added = 0;
        for eq in Self::zero_equations(&self.alphabet) {
            if !self.equations.contains(&eq) {
                self.equations.push(eq);
                added += 1;
            }
        }
        added
    }

    /// `true` if every zero-absorption equation is present.
    pub fn is_zero_saturated(&self) -> bool {
        Self::zero_equations(&self.alphabet)
            .iter()
            .all(|eq| self.equations.contains(eq))
    }

    /// A copy with all zero-absorption equations present.
    pub fn zero_saturated(&self) -> Presentation {
        let mut p = self.clone();
        p.saturate_with_zero_equations();
        p
    }

    /// The goal equation `A₀ = 0`.
    pub fn goal(&self) -> Equation {
        Equation::new(
            Word::single(self.alphabet.a0()),
            Word::single(self.alphabet.zero()),
        )
    }

    /// `true` if every equation is in the paper's normalized `(2,1)` shape.
    pub fn is_normalized(&self) -> bool {
        self.equations.iter().all(Equation::is_two_one)
    }

    /// `true` if every equation is `(2,1)` or a non-reflexive `(1,1)` — the
    /// shapes the reduction crate accepts (it handles `A = B` equations
    /// with a dedicated dependency pair).
    pub fn is_reduction_ready(&self) -> bool {
        self.equations
            .iter()
            .all(|eq| eq.is_two_one() || (eq.is_one_one() && !eq.is_reflexive()))
    }

    /// Fresh symbols introduced after the first `base_len` symbols (helper
    /// for displaying normalization output).
    pub fn symbols_from(&self, base_len: usize) -> Vec<Sym> {
        (base_len..self.alphabet.len()).map(Sym::from).collect()
    }

    /// Renders all equations, one per line.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.alphabet);
        for eq in &self.equations {
            out.push_str("  ");
            out.push_str(&eq.render(&self.alphabet));
            out.push('\n');
        }
        out.push_str(&format!("  goal: {}\n", self.goal().render(&self.alphabet)));
        out
    }
}

impl std::fmt::Display for Presentation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Builds the running example used throughout this crate's tests and the
/// reduction crate: `S = {A0, A1, 0}` with the single defining equation
/// `A0 A0 = A1` plus optionally `A0 A0 = 0` (making `A0 = 0` *derivable*
/// when combined with `A0 A0 = A1` and `A1 = …`; see the derivation tests).
#[cfg(test)]
pub(crate) fn example_derivable() -> Presentation {
    // Equations: A0 A0 = A1, A0 A0 = 0 … wait — with both, A1 = 0 is
    // derivable but A0 = 0 still needs a route from the single symbol A0.
    // Use: A1 A1 = A0 (so A0 expands), A1 A1 = 0 (so the same factor
    // contracts to 0): A0 -> A1 A1 -> 0.
    let alphabet = Alphabet::standard(2);
    let e1 = Equation::parse("A1 A1 = A0", &alphabet).unwrap();
    let e2 = Equation::parse("A1 A1 = 0", &alphabet).unwrap();
    let mut p = Presentation::new(alphabet, vec![e1, e2]).unwrap();
    p.saturate_with_zero_equations();
    p
}

/// A presentation whose goal is *not* derivable and which has a finite
/// cancellation countermodel (only the zero equations).
#[cfg(test)]
pub(crate) fn example_refutable() -> Presentation {
    let alphabet = Alphabet::standard(1);
    let mut p = Presentation::new(alphabet, vec![]).unwrap();
    p.saturate_with_zero_equations();
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_saturation() {
        let alphabet = Alphabet::standard(2); // A0 A1 0
        let mut p = Presentation::new(alphabet, vec![]).unwrap();
        assert!(!p.is_zero_saturated());
        let added = p.saturate_with_zero_equations();
        // For |S| = 3: A·0 for 3 symbols, 0·A for the 2 non-zero = 5.
        assert_eq!(added, 5);
        assert!(p.is_zero_saturated());
        // Idempotent.
        assert_eq!(p.saturate_with_zero_equations(), 0);
    }

    #[test]
    fn goal_is_a0_equals_zero() {
        let p = example_refutable();
        let g = p.goal();
        assert!(g.lhs.is_symbol(p.alphabet().a0()));
        assert!(g.rhs.is_symbol(p.alphabet().zero()));
        assert!(g.is_one_one());
    }

    #[test]
    fn validates_symbols() {
        let alphabet = Alphabet::standard(1);
        let foreign = Equation::new(
            Word::from_raw([7, 8]).unwrap(),
            Word::from_raw([0]).unwrap(),
        );
        assert!(Presentation::new(alphabet.clone(), vec![foreign.clone()]).is_err());
        let mut p = Presentation::new(alphabet, vec![]).unwrap();
        assert!(p.push_equation(foreign).is_err());
    }

    #[test]
    fn normalization_shape_check() {
        let p = example_derivable();
        assert!(p.is_normalized(), "example uses only (2,1) equations");
        let alphabet = Alphabet::standard(1);
        let long = Equation::parse("A0 A0 A0 = A0", &alphabet).unwrap();
        let p2 = Presentation::new(alphabet, vec![long]).unwrap();
        assert!(!p2.is_normalized());
    }

    #[test]
    fn render_mentions_everything() {
        let p = example_derivable();
        let s = p.render();
        assert!(s.contains("A1 A1 = A0"));
        assert!(s.contains("goal: A0 = 0"));
        assert!(s.contains("S = {A0, A1, 0}"));
    }

    #[test]
    fn zero_equations_count() {
        let alphabet = Alphabet::standard(3); // 4 symbols
        let eqs = Presentation::zero_equations(&alphabet);
        // A·0 for each of 4 symbols + 0·A for the 3 non-zero.
        assert_eq!(eqs.len(), 7);
        assert!(eqs.iter().all(|e| e.is_two_one()));
    }
}
