//! # td-semigroup — finitely presented semigroups with zero
//!
//! The substrate of Gurevich & Lewis's undecidability proof. Their Main
//! Lemma (proved in the companion paper *The word problem for cancellation
//! semigroups with zero*) concerns formulas
//!
//! ```text
//! φ ≡ x₁ = y₁ & … & xₙ = yₙ  ⇒  A₀ = 0
//! ```
//!
//! over an alphabet `S ∋ {A₀, 0}` whose antecedents contain all
//! zero-absorption equations (`A·0 = 0`, `0·A = 0`), and states that
//!
//! * `{φ : φ holds in every S-generated semigroup}` and
//! * `{φ : φ fails in some finite S-generated cancellation semigroup
//!   without identity}`
//!
//! are effectively inseparable. This crate implements both *witness sides*
//! of that dichotomy, plus everything needed to feed the reduction:
//!
//! * [`word::Word`]s, [`equation::Equation`]s and zero-saturated
//!   [`presentation::Presentation`]s;
//! * [`normalize`](mod@normalize) — the paper's presentation transformation to equations
//!   with `|xᵢ| = 2`, `|yᵢ| = 1` ("if φ contains a conjunct ABC = DA … we
//!   introduce new symbols E and F…");
//! * [`derivation`] — breadth-first search for replacement derivations
//!   `A₀ ⇒ … ⇒ 0`, with replayable [`derivation::Derivation`] certificates;
//! * [`rewrite`] — a rule-oriented reducer for normalized presentations;
//! * [`quotient`] — bounded congruence closure over the word universe (the
//!   quotient `S*/≈` of the paper's part (A), truncated to a finite window);
//! * [`cayley`] — finite semigroups as Cayley tables, with
//!   [`properties`] checkers for associativity, zero, identity, the
//!   cancellation conditions (i)/(ii), and S-generation;
//! * [`adjoin`] — adjoining an identity (`G → G′`), preserving cancellation
//!   exactly as in the paper's part (B);
//! * [`model_search`] — a backtracking finite-model finder for cancellation
//!   countermodels;
//! * [`families`] — closed-form semigroup families (null semigroups, cyclic
//!   nilpotent semigroups) used as analytic countermodels;
//! * [`parser`] — a small text format for presentations.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adjoin;
pub mod alphabet;
pub mod cayley;
pub mod derivation;
pub mod equation;
pub mod error;
pub mod families;
pub mod model_search;
pub mod normalize;
pub mod parser;
pub mod presentation;
pub mod properties;
pub mod quotient;
pub mod rewrite;
pub mod symbol;
pub(crate) mod union_find;
pub mod word;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::adjoin::adjoin_identity;
    pub use crate::alphabet::Alphabet;
    pub use crate::cayley::{Elem, FiniteSemigroup, Interpretation};
    pub use crate::derivation::{search_derivation, Derivation, SearchBudget, SearchResult};
    pub use crate::equation::Equation;
    pub use crate::error::SgError;
    pub use crate::families::{cyclic_nilpotent, null_semigroup};
    pub use crate::model_search::{find_counter_model, ModelSearchOptions};
    pub use crate::normalize::{normalize, Normalized};
    pub use crate::presentation::Presentation;
    pub use crate::properties::{
        cancellation_violation, has_cancellation_property, is_generated_by, satisfies_presentation,
    };
    pub use crate::symbol::Sym;
    pub use crate::word::Word;
}

pub use prelude::*;
