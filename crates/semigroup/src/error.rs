//! Error types for `td-semigroup`.

use std::fmt;

/// Errors from building alphabets, words, presentations, Cayley tables, or
/// parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgError {
    /// An alphabet was declared with a duplicate symbol name.
    DuplicateSymbol(String),
    /// A symbol name was not found in the alphabet.
    UnknownSymbol(String),
    /// The alphabet is missing its zero symbol or the distinguished `A₀`.
    MissingDistinguished(String),
    /// Semigroup words must be nonempty (there is no empty product).
    EmptyWord,
    /// A symbol id was out of range for the alphabet it was used with.
    SymbolOutOfRange {
        /// The offending symbol index.
        sym: usize,
        /// Alphabet size.
        len: usize,
    },
    /// A Cayley table was not square, or an entry was out of range.
    BadTable(String),
    /// The operation table is not associative at the given triple.
    NotAssociative {
        /// Witness triple `(a, b, c)` with `(ab)c ≠ a(bc)`.
        witness: (usize, usize, usize),
    },
    /// The semigroup lacks a required zero element.
    NoZero,
    /// An interpretation had the wrong number of symbols.
    InterpretationArity {
        /// Expected number of symbols (alphabet size).
        expected: usize,
        /// Actual length of the map.
        got: usize,
    },
    /// An element id was out of range for the semigroup.
    ElementOutOfRange {
        /// The offending element index.
        elem: usize,
        /// Semigroup order.
        len: usize,
    },
    /// A derivation failed to replay (bad step index, position, or mismatch).
    DerivationReplay(String),
    /// A parse error in the text format, with 1-based line number.
    Parse {
        /// Line on which the error occurred (1-based).
        line: usize,
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for SgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgError::DuplicateSymbol(s) => write!(f, "duplicate symbol `{s}`"),
            SgError::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
            SgError::MissingDistinguished(s) => {
                write!(f, "alphabet is missing distinguished symbol `{s}`")
            }
            SgError::EmptyWord => write!(f, "semigroup words must be nonempty"),
            SgError::SymbolOutOfRange { sym, len } => {
                write!(f, "symbol {sym} out of range (alphabet has {len} symbols)")
            }
            SgError::BadTable(msg) => write!(f, "bad Cayley table: {msg}"),
            SgError::NotAssociative { witness: (a, b, c) } => {
                write!(f, "not associative: (e{a}·e{b})·e{c} ≠ e{a}·(e{b}·e{c})")
            }
            SgError::NoZero => write!(f, "semigroup has no zero element"),
            SgError::InterpretationArity { expected, got } => write!(
                f,
                "interpretation maps {got} symbols, alphabet has {expected}"
            ),
            SgError::ElementOutOfRange { elem, len } => {
                write!(
                    f,
                    "element {elem} out of range (semigroup has {len} elements)"
                )
            }
            SgError::DerivationReplay(msg) => {
                write!(f, "derivation replay failed: {msg}")
            }
            SgError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for SgError {}

/// Convenient result alias used throughout the crate.
pub type Result<T, E = SgError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(SgError::EmptyWord.to_string().contains("nonempty"));
        assert!(SgError::NotAssociative { witness: (1, 2, 3) }
            .to_string()
            .contains("e1"));
        let boxed: Box<dyn std::error::Error> = Box::new(SgError::NoZero);
        assert!(!boxed.to_string().is_empty());
    }
}
