//! Generating alphabets `S = {A₀, A₁, …, A_p}` where one symbol is the
//! zero `0` and one is the distinguished `A₀` of the goal equation `A₀ = 0`.

use crate::error::{Result, SgError};
use crate::symbol::Sym;

/// An alphabet with two distinguished symbols: the zero and `A₀`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
    zero: Sym,
    a0: Sym,
}

impl Alphabet {
    /// Creates an alphabet from names. `zero_name` and `a0_name` must occur
    /// among `names` and be distinct.
    ///
    /// # Errors
    ///
    /// Fails on a duplicate name, a missing `a0_name`/`zero_name`, or the
    /// two designated names coinciding.
    pub fn new<I, S>(names: I, a0_name: &str, zero_name: &str) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        for (i, n) in names.iter().enumerate() {
            if names[..i].contains(n) {
                return Err(SgError::DuplicateSymbol(n.clone()));
            }
        }
        let find = |name: &str| -> Result<Sym> {
            names
                .iter()
                .position(|n| n == name)
                .map(Sym::from)
                .ok_or_else(|| SgError::MissingDistinguished(name.to_owned()))
        };
        let zero = find(zero_name)?;
        let a0 = find(a0_name)?;
        if zero == a0 {
            return Err(SgError::DuplicateSymbol(format!(
                "`{zero_name}` cannot serve as both zero and A0"
            )));
        }
        Ok(Self { names, zero, a0 })
    }

    /// The paper's standard alphabet: symbols `A0, …, A{n_regular-1}` plus
    /// the zero symbol `0` ("S = {A0, A1, …, Ap}, where Ap is the symbol 0").
    ///
    /// # Panics
    /// Panics if `n_regular == 0` (there must be at least `A0`).
    pub fn standard(n_regular: usize) -> Self {
        assert!(n_regular >= 1, "need at least the symbol A0");
        let mut names: Vec<String> = (0..n_regular).map(|i| format!("A{i}")).collect();
        names.push("0".to_owned());
        Alphabet::new(names, "A0", "0").expect("construction is well-formed")
    }

    /// Number of symbols (including the zero symbol).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `false`: alphabets always contain at least zero and `A₀`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The zero symbol.
    pub fn zero(&self) -> Sym {
        self.zero
    }

    /// The distinguished symbol `A₀`.
    pub fn a0(&self) -> Sym {
        self.a0
    }

    /// All symbols, in index order.
    pub fn syms(&self) -> impl Iterator<Item = Sym> {
        (0..self.len()).map(Sym::from)
    }

    /// The name of `sym`.
    ///
    /// # Panics
    /// Panics if `sym` is out of range.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Looks a symbol up by name.
    pub fn sym(&self, name: &str) -> Option<Sym> {
        self.names.iter().position(|n| n == name).map(Sym::from)
    }

    /// Looks a symbol up by name, as a `Result`.
    ///
    /// # Errors
    ///
    /// Fails with [`SgError::UnknownSymbol`] when no symbol has that name.
    pub fn require(&self, name: &str) -> Result<Sym> {
        self.sym(name)
            .ok_or_else(|| SgError::UnknownSymbol(name.to_owned()))
    }

    /// Appends a fresh symbol with the given name.
    ///
    /// # Errors
    ///
    /// Fails with [`SgError::DuplicateSymbol`] when the name is already
    /// taken.
    pub fn add_symbol(&mut self, name: impl Into<String>) -> Result<Sym> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(SgError::DuplicateSymbol(name));
        }
        let sym = Sym::from(self.names.len());
        self.names.push(name);
        Ok(sym)
    }

    /// A name of the form `base`, `base_1`, `base_2`, … not yet present.
    pub fn fresh_name(&self, base: &str) -> String {
        if !self.names.iter().any(|n| n == base) {
            return base.to_owned();
        }
        for i in 1.. {
            let candidate = format!("{base}_{i}");
            if !self.names.contains(&candidate) {
                return candidate;
            }
        }
        unreachable!()
    }

    /// Validates that a symbol belongs to this alphabet.
    ///
    /// # Errors
    ///
    /// Fails with [`SgError::SymbolOutOfRange`] when `sym`'s index is past
    /// the end of the alphabet.
    pub fn check(&self, sym: Sym) -> Result<()> {
        if sym.index() < self.len() {
            Ok(())
        } else {
            Err(SgError::SymbolOutOfRange {
                sym: sym.index(),
                len: self.len(),
            })
        }
    }
}

impl std::fmt::Display for Alphabet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S = {{{}}}", self.names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_shape() {
        let a = Alphabet::standard(3);
        assert_eq!(a.len(), 4);
        assert_eq!(a.name(a.a0()), "A0");
        assert_eq!(a.name(a.zero()), "0");
        assert_eq!(a.sym("A2"), Some(Sym::new(2)));
        assert_eq!(a.sym("A3"), None);
        assert_eq!(a.to_string(), "S = {A0, A1, A2, 0}");
    }

    #[test]
    fn custom_alphabet() {
        let a = Alphabet::new(["x", "y", "z"], "x", "z").unwrap();
        assert_eq!(a.a0(), Sym::new(0));
        assert_eq!(a.zero(), Sym::new(2));
        assert!(!a.is_empty());
    }

    #[test]
    fn validation() {
        assert!(matches!(
            Alphabet::new(["a", "a", "0"], "a", "0"),
            Err(SgError::DuplicateSymbol(_))
        ));
        assert!(matches!(
            Alphabet::new(["a", "b"], "a", "0"),
            Err(SgError::MissingDistinguished(_))
        ));
        assert!(matches!(
            Alphabet::new(["a"], "a", "a"),
            Err(SgError::DuplicateSymbol(_))
        ));
    }

    #[test]
    fn add_and_fresh_symbols() {
        let mut a = Alphabet::standard(1);
        let s = a.add_symbol("B").unwrap();
        assert_eq!(a.name(s), "B");
        assert!(a.add_symbol("B").is_err());
        assert_eq!(a.fresh_name("B"), "B_1");
        assert_eq!(a.fresh_name("C"), "C");
        assert!(a.check(s).is_ok());
        assert!(a.check(Sym::new(99)).is_err());
    }

    #[test]
    #[should_panic(expected = "at least the symbol A0")]
    fn standard_requires_a0() {
        let _ = Alphabet::standard(0);
    }
}
