//! Words over the alphabet: elements of the free semigroup `S⁺`.

use crate::alphabet::Alphabet;
use crate::error::{Result, SgError};
use crate::symbol::Sym;

/// A nonempty string of symbols (semigroups have no empty product).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Word {
    syms: Vec<Sym>,
}

impl Word {
    /// Creates a word; fails on the empty string.
    pub fn new(syms: impl IntoIterator<Item = Sym>) -> Result<Self> {
        let syms: Vec<Sym> = syms.into_iter().collect();
        if syms.is_empty() {
            return Err(SgError::EmptyWord);
        }
        Ok(Self { syms })
    }

    /// The one-symbol word.
    pub fn single(sym: Sym) -> Self {
        Self { syms: vec![sym] }
    }

    /// A word from raw `u16` indices.
    ///
    /// # Errors
    ///
    /// Fails with [`SgError::EmptyWord`] on an empty iterator.
    pub fn from_raw(syms: impl IntoIterator<Item = u16>) -> Result<Self> {
        Self::new(syms.into_iter().map(Sym::new))
    }

    /// Parses a whitespace-separated word like `"A0 A1 0"`.
    ///
    /// # Errors
    ///
    /// Fails on a token that names no symbol of `alphabet`, or on an
    /// empty/whitespace-only input.
    pub fn parse(text: &str, alphabet: &Alphabet) -> Result<Self> {
        let syms = text
            .split_whitespace()
            .map(|tok| alphabet.require(tok))
            .collect::<Result<Vec<_>>>()?;
        Word::new(syms)
    }

    /// Length (number of symbols).
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Words are never empty; this always returns `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The symbols.
    pub fn syms(&self) -> &[Sym] {
        &self.syms
    }

    /// The symbol at `ix`.
    ///
    /// # Panics
    /// Panics if `ix` is out of range.
    pub fn get(&self, ix: usize) -> Sym {
        self.syms[ix]
    }

    /// `true` if this is a single-symbol word equal to `sym`.
    pub fn is_symbol(&self, sym: Sym) -> bool {
        self.syms.len() == 1 && self.syms[0] == sym
    }

    /// Concatenation.
    pub fn concat(&self, other: &Word) -> Word {
        let mut syms = Vec::with_capacity(self.len() + other.len());
        syms.extend_from_slice(&self.syms);
        syms.extend_from_slice(&other.syms);
        Word { syms }
    }

    /// `true` if `sub` occurs at position `pos`.
    pub fn occurs_at(&self, sub: &Word, pos: usize) -> bool {
        pos + sub.len() <= self.len() && self.syms[pos..pos + sub.len()] == sub.syms
    }

    /// All positions at which `sub` occurs (possibly overlapping).
    pub fn occurrences(&self, sub: &Word) -> Vec<usize> {
        if sub.len() > self.len() {
            return Vec::new();
        }
        (0..=self.len() - sub.len())
            .filter(|&p| self.occurs_at(sub, p))
            .collect()
    }

    /// Replaces the length-`len` factor at `pos` by `replacement`. Fails if
    /// the range is out of bounds (the result is always nonempty because
    /// `replacement` is a `Word`).
    pub fn replace_range(&self, pos: usize, len: usize, replacement: &Word) -> Result<Word> {
        if pos + len > self.len() {
            return Err(SgError::DerivationReplay(format!(
                "replacement range {pos}..{} exceeds word length {}",
                pos + len,
                self.len()
            )));
        }
        let mut syms = Vec::with_capacity(self.len() - len + replacement.len());
        syms.extend_from_slice(&self.syms[..pos]);
        syms.extend_from_slice(&replacement.syms);
        syms.extend_from_slice(&self.syms[pos + len..]);
        Ok(Word { syms })
    }

    /// `true` if the word mentions `sym`.
    pub fn contains(&self, sym: Sym) -> bool {
        self.syms.contains(&sym)
    }

    /// Renders with symbol names, space-separated.
    pub fn render(&self, alphabet: &Alphabet) -> String {
        self.syms
            .iter()
            .map(|&s| alphabet.name(s))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl std::fmt::Display for Word {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, s) in self.syms.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alpha() -> Alphabet {
        Alphabet::standard(2) // A0 A1 0
    }

    #[test]
    fn construction_and_parse() {
        let a = alpha();
        let w = Word::parse("A0 A1 A0", &a).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w.get(1), Sym::new(1));
        assert_eq!(w.render(&a), "A0 A1 A0");
        assert!(Word::new([]).is_err());
        assert!(Word::parse("A0 BOGUS", &a).is_err());
        assert!(Word::parse("", &a).is_err());
        assert!(!w.is_empty());
    }

    #[test]
    fn single_and_is_symbol() {
        let a = alpha();
        let w = Word::single(a.zero());
        assert!(w.is_symbol(a.zero()));
        assert!(!w.is_symbol(a.a0()));
        assert!(w.contains(a.zero()));
    }

    #[test]
    fn concat_and_occurrences() {
        let a = alpha();
        let ab = Word::parse("A0 A1", &a).unwrap();
        let abab = ab.concat(&ab);
        assert_eq!(abab.len(), 4);
        assert_eq!(abab.occurrences(&ab), vec![0, 2]);
        // Overlapping occurrences are found.
        let aa = Word::parse("A0 A0", &a).unwrap();
        let aaa = Word::parse("A0 A0 A0", &a).unwrap();
        assert_eq!(aaa.occurrences(&aa), vec![0, 1]);
        // Longer sub than word: none.
        assert!(ab.occurrences(&abab).is_empty());
    }

    #[test]
    fn replace_range() {
        let a = alpha();
        let w = Word::parse("A0 A1 A0", &a).unwrap();
        let zero = Word::single(a.zero());
        let w2 = w.replace_range(1, 1, &zero).unwrap();
        assert_eq!(w2.render(&a), "A0 0 A0");
        let w3 = w.replace_range(0, 2, &zero).unwrap();
        assert_eq!(w3.render(&a), "0 A0");
        assert!(w.replace_range(2, 2, &zero).is_err());
        // Replacement can grow the word.
        let grown = w
            .replace_range(2, 1, &Word::parse("A1 A1", &a).unwrap())
            .unwrap();
        assert_eq!(grown.render(&a), "A0 A1 A1 A1");
    }

    #[test]
    fn ordering_and_display() {
        let w1 = Word::from_raw([0, 1]).unwrap();
        let w2 = Word::from_raw([0, 2]).unwrap();
        assert!(w1 < w2);
        assert_eq!(w1.to_string(), "s0 s1");
    }
}
