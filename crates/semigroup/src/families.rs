//! Closed-form families of finite cancellation semigroups with zero.
//!
//! The Main Lemma's "refutable" side needs finite S-generated cancellation
//! semigroups without identity in which `A₀ ≠ 0`. These families provide
//! them analytically (no search):
//!
//! * [`null_semigroup`]`(n)` — `n` elements, every product is `0`;
//! * [`cyclic_nilpotent`]`(n)` — `{0, a, a², …, a^{n-1}}` with `aⁿ = 0`.
//!
//! Both have a zero, no identity (for `n ≥ 2`), and satisfy the paper's
//! cancellation conditions (i) and (ii) — verified in tests, not assumed.

use crate::alphabet::Alphabet;
use crate::cayley::{FiniteSemigroup, Interpretation};
use crate::presentation::Presentation;

/// The `n`-element null semigroup: element `0` is the zero and `x·y = 0`
/// for all `x, y`.
///
/// Cancellation holds vacuously for (i) (no nonzero products) and for (ii)
/// (`x·y = 0 = x` forces `x = 0`).
///
/// # Panics
/// Panics if `n == 0`.
pub fn null_semigroup(n: usize) -> FiniteSemigroup {
    assert!(n >= 1, "need at least the zero element");
    FiniteSemigroup::new(vec![vec![0; n]; n]).expect("constant tables are associative")
}

/// The cyclic nilpotent semigroup of order `n`: elements `0, a, a², …,
/// a^{n-1}` (element `i` is `aⁱ`, element `0` is the zero), with
/// `aⁱ·aʲ = a^{i+j}` when `i + j < n` and `0` otherwise.
///
/// # Panics
/// Panics if `n < 2` (one element would make the zero an identity).
pub fn cyclic_nilpotent(n: usize) -> FiniteSemigroup {
    assert!(n >= 2, "need the zero plus at least a");
    let mut table = vec![vec![0usize; n]; n];
    for (i, row) in table.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            if i >= 1 && j >= 1 && i + j < n {
                *cell = i + j;
            }
        }
    }
    FiniteSemigroup::new(table).expect("truncated addition is associative")
}

/// The smallest countermodel package of the running example: the alphabet
/// `S = {A0, 0}`, the 2-element null semigroup, and the interpretation
/// `A0 ↦ a`, `0 ↦ 0`. For the zero-saturated presentation with **no other
/// equations**, this is a finite S-generated cancellation semigroup without
/// identity in which `A₀ = 0` fails — the Main Lemma's second set.
pub fn min_counterexample() -> (Alphabet, FiniteSemigroup, Interpretation) {
    let alphabet = Alphabet::standard(1);
    let g = null_semigroup(2);
    let interp = Interpretation::from_raw([1, 0]); // A0 -> a, 0 -> 0
    (alphabet, g, interp)
}

/// Picks an interpretation of `p`'s alphabet into the null semigroup of
/// order 2 (`A₀ ↦ a`, everything else `↦ 0`) and returns it if it is a
/// genuine countermodel for `p` (it is, whenever every non-zero equation of
/// `p` evaluates to `0 = 0` under this map — e.g. when every right-hand
/// side avoids `A₀` and every left-hand side has length ≥ 2).
pub fn null_counter_model(p: &Presentation) -> Option<(FiniteSemigroup, Interpretation)> {
    let g = null_semigroup(2);
    let map: Vec<usize> = p
        .alphabet()
        .syms()
        .map(|s| usize::from(s == p.alphabet().a0()))
        .collect();
    let interp = Interpretation::from_raw(map);
    crate::properties::is_countermodel(&g, &interp, p).then_some((g, interp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presentation::example_refutable;
    use crate::properties::{has_cancellation_property, is_countermodel, is_generated_by};

    #[test]
    fn null_semigroup_properties() {
        for n in 2..=6 {
            let g = null_semigroup(n);
            assert_eq!(g.len(), n);
            assert!(g.check_associative().is_ok());
            assert_eq!(g.zero().map(|z| z.index()), Some(0));
            assert!(g.identity().is_none());
            assert!(has_cancellation_property(&g), "null({n})");
        }
    }

    #[test]
    fn cyclic_nilpotent_properties() {
        for n in 2..=7 {
            let g = cyclic_nilpotent(n);
            assert_eq!(g.len(), n);
            assert!(g.check_associative().is_ok());
            assert_eq!(g.zero().map(|z| z.index()), Some(0));
            assert!(g.identity().is_none());
            assert!(has_cancellation_property(&g), "nilpotent({n})");
        }
    }

    #[test]
    fn cyclic_nilpotent_is_generated_by_a() {
        // a generates everything: a, a², …, and aⁿ = 0.
        let g = cyclic_nilpotent(5);
        let interp = Interpretation::from_raw([1, 0]);
        assert!(is_generated_by(&g, &interp));
    }

    #[test]
    fn min_counterexample_is_a_countermodel() {
        let (_alphabet, g, interp) = min_counterexample();
        let p = example_refutable();
        assert!(is_countermodel(&g, &interp, &p));
    }

    #[test]
    fn null_counter_model_on_refutable_presentation() {
        let p = example_refutable();
        let (g, interp) = null_counter_model(&p).expect("zero eqs only: refutable");
        assert!(is_countermodel(&g, &interp, &p));
    }

    #[test]
    fn null_counter_model_rejects_derivable_presentation() {
        let p = crate::presentation::example_derivable();
        // A1 A1 = A0 forces interp(A0) = 0 in a null semigroup; the fixed
        // interpretation maps A0 to a ≠ 0, so the equation fails and no
        // countermodel is produced.
        assert!(null_counter_model(&p).is_none());
    }

    #[test]
    #[should_panic(expected = "zero plus at least a")]
    fn cyclic_needs_two_elements() {
        let _ = cyclic_nilpotent(1);
    }
}
