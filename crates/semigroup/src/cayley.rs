//! Finite semigroups as Cayley (multiplication) tables, and interpretations
//! of alphabets into them.

use crate::alphabet::Alphabet;
use crate::error::{Result, SgError};
use crate::symbol::Sym;
use crate::word::Word;

/// An element of a finite semigroup, as a dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Elem(u16);

impl Elem {
    /// Wraps a dense index.
    #[inline]
    pub const fn new(ix: u16) -> Self {
        Self(ix)
    }

    /// The dense index as `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for Elem {
    fn from(ix: usize) -> Self {
        Self(u16::try_from(ix).expect("element index exceeds u16::MAX"))
    }
}

impl std::fmt::Display for Elem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A finite magma given by its multiplication table; [`FiniteSemigroup::new`]
/// additionally verifies associativity, making it a semigroup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiniteSemigroup {
    n: usize,
    /// Row-major: `table[a*n + b] = a·b`.
    table: Vec<u16>,
}

impl FiniteSemigroup {
    /// Builds a semigroup from a square table, verifying entry ranges and
    /// associativity.
    ///
    /// # Errors
    ///
    /// Fails on an empty or non-square table, an entry out of range, or a
    /// non-associative triple.
    pub fn new(table: Vec<Vec<usize>>) -> Result<Self> {
        let g = Self::new_unchecked_associativity(table)?;
        g.check_associative()?;
        Ok(g)
    }

    /// Builds from a square table, verifying entry ranges only. Used by the
    /// model searcher, which checks associativity incrementally.
    ///
    /// # Errors
    ///
    /// Fails with [`SgError::BadTable`] on an empty or non-square table or
    /// an entry outside `0..n`.
    pub fn new_unchecked_associativity(table: Vec<Vec<usize>>) -> Result<Self> {
        let n = table.len();
        if n == 0 {
            return Err(SgError::BadTable("empty table".into()));
        }
        let mut flat = Vec::with_capacity(n * n);
        for row in &table {
            if row.len() != n {
                return Err(SgError::BadTable(format!(
                    "row has {} entries, expected {n}",
                    row.len()
                )));
            }
            for &v in row {
                if v >= n {
                    return Err(SgError::BadTable(format!("entry {v} out of range 0..{n}")));
                }
                flat.push(v as u16);
            }
        }
        Ok(Self { n, table: flat })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Finite semigroups here are always nonempty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The product `a·b`.
    #[inline]
    pub fn mul(&self, a: Elem, b: Elem) -> Elem {
        Elem(self.table[a.index() * self.n + b.index()])
    }

    /// All elements in index order.
    pub fn elements(&self) -> impl Iterator<Item = Elem> {
        (0..self.n).map(Elem::from)
    }

    /// Verifies `(ab)c = a(bc)` for all triples.
    ///
    /// # Errors
    ///
    /// Fails with [`SgError::NotAssociative`] carrying the first witness
    /// triple found.
    pub fn check_associative(&self) -> Result<()> {
        for a in self.elements() {
            for b in self.elements() {
                let ab = self.mul(a, b);
                for c in self.elements() {
                    if self.mul(ab, c) != self.mul(a, self.mul(b, c)) {
                        return Err(SgError::NotAssociative {
                            witness: (a.index(), b.index(), c.index()),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// The zero element (`x0 = 0x = 0` for all `x`), if present. At most one
    /// can exist.
    pub fn zero(&self) -> Option<Elem> {
        self.elements().find(|&z| {
            self.elements()
                .all(|x| self.mul(x, z) == z && self.mul(z, x) == z)
        })
    }

    /// The identity element (`xI = Ix = x` for all `x`), if present.
    pub fn identity(&self) -> Option<Elem> {
        self.elements().find(|&i| {
            self.elements()
                .all(|x| self.mul(x, i) == x && self.mul(i, x) == x)
        })
    }

    /// Evaluates a word under an interpretation of the alphabet.
    ///
    /// # Errors
    ///
    /// Fails when the word mentions a symbol outside the interpretation,
    /// or the interpretation maps one to an element outside this
    /// semigroup.
    pub fn eval(&self, interp: &Interpretation, word: &Word) -> Result<Elem> {
        let mut acc: Option<Elem> = None;
        for &s in word.syms() {
            let e = interp.try_of(s)?;
            if e.index() >= self.n {
                return Err(SgError::ElementOutOfRange {
                    elem: e.index(),
                    len: self.n,
                });
            }
            acc = Some(match acc {
                None => e,
                Some(a) => self.mul(a, e),
            });
        }
        Ok(acc.expect("words are nonempty"))
    }

    /// `a` raised to the `k`-th power (`k ≥ 1`).
    pub fn pow(&self, a: Elem, k: usize) -> Elem {
        assert!(k >= 1, "semigroups have no zeroth power");
        let mut acc = a;
        for _ in 1..k {
            acc = self.mul(acc, a);
        }
        acc
    }

    /// The direct product `g × h`: element `(a, b)` is encoded as
    /// `a·|h| + b`; multiplication is componentwise. Equations are
    /// preserved under componentwise interpretations, zeros multiply to the
    /// product zero — but the **cancellation property is not closed under
    /// products** (see tests), one reason the Main Lemma's countermodels
    /// need care.
    pub fn direct_product(&self, other: &FiniteSemigroup) -> FiniteSemigroup {
        let (n, m) = (self.n, other.n);
        let mut table = vec![vec![0usize; n * m]; n * m];
        for a1 in 0..n {
            for b1 in 0..m {
                for a2 in 0..n {
                    for b2 in 0..m {
                        let left = a1 * m + b1;
                        let right = a2 * m + b2;
                        let pa = self.mul(Elem::from(a1), Elem::from(a2)).index();
                        let pb = other.mul(Elem::from(b1), Elem::from(b2)).index();
                        table[left][right] = pa * m + pb;
                    }
                }
            }
        }
        FiniteSemigroup::new(table).expect("componentwise products are associative")
    }

    /// Encodes a component pair into the direct product's element index.
    pub fn pair_elem(&self, other: &FiniteSemigroup, a: Elem, b: Elem) -> Elem {
        Elem::from(a.index() * other.n + b.index())
    }

    /// Renders the multiplication table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("    ");
        for b in 0..self.n {
            out.push_str(&format!("{b:>3}"));
        }
        out.push('\n');
        for a in 0..self.n {
            out.push_str(&format!("{a:>3}:"));
            for b in 0..self.n {
                out.push_str(&format!(
                    "{:>3}",
                    self.mul(Elem::from(a), Elem::from(b)).index()
                ));
            }
            out.push('\n');
        }
        out
    }
}

/// A map from alphabet symbols to semigroup elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interpretation {
    map: Vec<Elem>,
}

impl Interpretation {
    /// Wraps an element list indexed by symbol.
    pub fn new(map: Vec<Elem>) -> Self {
        Self { map }
    }

    /// Builds from raw indices.
    pub fn from_raw(map: impl IntoIterator<Item = usize>) -> Self {
        Self::new(map.into_iter().map(Elem::from).collect())
    }

    /// Number of interpreted symbols.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no symbols are interpreted.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The element interpreting `sym`.
    ///
    /// # Panics
    /// Panics if `sym` is out of range.
    pub fn of(&self, sym: Sym) -> Elem {
        self.map[sym.index()]
    }

    /// The element interpreting `sym`, as a `Result`.
    ///
    /// # Errors
    ///
    /// Fails with [`SgError::SymbolOutOfRange`] when `sym` is not covered
    /// by this interpretation.
    pub fn try_of(&self, sym: Sym) -> Result<Elem> {
        self.map
            .get(sym.index())
            .copied()
            .ok_or(SgError::SymbolOutOfRange {
                sym: sym.index(),
                len: self.map.len(),
            })
    }

    /// The underlying element list.
    pub fn elems(&self) -> &[Elem] {
        &self.map
    }

    /// Checks the interpretation covers exactly the alphabet.
    ///
    /// # Errors
    ///
    /// Fails with [`SgError::InterpretationArity`] when the element list's
    /// length differs from the alphabet's.
    pub fn check_arity(&self, alphabet: &Alphabet) -> Result<()> {
        if self.map.len() == alphabet.len() {
            Ok(())
        } else {
            Err(SgError::InterpretationArity {
                expected: alphabet.len(),
                got: self.map.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two-element null semigroup: {0, a}, all products 0.
    fn null2() -> FiniteSemigroup {
        FiniteSemigroup::new(vec![vec![0, 0], vec![0, 0]]).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            FiniteSemigroup::new(vec![]),
            Err(SgError::BadTable(_))
        ));
        assert!(matches!(
            FiniteSemigroup::new(vec![vec![0, 0]]),
            Err(SgError::BadTable(_))
        ));
        assert!(matches!(
            FiniteSemigroup::new(vec![vec![5]]),
            Err(SgError::BadTable(_))
        ));
        // Non-associative: left-zero on one entry breaks.
        let bad = FiniteSemigroup::new(vec![vec![1, 0], vec![0, 0]]);
        assert!(matches!(bad, Err(SgError::NotAssociative { .. })));
    }

    #[test]
    fn zero_and_identity_detection() {
        let g = null2();
        assert_eq!(g.zero(), Some(Elem::new(0)));
        assert_eq!(g.identity(), None);
        // Z2 under multiplication mod 2: {0,1}, 1 is identity, 0 is zero.
        let z2 = FiniteSemigroup::new(vec![vec![0, 0], vec![0, 1]]).unwrap();
        assert_eq!(z2.zero(), Some(Elem::new(0)));
        assert_eq!(z2.identity(), Some(Elem::new(1)));
    }

    #[test]
    fn eval_words() {
        let g = null2();
        let alphabet = Alphabet::standard(1); // A0, 0
        let interp = Interpretation::from_raw([1, 0]); // A0 -> a, 0 -> 0
        interp.check_arity(&alphabet).unwrap();
        let a0 = Word::single(alphabet.a0());
        assert_eq!(g.eval(&interp, &a0).unwrap(), Elem::new(1));
        let w = Word::parse("A0 A0", &alphabet).unwrap();
        assert_eq!(g.eval(&interp, &w).unwrap(), Elem::new(0));
    }

    #[test]
    fn eval_rejects_bad_interp() {
        let g = null2();
        let alphabet = Alphabet::standard(1);
        let short = Interpretation::from_raw([1]);
        let w = Word::parse("A0 0", &alphabet).unwrap();
        assert!(g.eval(&short, &w).is_err());
        assert!(short.check_arity(&alphabet).is_err());
        assert!(!short.is_empty());
    }

    #[test]
    fn powers() {
        // Cyclic nilpotent of order 3: z, a, a² with a³ = z.
        let g = FiniteSemigroup::new(vec![vec![0, 0, 0], vec![0, 2, 0], vec![0, 0, 0]]).unwrap();
        let a = Elem::new(1);
        assert_eq!(g.pow(a, 1), a);
        assert_eq!(g.pow(a, 2), Elem::new(2));
        assert_eq!(g.pow(a, 3), Elem::new(0));
        assert_eq!(g.pow(a, 9), Elem::new(0));
    }

    #[test]
    fn render_table_is_square() {
        let s = null2().render_table();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("0:"));
    }

    #[test]
    fn direct_product_structure() {
        let g = null2();
        let nil3 = FiniteSemigroup::new(vec![vec![0, 0, 0], vec![0, 2, 0], vec![0, 0, 0]]).unwrap();
        let p = g.direct_product(&nil3);
        assert_eq!(p.len(), 6);
        assert!(p.check_associative().is_ok());
        // Zero of the product is the pair of zeros.
        let zp = p.zero().unwrap();
        assert_eq!(zp, g.pair_elem(&nil3, Elem::new(0), Elem::new(0)));
        // Componentwise multiplication.
        let ab = p.mul(
            g.pair_elem(&nil3, Elem::new(1), Elem::new(1)),
            g.pair_elem(&nil3, Elem::new(1), Elem::new(1)),
        );
        assert_eq!(ab, g.pair_elem(&nil3, Elem::new(0), Elem::new(2)));
        // No identity (neither factor has one).
        assert_eq!(p.identity(), None);
    }

    #[test]
    fn product_preserves_equations_componentwise() {
        use crate::alphabet::Alphabet;
        use crate::equation::Equation;
        use crate::properties::satisfies_equation;
        let g = null2();
        let h = null2();
        let p = g.direct_product(&h);
        let alphabet = Alphabet::standard(1);
        let eq = Equation::parse("A0 A0 = 0", &alphabet).unwrap();
        let ig = Interpretation::from_raw([1, 0]);
        let ih = Interpretation::from_raw([1, 0]);
        assert!(satisfies_equation(&g, &ig, &eq));
        assert!(satisfies_equation(&h, &ih, &eq));
        // Pair the interpretations.
        let ip = Interpretation::new(
            ig.elems()
                .iter()
                .zip(ih.elems())
                .map(|(&a, &b)| g.pair_elem(&h, a, b))
                .collect(),
        );
        assert!(satisfies_equation(&p, &ip, &eq));
    }

    /// Cancellation is NOT closed under direct products: in
    /// `null(2) × nilpotent(3)`, `(a,x)·(v,y)` ignores `v` entirely in the
    /// first component, so distinct right factors give equal nonzero
    /// products.
    #[test]
    fn cancellation_not_closed_under_products() {
        use crate::families::{cyclic_nilpotent, null_semigroup};
        use crate::properties::has_cancellation_property;
        let g = null_semigroup(2);
        let h = cyclic_nilpotent(3);
        assert!(has_cancellation_property(&g));
        assert!(has_cancellation_property(&h));
        let p = g.direct_product(&h);
        assert!(!has_cancellation_property(&p));
    }
}
