//! A small line-oriented text format for presentations.
//!
//! ```text
//! # A word-problem instance φ.
//! alphabet A0 A1 0        # symbol names; `0` is the zero by default
//! a0 A0                   # optional: designate A₀ (default: literal "A0")
//! zero 0                  # optional: designate the zero (default: "0")
//! eq A1 A1 = A0
//! eq A1 A1 = 0
//! zerosat                 # optional: add all zero-absorption equations
//! ```

use crate::alphabet::Alphabet;
use crate::equation::Equation;
use crate::error::{Result, SgError};
use crate::presentation::Presentation;

fn err(line: usize, msg: impl Into<String>) -> SgError {
    SgError::Parse {
        line,
        msg: msg.into(),
    }
}

/// Parses a presentation file.
///
/// # Errors
///
/// Fails with a line-positioned [`SgError::Parse`] on malformed syntax,
/// and propagates alphabet/equation validation errors (duplicate or
/// unknown symbols, empty words).
pub fn parse(text: &str) -> Result<Presentation> {
    let mut names: Option<Vec<String>> = None;
    let mut a0_name = "A0".to_owned();
    let mut zero_name = "0".to_owned();
    let mut raw_eqs: Vec<(usize, String)> = Vec::new();
    let mut zerosat = false;

    for (ix, raw_line) in text.lines().enumerate() {
        let line_no = ix + 1;
        let line = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, body) = match line.split_once(char::is_whitespace) {
            Some((k, b)) => (k, b.trim()),
            None => (line, ""),
        };
        match keyword {
            "alphabet" => {
                if names.is_some() {
                    return Err(err(line_no, "duplicate alphabet declaration"));
                }
                let toks: Vec<String> = body.split_whitespace().map(str::to_owned).collect();
                if toks.is_empty() {
                    return Err(err(line_no, "alphabet needs at least one symbol"));
                }
                names = Some(toks);
            }
            "a0" => {
                if body.is_empty() {
                    return Err(err(line_no, "`a0` needs a symbol name"));
                }
                a0_name = body.to_owned();
            }
            "zero" => {
                if body.is_empty() {
                    return Err(err(line_no, "`zero` needs a symbol name"));
                }
                zero_name = body.to_owned();
            }
            "eq" => {
                if names.is_none() {
                    return Err(err(line_no, "`eq` before `alphabet`"));
                }
                raw_eqs.push((line_no, body.to_owned()));
            }
            "zerosat" => zerosat = true,
            other => {
                return Err(err(
                    line_no,
                    format!("unknown keyword `{other}` (expected alphabet/a0/zero/eq/zerosat)"),
                ));
            }
        }
    }

    let names = names.ok_or_else(|| err(1, "missing `alphabet` declaration"))?;
    let alphabet = Alphabet::new(names, &a0_name, &zero_name).map_err(|e| err(1, e.to_string()))?;
    let mut equations = Vec::with_capacity(raw_eqs.len());
    for (line_no, body) in raw_eqs {
        equations.push(Equation::parse(&body, &alphabet).map_err(|e| err(line_no, e.to_string()))?);
    }
    let mut p = Presentation::new(alphabet, equations).map_err(|e| err(1, e.to_string()))?;
    if zerosat {
        p.saturate_with_zero_equations();
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "
# running example
alphabet A0 A1 0
eq A1 A1 = A0
eq A1 A1 = 0
zerosat
";

    #[test]
    fn parses_example() {
        let p = parse(EXAMPLE).unwrap();
        assert_eq!(p.alphabet().len(), 3);
        assert!(p.is_zero_saturated());
        assert!(p.is_normalized());
        assert_eq!(p.alphabet().name(p.alphabet().a0()), "A0");
        assert_eq!(p.alphabet().name(p.alphabet().zero()), "0");
        // 2 declared + 5 zero equations.
        assert_eq!(p.equations().len(), 7);
    }

    #[test]
    fn custom_distinguished_symbols() {
        let p = parse("alphabet x y z\na0 x\nzero z\neq x y = z\n").unwrap();
        assert_eq!(p.alphabet().name(p.alphabet().a0()), "x");
        assert_eq!(p.alphabet().name(p.alphabet().zero()), "z");
        assert!(!p.is_zero_saturated());
    }

    #[test]
    fn errors_located() {
        assert!(matches!(
            parse("eq A0 = 0\n"),
            Err(SgError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse("alphabet A0 0\nbogus\n"),
            Err(SgError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse("alphabet A0 0\neq A0 = BOGUS\n"),
            Err(SgError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse("alphabet A0 0\nalphabet A0 0\n"),
            Err(SgError::Parse { line: 2, .. })
        ));
        assert!(matches!(parse(""), Err(SgError::Parse { line: 1, .. })));
        // Missing designated symbols.
        assert!(parse("alphabet x y\n").is_err());
    }

    #[test]
    fn comments_and_spacing() {
        let p = parse("  alphabet A0 0   # inline\n\n# full line\n eq A0 A0 = 0 \n").unwrap();
        assert_eq!(p.equations().len(), 1);
    }

    #[test]
    fn roundtrip_with_derivation_search() {
        use crate::derivation::{search_goal_derivation, SearchBudget};
        let p = parse(EXAMPLE).unwrap();
        let r = search_goal_derivation(&p, &SearchBudget::default());
        assert!(r.derivation().is_some());
    }
}
