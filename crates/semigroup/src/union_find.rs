//! A minimal disjoint-set forest, crate-internal.
//!
//! (Deliberately duplicated from `td-core` rather than importing it: the
//! semigroup substrate stands alone, with no dependency on the database
//! layer.)

#[derive(Debug, Clone)]
pub(crate) struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    pub(crate) fn new(len: usize) -> Self {
        Self {
            parent: (0..len as u32).collect(),
            rank: vec![0; len],
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.parent.len()
    }

    #[cfg(test)]
    pub(crate) fn push(&mut self) -> usize {
        let ix = self.parent.len();
        self.parent.push(ix as u32);
        self.rank.push(0);
        ix
    }

    pub(crate) fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    pub(crate) fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    pub(crate) fn class_count(&mut self) -> usize {
        let len = self.len();
        (0..len).filter(|&i| self.find(i) == i).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert_eq!(uf.class_count(), 2);
        let ix = uf.push();
        assert_eq!(ix, 3);
        assert_eq!(uf.len(), 4);
        assert_eq!(uf.class_count(), 3);
    }
}
