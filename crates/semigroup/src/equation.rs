//! Equations between words.

use crate::alphabet::Alphabet;
use crate::error::Result;
use crate::word::Word;

/// An equation `lhs = rhs` between nonempty words.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Equation {
    /// Left-hand side.
    pub lhs: Word,
    /// Right-hand side.
    pub rhs: Word,
}

impl Equation {
    /// Creates an equation.
    pub fn new(lhs: Word, rhs: Word) -> Self {
        Self { lhs, rhs }
    }

    /// Parses `"A0 A1 = 0"`.
    ///
    /// # Errors
    ///
    /// Fails when the `=` is missing or either side fails to parse as a
    /// nonempty word over `alphabet`.
    pub fn parse(text: &str, alphabet: &Alphabet) -> Result<Self> {
        let (l, r) = text
            .split_once('=')
            .ok_or_else(|| crate::error::SgError::Parse {
                line: 0,
                msg: format!("equation `{text}` is missing `=`"),
            })?;
        Ok(Self::new(
            Word::parse(l, alphabet)?,
            Word::parse(r, alphabet)?,
        ))
    }

    /// `true` if `|lhs| = 2` and `|rhs| = 1` — the normalized shape the
    /// Main Lemma is applied with ("We restrict the strings xᵢ and yᵢ … to
    /// be of length 2 and 1, respectively").
    pub fn is_two_one(&self) -> bool {
        self.lhs.len() == 2 && self.rhs.len() == 1
    }

    /// `true` if both sides are single symbols.
    pub fn is_one_one(&self) -> bool {
        self.lhs.len() == 1 && self.rhs.len() == 1
    }

    /// `true` if the equation is of the form `w = w`.
    pub fn is_reflexive(&self) -> bool {
        self.lhs == self.rhs
    }

    /// The equation with sides swapped.
    pub fn flipped(&self) -> Equation {
        Equation::new(self.rhs.clone(), self.lhs.clone())
    }

    /// Renders with symbol names.
    pub fn render(&self, alphabet: &Alphabet) -> String {
        format!(
            "{} = {}",
            self.lhs.render(alphabet),
            self.rhs.render(alphabet)
        )
    }
}

impl std::fmt::Display for Equation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} = {}", self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_shape() {
        let a = Alphabet::standard(2);
        let eq = Equation::parse("A0 A1 = 0", &a).unwrap();
        assert!(eq.is_two_one());
        assert!(!eq.is_one_one());
        assert!(!eq.is_reflexive());
        assert_eq!(eq.render(&a), "A0 A1 = 0");
        assert_eq!(eq.flipped().render(&a), "0 = A0 A1");
        assert!(Equation::parse("A0 A1", &a).is_err());
        assert!(Equation::parse("A0 = BOGUS", &a).is_err());
    }

    #[test]
    fn reflexive_and_one_one() {
        let a = Alphabet::standard(1);
        let eq = Equation::parse("A0 = A0", &a).unwrap();
        assert!(eq.is_reflexive());
        assert!(eq.is_one_one());
    }
}
