//! Normalizing presentations to short equations.
//!
//! The paper: "We restrict the strings xᵢ and yᵢ appearing in the
//! antecedents of φ to be of length 2 and 1, respectively. Imposing this
//! restriction is a simple matter; if φ contains a conjunct ABC = DA, for
//! example, we introduce new symbols E and F into S, add the equations
//! AB = E and DA = F, and replace the equation ABC = DA by EC = F. Any
//! semigroup satisfying the original formula φ will satisfy the new formula,
//! with appropriate interpretations for the new symbols, and vice versa; and
//! the cancellation property is not affected, because only the presentation
//! of the semigroup is changed, not the semigroup itself."
//!
//! Our normalizer handles the general case:
//!
//! * sides longer than 2 are folded left-to-right through fresh *product
//!   symbols* (each with a defining `(2,1)` equation), with sharing — the
//!   same pair never defines two symbols;
//! * `(1,2)` equations are flipped; `(2,2)` equations are split through a
//!   fresh symbol;
//! * `(1,1)` equations (`A = B` between single symbols) are **kept as-is**
//!   (reflexive ones are dropped). They cannot be conservatively encoded as
//!   `(2,1)` equations over a semigroup with zero — any encoding through
//!   products would force factorizations that need not exist in the finite
//!   countermodels — so the reduction crate handles them with a dedicated
//!   dependency pair instead. (The paper's φ format never contains them:
//!   its antecedents are the zero-absorption equations plus genuinely
//!   product-shaped ones.)
//! * the result is zero-saturated over the extended alphabet.
//!
//! [`Normalized`] records the fresh-symbol definitions so that
//! interpretations transfer ([`Normalized::extend_interpretation`]) — the
//! paper's "with appropriate interpretations for the new symbols".

use std::collections::HashMap;

use crate::alphabet::Alphabet;
use crate::cayley::{FiniteSemigroup, Interpretation};
use crate::equation::Equation;
use crate::error::Result;
use crate::presentation::Presentation;
use crate::symbol::Sym;
use crate::word::Word;

/// A normalized presentation plus the bookkeeping to transfer
/// interpretations from the original.
#[derive(Debug, Clone)]
pub struct Normalized {
    /// The normalized, zero-saturated presentation: every equation either
    /// `(2,1)` or a non-reflexive `(1,1)`.
    pub presentation: Presentation,
    /// Definitions of fresh symbols: `sym = a · b` in application order
    /// (later definitions may reference earlier fresh symbols).
    pub definitions: Vec<(Sym, Sym, Sym)>,
    /// Size of the original alphabet (fresh symbols have indices `>=` this).
    pub base_len: usize,
}

impl Normalized {
    /// Extends an interpretation of the *original* alphabet into `g` to the
    /// normalized alphabet: fresh symbols are interpreted as the products
    /// that define them.
    ///
    /// # Errors
    ///
    /// Fails with [`SgError::InterpretationArity`] when `base` does not
    /// cover exactly the original alphabet, or when a defining product
    /// evaluates outside `g`.
    pub fn extend_interpretation(
        &self,
        g: &FiniteSemigroup,
        base: &Interpretation,
    ) -> Result<Interpretation> {
        if base.len() != self.base_len {
            return Err(crate::error::SgError::InterpretationArity {
                expected: self.base_len,
                got: base.len(),
            });
        }
        let mut map = base.elems().to_vec();
        for &(sym, a, b) in &self.definitions {
            debug_assert_eq!(sym.index(), map.len());
            let prod = g.mul(map[a.index()], map[b.index()]);
            map.push(prod);
        }
        Ok(Interpretation::new(map))
    }
}

/// Folds `word` down to a single symbol, creating fresh product symbols as
/// needed. Returns the representing symbol.
fn fold_to_symbol(
    word: &Word,
    alphabet: &mut Alphabet,
    cache: &mut HashMap<(Sym, Sym), Sym>,
    definitions: &mut Vec<(Sym, Sym, Sym)>,
    out_equations: &mut Vec<Equation>,
) -> Sym {
    let mut acc = word.get(0);
    for i in 1..word.len() {
        let b = word.get(i);
        acc = *cache.entry((acc, b)).or_insert_with(|| {
            let name =
                alphabet.fresh_name(&format!("[{}{}]", alphabet.name(acc), alphabet.name(b)));
            let sym = alphabet.add_symbol(name).expect("fresh name is unused");
            definitions.push((sym, acc, b));
            out_equations.push(Equation::new(
                Word::new([acc, b]).expect("two symbols"),
                Word::single(sym),
            ));
            sym
        });
    }
    acc
}

/// Folds `word` down to **two** symbols (or one, if it has length 1).
fn fold_to_pair(
    word: &Word,
    alphabet: &mut Alphabet,
    cache: &mut HashMap<(Sym, Sym), Sym>,
    definitions: &mut Vec<(Sym, Sym, Sym)>,
    out_equations: &mut Vec<Equation>,
) -> Word {
    if word.len() <= 2 {
        return word.clone();
    }
    // Fold the prefix of length len-1 to one symbol, keep the last.
    let prefix = Word::new(word.syms()[..word.len() - 1].iter().copied()).expect("nonempty prefix");
    let head = fold_to_symbol(&prefix, alphabet, cache, definitions, out_equations);
    Word::new([head, word.get(word.len() - 1)]).expect("two symbols")
}

/// Normalizes `p` to `(2,1)` (plus kept `(1,1)`) equations over a possibly
/// extended alphabet.
///
/// # Errors
///
/// Propagates construction errors from assembling the extended alphabet
/// and normalized presentation (fresh names are minted to be unique, so
/// these do not occur for a presentation that validated on input).
pub fn normalize(p: &Presentation) -> Result<Normalized> {
    let base_len = p.alphabet().len();
    let mut alphabet = p.alphabet().clone();
    let mut cache: HashMap<(Sym, Sym), Sym> = HashMap::new();
    let mut definitions = Vec::new();
    let mut out_equations: Vec<Equation> = Vec::new();

    let push = |out: &mut Vec<Equation>, e: Equation| {
        if !out.contains(&e) {
            out.push(e);
        }
    };

    for eq in p.equations() {
        if eq.is_reflexive() {
            continue;
        }
        if eq.is_one_one() {
            push(&mut out_equations, eq.clone());
            continue;
        }
        let l2 = fold_to_pair(
            &eq.lhs,
            &mut alphabet,
            &mut cache,
            &mut definitions,
            &mut out_equations,
        );
        let r2 = fold_to_pair(
            &eq.rhs,
            &mut alphabet,
            &mut cache,
            &mut definitions,
            &mut out_equations,
        );
        match (l2.len(), r2.len()) {
            (2, 1) => push(&mut out_equations, Equation::new(l2, r2)),
            (1, 2) => push(&mut out_equations, Equation::new(r2, l2)),
            (2, 2) => {
                // Split through a fresh symbol representing the rhs pair.
                let mid = fold_to_symbol(
                    &r2,
                    &mut alphabet,
                    &mut cache,
                    &mut definitions,
                    &mut out_equations,
                );
                push(&mut out_equations, Equation::new(l2, Word::single(mid)));
            }
            (1, 1) => unreachable!("(1,1) equations are diverted before folding"),
            _ => unreachable!("fold_to_pair returns words of length 1 or 2"),
        }
    }

    let mut presentation = Presentation::new(alphabet, out_equations)?;
    presentation.saturate_with_zero_equations();
    debug_assert!(presentation.is_reduction_ready());
    Ok(Normalized {
        presentation,
        definitions,
        base_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::null_semigroup;

    #[test]
    fn paper_example_abc_eq_da() {
        // "if φ contains a conjunct ABC = DA … we introduce new symbols E
        // and F into S, add the equations AB = E and DA = F, and replace
        // ABC = DA by EC = F."
        let alphabet = Alphabet::new(["A0", "A", "B", "C", "D", "0"], "A0", "0").unwrap();
        let eq = Equation::parse("A B C = D A", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![eq]).unwrap();
        let n = normalize(&p).unwrap();
        assert!(n.presentation.is_normalized());
        // Two fresh symbols: [AB] and [DA].
        assert_eq!(n.definitions.len(), 2);
        assert_eq!(n.presentation.alphabet().len(), 6 + 2);
        let names: Vec<&str> = n
            .presentation
            .symbols_from(n.base_len)
            .iter()
            .map(|&s| n.presentation.alphabet().name(s))
            .collect();
        assert_eq!(names, vec!["[AB]", "[DA]"]);
        // The replaced equation [AB] C = [DA] is present.
        let ab = n.presentation.alphabet().sym("[AB]").unwrap();
        let da = n.presentation.alphabet().sym("[DA]").unwrap();
        let c = n.presentation.alphabet().sym("C").unwrap();
        let replaced = Equation::new(Word::new([ab, c]).unwrap(), Word::single(da));
        assert!(n.presentation.equations().contains(&replaced));
        assert!(n.presentation.is_zero_saturated());
    }

    #[test]
    fn shared_pairs_are_folded_once() {
        let alphabet = Alphabet::new(["A0", "A", "B", "0"], "A0", "0").unwrap();
        let e1 = Equation::parse("A B A B = A", &alphabet).unwrap();
        let e2 = Equation::parse("A B A = B", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![e1, e2]).unwrap();
        let n = normalize(&p).unwrap();
        // [AB] defined once and reused.
        let ab_count = n
            .definitions
            .iter()
            .filter(|&&(_, a, b)| {
                n.presentation.alphabet().name(a) == "A" && n.presentation.alphabet().name(b) == "B"
            })
            .count();
        assert_eq!(ab_count, 1);
        assert!(n.presentation.is_normalized());
    }

    #[test]
    fn one_one_equations_kept() {
        let alphabet = Alphabet::standard(3); // A0 A1 A2 0
        let e = Equation::parse("A1 = A2", &alphabet).unwrap();
        let e2 = Equation::parse("A1 A1 = A2", &alphabet).unwrap();
        let reflexive = Equation::parse("A1 = A1", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![e.clone(), e2, reflexive]).unwrap();
        let n = normalize(&p).unwrap();
        assert!(n.presentation.equations().contains(&e));
        assert!(!n.presentation.is_normalized(), "a (1,1) equation remains");
        assert!(n.presentation.is_reduction_ready());
        // The reflexive equation was dropped.
        assert!(!n
            .presentation
            .equations()
            .iter()
            .any(Equation::is_reflexive));
    }

    #[test]
    fn a0_equals_zero_is_kept_not_lost() {
        // The degenerate instance A0 = 0 must stay visible to the reduction
        // (see the pipeline: it makes the goal derivable in one step).
        let alphabet = Alphabet::standard(1);
        let e = Equation::parse("A0 = 0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![e.clone()]).unwrap();
        let n = normalize(&p).unwrap();
        assert!(n.presentation.equations().contains(&e));
    }

    #[test]
    fn already_normalized_is_untouched_modulo_zero_eqs() {
        let p = crate::presentation::example_derivable();
        let n = normalize(&p).unwrap();
        assert!(n.definitions.is_empty());
        assert_eq!(
            n.presentation.equations().len(),
            p.equations().len(),
            "zero equations were already present"
        );
    }

    #[test]
    fn interpretation_extension_respects_definitions() {
        // In the null semigroup every product is 0, so every fresh symbol
        // must be interpreted as 0.
        let alphabet = Alphabet::new(["A0", "A", "B", "C", "D", "0"], "A0", "0").unwrap();
        let eq = Equation::parse("A B C = D A", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![eq]).unwrap();
        let n = normalize(&p).unwrap();
        let g = null_semigroup(3); // elements {0, 1, 2}, all products 0
        let base = Interpretation::from_raw([1, 2, 1, 2, 1, 0]);
        let ext = n.extend_interpretation(&g, &base).unwrap();
        assert_eq!(ext.len(), 8);
        for &(sym, _, _) in &n.definitions {
            assert_eq!(ext.of(sym).index(), 0, "products are 0 in a null semigroup");
        }
        // Wrong arity rejected.
        assert!(n
            .extend_interpretation(&g, &Interpretation::from_raw([0, 1]))
            .is_err());
    }

    #[test]
    fn extension_preserves_equation_satisfaction() {
        // If (g, base) satisfies the original equations, (g, ext) satisfies
        // the normalized ones.
        use crate::properties::satisfies_presentation;
        let alphabet = Alphabet::new(["A0", "A", "0"], "A0", "0").unwrap();
        // A A A = 0 holds in cyclic_nilpotent(3) with A -> a (a^3 = 0).
        let eq = Equation::parse("A A A = 0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![eq])
            .unwrap()
            .zero_saturated();
        let n = normalize(&p).unwrap();
        let g = crate::families::cyclic_nilpotent(3);
        let base = Interpretation::from_raw([1, 1, 0]); // A0 -> a, A -> a, 0 -> 0
        assert!(satisfies_presentation(&g, &base, &p));
        let ext = n.extend_interpretation(&g, &base).unwrap();
        assert!(satisfies_presentation(&g, &ext, &n.presentation));
    }

    #[test]
    fn two_two_equations_split() {
        let alphabet = Alphabet::new(["A0", "A", "B", "C", "D", "0"], "A0", "0").unwrap();
        let eq = Equation::parse("A B = C D", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![eq]).unwrap();
        let n = normalize(&p).unwrap();
        assert!(n.presentation.is_normalized());
        // One fresh symbol [CD]; equations: C D = [CD] and A B = [CD].
        assert_eq!(n.definitions.len(), 1);
        let cd = n.presentation.alphabet().sym("[CD]").unwrap();
        let a = n.presentation.alphabet().sym("A").unwrap();
        let b = n.presentation.alphabet().sym("B").unwrap();
        assert!(n
            .presentation
            .equations()
            .contains(&Equation::new(Word::new([a, b]).unwrap(), Word::single(cd))));
    }
}
