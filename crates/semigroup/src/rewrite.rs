//! Rule-oriented rewriting for normalized presentations.
//!
//! A normalized presentation's equations `a b = c` can be read left-to-right
//! as length-reducing string rewrite rules `a b → c`. Repeatedly applying
//! them computes a *normal form* — not canonical in general (the system need
//! not be confluent), but useful as a fast heuristic: a word rewriting to
//! `0` *is* a certificate of derivability (each rewrite is a replacement
//! step), while failure proves nothing. The exhaustive BFS in
//! [`crate::derivation`] remains the complete search.

use crate::derivation::{DerivStep, Derivation};
use crate::error::{Result, SgError};
use crate::presentation::Presentation;
use crate::symbol::Sym;
use crate::word::Word;

/// A compiled set of `(a, b) → c` rules.
#[derive(Debug, Clone)]
pub struct RewriteSystem {
    /// `(lhs₀, lhs₁, rhs, eq_index)` per rule.
    rules: Vec<(Sym, Sym, Sym, usize)>,
}

impl RewriteSystem {
    /// Compiles the `(2,1)` equations of `p` (others are skipped; compile
    /// from a [`crate::normalize::normalize`]d presentation to get all).
    pub fn from_presentation(p: &Presentation) -> Self {
        let rules = p
            .equations()
            .iter()
            .enumerate()
            .filter(|(_, eq)| eq.is_two_one())
            .map(|(i, eq)| (eq.lhs.get(0), eq.lhs.get(1), eq.rhs.get(0), i))
            .collect();
        Self { rules }
    }

    /// Number of compiled rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` if no rules were compiled.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Applies the first applicable rule at the leftmost position, if any.
    /// Returns the new word and the derivation step taken.
    pub fn reduce_once(&self, word: &Word) -> Option<(Word, DerivStep)> {
        if word.len() < 2 {
            return None;
        }
        for pos in 0..word.len() - 1 {
            for &(a, b, c, eq_index) in &self.rules {
                if word.get(pos) == a && word.get(pos + 1) == b {
                    let next = word
                        .replace_range(pos, 2, &Word::single(c))
                        .expect("position in range");
                    return Some((
                        next,
                        DerivStep {
                            eq_index,
                            pos,
                            forward: true,
                        },
                    ));
                }
            }
        }
        None
    }

    /// Reduces to a normal form (leftmost-first strategy), recording the
    /// steps. Each rewrite strictly shrinks the word, so this terminates in
    /// at most `word.len() - 1` steps.
    pub fn normal_form(&self, word: &Word) -> (Word, Derivation) {
        let mut steps = Vec::new();
        let mut cur = word.clone();
        while let Some((next, step)) = self.reduce_once(&cur) {
            steps.push(step);
            cur = next;
        }
        (
            cur,
            Derivation {
                start: word.clone(),
                steps,
            },
        )
    }

    /// `true` if `word` rewrites to the single symbol `target`. When it
    /// does, the returned derivation certifies it.
    pub fn reduces_to(&self, word: &Word, target: Sym) -> Option<Derivation> {
        let (nf, d) = self.normal_form(word);
        nf.is_symbol(target).then_some(d)
    }

    /// Checks the zero-collapse property: in a zero-saturated normalized
    /// presentation, any word containing `0` rewrites to `0`.
    ///
    /// # Errors
    ///
    /// Fails when `word` does not contain the zero symbol (the property
    /// is about such words only).
    pub fn zero_collapses(&self, p: &Presentation, word: &Word) -> Result<bool> {
        if !word.contains(p.alphabet().zero()) {
            return Err(SgError::DerivationReplay(
                "zero_collapses expects a word containing the zero symbol".into(),
            ));
        }
        let (nf, _) = self.normal_form(word);
        Ok(nf.is_symbol(p.alphabet().zero()))
    }

    /// Enumerates the system's **critical pairs** (Knuth–Bendix style).
    /// For `(2,1)` rules `a b → c`, overlaps come in two shapes:
    ///
    /// * *offset overlap*: rules `a b → c` and `b d → e` both apply to
    ///   `a b d`, reducing it to `c d` or `a e`;
    /// * *same redex*: rules `a b → c` and `a b → c′` with `c ≠ c′` reduce
    ///   `a b` to `c` or `c′`.
    pub fn critical_pairs(&self) -> Vec<CriticalPair> {
        let mut out = Vec::new();
        for &(a1, b1, c1, i1) in &self.rules {
            for &(a2, b2, c2, i2) in &self.rules {
                // Same redex, different results.
                if a1 == a2 && b1 == b2 && c1 != c2 {
                    out.push(CriticalPair {
                        peak: Word::new([a1, b1]).expect("two symbols"),
                        left: Word::single(c1),
                        right: Word::single(c2),
                        rules: (i1, i2),
                    });
                }
                // Offset overlap: a1 b1 | b1 d  with b1 = a2.
                if b1 == a2 {
                    let peak = Word::new([a1, b1, b2]).expect("three symbols");
                    let left = Word::new([c1, b2]).expect("two symbols");
                    let right = Word::new([a1, c2]).expect("two symbols");
                    if left != right {
                        out.push(CriticalPair {
                            peak,
                            left,
                            right,
                            rules: (i1, i2),
                        });
                    }
                }
            }
        }
        out
    }

    /// `true` if every critical pair is *joinable*: both sides rewrite to
    /// the same normal form. For a terminating system (ours strictly
    /// shrinks words) this is Newman's lemma's premise, so `true` means the
    /// reduction relation is confluent and [`Self::normal_form`] is
    /// canonical.
    pub fn is_locally_confluent(&self) -> bool {
        self.critical_pairs().iter().all(|cp| {
            let (l, _) = self.normal_form(&cp.left);
            let (r, _) = self.normal_form(&cp.right);
            l == r
        })
    }
}

/// A critical pair: one word (`peak`) with two one-step reducts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPair {
    /// The overlapped word.
    pub peak: Word,
    /// Reduct via the first rule.
    pub left: Word,
    /// Reduct via the second rule.
    pub right: Word,
    /// Indices (into the presentation's equations) of the two rules.
    pub rules: (usize, usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::equation::Equation;
    use crate::presentation::example_derivable;

    #[test]
    fn compiles_only_two_one_rules() {
        let alphabet = Alphabet::standard(1);
        let long = Equation::parse("A0 A0 A0 = A0", &alphabet).unwrap();
        let ok = Equation::parse("A0 A0 = 0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![long, ok]).unwrap();
        let rs = RewriteSystem::from_presentation(&p);
        assert_eq!(rs.len(), 1);
        assert!(!rs.is_empty());
    }

    #[test]
    fn normal_forms_and_certificates() {
        let p = example_derivable(); // A1 A1 = A0, A1 A1 = 0, zero eqs
        let rs = RewriteSystem::from_presentation(&p);
        let w = Word::parse("A1 A1", p.alphabet()).unwrap();
        // Leftmost-first picks the first rule in equation order: A1 A1 = A0.
        let (nf, d) = rs.normal_form(&w);
        assert_eq!(nf.render(p.alphabet()), "A0");
        assert_eq!(d.len(), 1);
        // Replay certifies the reduction as a derivation.
        let words = d.replay(&p).unwrap();
        assert_eq!(words.last().unwrap(), &nf);
    }

    #[test]
    fn zero_collapse() {
        let p = example_derivable();
        let rs = RewriteSystem::from_presentation(&p);
        for text in ["A0 0", "0 A0", "A1 0 A1", "0 0 0"] {
            let w = Word::parse(text, p.alphabet()).unwrap();
            assert!(rs.zero_collapses(&p, &w).unwrap(), "{text} must collapse");
        }
        let no_zero = Word::parse("A0 A0", p.alphabet()).unwrap();
        assert!(rs.zero_collapses(&p, &no_zero).is_err());
    }

    #[test]
    fn reduces_to_zero_certificate() {
        let p = example_derivable();
        let rs = RewriteSystem::from_presentation(&p);
        // A1 A1 A1 A1 -> A0 A1 A1 -> … depends on strategy; whatever the
        // route, a claimed reduction must replay.
        let w = Word::parse("A1 A1 0", p.alphabet()).unwrap();
        let d = rs.reduces_to(&w, p.alphabet().zero()).expect("collapses");
        d.verify(&p, &w, &Word::single(p.alphabet().zero()))
            .unwrap();
        // A single A0 does not rewrite at all (rules need length 2).
        let a0 = Word::single(p.alphabet().a0());
        assert!(rs.reduces_to(&a0, p.alphabet().zero()).is_none());
    }

    #[test]
    fn critical_pairs_of_running_example() {
        let p = example_derivable(); // A1 A1 = A0, A1 A1 = 0, zero eqs
        let rs = RewriteSystem::from_presentation(&p);
        let pairs = rs.critical_pairs();
        // The same-redex pair (A1 A1 -> A0 vs -> 0) must be found.
        assert!(pairs
            .iter()
            .any(|cp| { cp.peak.len() == 2 && cp.left.len() == 1 && cp.right.len() == 1 }));
        // A0 vs 0 do not rewrite further and differ: NOT locally confluent —
        // correct, since the relation here is derivability (symmetric), not
        // a canonical rewriting system.
        assert!(!rs.is_locally_confluent());
    }

    #[test]
    fn zero_rules_alone_are_confluent() {
        // Zero-absorption only: everything with a zero collapses to 0; all
        // overlaps join.
        let alphabet = Alphabet::standard(2);
        let mut p = Presentation::new(alphabet, vec![]).unwrap();
        p.saturate_with_zero_equations();
        let rs = RewriteSystem::from_presentation(&p);
        assert!(!rs.critical_pairs().is_empty(), "0·0 overlaps exist");
        assert!(rs.is_locally_confluent());
    }

    #[test]
    fn offset_overlaps_detected() {
        // a b -> c and b b -> c: peak a b b reduces to (c b) and (a c).
        let alphabet = Alphabet::new(["A0", "a", "b", "c", "0"], "A0", "0").unwrap();
        let e1 = Equation::parse("a b = c", &alphabet).unwrap();
        let e2 = Equation::parse("b b = c", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![e1, e2]).unwrap();
        let rs = RewriteSystem::from_presentation(&p);
        let pairs = rs.critical_pairs();
        assert!(pairs.iter().any(|cp| cp.peak.len() == 3));
    }

    #[test]
    fn termination_bound() {
        let p = example_derivable();
        let rs = RewriteSystem::from_presentation(&p);
        // Long words reduce in at most len-1 steps.
        let w = Word::parse("A1 A1 A1 A1 A1 A1", p.alphabet()).unwrap();
        let (nf, d) = rs.normal_form(&w);
        assert!(d.len() <= 5);
        assert!(!nf.is_empty());
    }
}
