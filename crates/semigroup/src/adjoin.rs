//! Adjoining an identity element: `G → G′`.
//!
//! Part (B) of the Reduction Theorem begins: "Adjoin to G an identity
//! element I and call the resulting semigroup G′. We claim that G′ also has
//! the cancellation property." The claim's proof is the case analysis on
//! `xy = xy′ ≠ 0`; condition (ii) on `G` is exactly what rules out the
//! remaining case (`xy = x ≠ 0` in `G` would make `y` behave as an
//! identity).

use crate::cayley::{Elem, FiniteSemigroup};
use crate::error::Result;

/// Adjoins a fresh identity element to `g`. The new element has the largest
/// index; the embedding of `g` is the identity on indices. Returns the
/// extended semigroup and the identity element.
///
/// # Errors
///
/// Cannot fail for a valid input semigroup: the extended table is square,
/// in range, and associative by construction; the impossible construction
/// errors are propagated rather than unwrapped.
pub fn adjoin_identity(g: &FiniteSemigroup) -> Result<(FiniteSemigroup, Elem)> {
    let n = g.len();
    let mut table = vec![vec![0usize; n + 1]; n + 1];
    for (a, row) in table.iter_mut().enumerate().take(n) {
        for (b, cell) in row.iter_mut().enumerate().take(n) {
            *cell = g.mul(Elem::from(a), Elem::from(b)).index();
        }
    }
    for (x, row) in table.iter_mut().enumerate() {
        row[n] = x; // x·I = x
    }
    for (x, cell) in table[n].iter_mut().enumerate() {
        *cell = x; // I·x = x
    }
    let g2 = FiniteSemigroup::new(table)?;
    Ok((g2, Elem::from(n)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{cyclic_nilpotent, null_semigroup};
    use crate::properties::has_cancellation_property;

    #[test]
    fn identity_works() {
        let g = null_semigroup(2);
        let (g2, i) = adjoin_identity(&g).unwrap();
        assert_eq!(g2.len(), 3);
        assert_eq!(g2.identity(), Some(i));
        // The old zero is still the zero.
        assert_eq!(g2.zero(), g.zero().map(|z| Elem::from(z.index())));
        // Old products are preserved.
        for a in g.elements() {
            for b in g.elements() {
                assert_eq!(
                    g2.mul(Elem::from(a.index()), Elem::from(b.index())).index(),
                    g.mul(a, b).index()
                );
            }
        }
    }

    #[test]
    fn adjoining_preserves_associativity() {
        for g in [null_semigroup(3), cyclic_nilpotent(4)] {
            let (g2, _) = adjoin_identity(&g).unwrap();
            assert!(g2.check_associative().is_ok());
        }
    }

    /// The paper's claim in part (B): if `G` has the cancellation property
    /// (including condition (ii)) and no identity, then `G′` has it too.
    #[test]
    fn cancellation_preserved_exactly_as_claimed() {
        for g in [
            null_semigroup(2),
            null_semigroup(4),
            cyclic_nilpotent(3),
            cyclic_nilpotent(5),
        ] {
            assert!(g.identity().is_none(), "families have no identity");
            assert!(has_cancellation_property(&g));
            let (g2, _) = adjoin_identity(&g).unwrap();
            assert!(
                has_cancellation_property(&g2),
                "G' must keep the cancellation property"
            );
        }
    }

    /// Without condition (ii) the claim genuinely fails — the reason the
    /// paper includes (ii) in the definition. Witness: a semigroup where
    /// some `x·y = x ≠ 0`; in `G′`, `x·y = x·I ≠ 0` with `y ≠ I` breaks (i).
    #[test]
    fn condition_ii_is_necessary() {
        // {0, a, e}: a·e = a, e·e = e, rest 0 (associative; see
        // properties.rs tests). Has zero, no identity, violates (ii).
        let g = FiniteSemigroup::new(vec![vec![0, 0, 0], vec![0, 0, 1], vec![0, 0, 2]]).unwrap();
        assert!(!has_cancellation_property(&g), "violates (ii)");
        let (g2, _) = adjoin_identity(&g).unwrap();
        assert!(
            !has_cancellation_property(&g2),
            "a·e = a = a·I ≠ 0 violates (i) in G'"
        );
    }
}
