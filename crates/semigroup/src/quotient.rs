//! Bounded congruence closure over the word universe.
//!
//! Part (A) of the Reduction Theorem argues by contradiction through the
//! quotient semigroup `S*/≈`, where `≈` is "the equivalence relation on
//! strings induced by such replacements". The full quotient is infinite;
//! [`BoundedQuotient`] materializes its restriction to words of length
//! `≤ max_len`: enumerate that universe, union words related by a single
//! replacement **whose result stays inside the universe**, and read off
//! equivalences.
//!
//! Two words in the same class are certainly `≈`-equivalent; distinct
//! classes are inconclusive (a longer detour might merge them), which the
//! API surfaces as `Some(true)` / `Some(false) = not merged within bound` /
//! `None = out of universe`.

use std::collections::HashMap;

use crate::presentation::Presentation;
use crate::symbol::Sym;
use crate::union_find::UnionFind;
use crate::word::Word;

/// The congruence closure restricted to words of bounded length.
#[derive(Debug, Clone)]
pub struct BoundedQuotient {
    max_len: usize,
    words: Vec<Word>,
    index: HashMap<Word, usize>,
    uf: UnionFind,
}

impl BoundedQuotient {
    /// Enumerates all words of length `1..=max_len` over the alphabet of
    /// `p` and merges single-replacement neighbours. The universe has
    /// `|S| + |S|² + … + |S|^max_len` words — keep `max_len` small.
    pub fn build(p: &Presentation, max_len: usize) -> Self {
        let n_syms = p.alphabet().len();
        let mut words: Vec<Word> = Vec::new();
        let mut index: HashMap<Word, usize> = HashMap::new();
        // Enumerate by length, lexicographically.
        let mut current: Vec<Word> = p.alphabet().syms().map(Word::single).collect();
        for len in 1..=max_len {
            for w in &current {
                index.insert(w.clone(), words.len());
                words.push(w.clone());
            }
            if len < max_len {
                let mut next = Vec::with_capacity(current.len() * n_syms);
                for w in &current {
                    for s in p.alphabet().syms() {
                        next.push(w.concat(&Word::single(s)));
                    }
                }
                current = next;
            }
        }
        let mut uf = UnionFind::new(words.len());
        for (i, w) in words.iter().enumerate() {
            let w = w.clone();
            for eq in p.equations() {
                for (from, to) in [(&eq.lhs, &eq.rhs), (&eq.rhs, &eq.lhs)] {
                    for pos in w.occurrences(from) {
                        let next = w
                            .replace_range(pos, from.len(), to)
                            .expect("occurrence in range");
                        if let Some(&j) = index.get(&next) {
                            uf.union(i, j);
                        }
                    }
                }
            }
        }
        Self {
            max_len,
            words,
            index,
            uf,
        }
    }

    /// The length bound.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Size of the word universe.
    pub fn universe_size(&self) -> usize {
        self.words.len()
    }

    /// Number of equivalence classes within the bound.
    pub fn class_count(&mut self) -> usize {
        self.uf.class_count()
    }

    /// `Some(true)` if `a` and `b` were merged, `Some(false)` if both are in
    /// the universe but not merged (inconclusive for the full quotient),
    /// `None` if either is outside the universe.
    pub fn equal(&mut self, a: &Word, b: &Word) -> Option<bool> {
        let &i = self.index.get(a)?;
        let &j = self.index.get(b)?;
        Some(self.uf.same(i, j))
    }

    /// `Some(true)` if the goal `A₀ = 0` is identified within the bound.
    pub fn goal_identified(&mut self, p: &Presentation) -> Option<bool> {
        let g = p.goal();
        self.equal(&g.lhs, &g.rhs)
    }

    /// All words merged with `w` inside the universe.
    pub fn class_of(&mut self, w: &Word) -> Option<Vec<Word>> {
        let &i = self.index.get(w)?;
        let root = self.uf.find(i);
        let mut out = Vec::new();
        for j in 0..self.words.len() {
            if self.uf.find(j) == root {
                out.push(self.words[j].clone());
            }
        }
        Some(out)
    }

    /// `true` if the class containing the zero symbol absorbs `sym` on both
    /// sides within the bound — a sanity check of zero saturation.
    pub fn zero_absorbs(&mut self, p: &Presentation, sym: Sym) -> bool {
        let zero = Word::single(p.alphabet().zero());
        let s = Word::single(sym);
        let left = s.concat(&zero);
        let right = zero.concat(&s);
        matches!(self.equal(&left, &zero), Some(true))
            && matches!(self.equal(&right, &zero), Some(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presentation::{example_derivable, example_refutable};

    #[test]
    fn universe_size_is_geometric() {
        let p = example_refutable(); // |S| = 2
        let q = BoundedQuotient::build(&p, 3);
        assert_eq!(q.universe_size(), 2 + 4 + 8);
        assert_eq!(q.max_len(), 3);
    }

    #[test]
    fn derivable_goal_identified() {
        let p = example_derivable();
        let mut q = BoundedQuotient::build(&p, 3);
        assert_eq!(q.goal_identified(&p), Some(true));
        // The class of A0 contains A1 A1 and 0.
        let goal = p.goal();
        let class = q.class_of(&goal.lhs).unwrap();
        assert!(class.contains(&Word::parse("A1 A1", p.alphabet()).unwrap()));
        assert!(class.contains(&goal.rhs));
    }

    #[test]
    fn refutable_goal_not_identified() {
        let p = example_refutable();
        let mut q = BoundedQuotient::build(&p, 4);
        assert_eq!(q.goal_identified(&p), Some(false));
    }

    #[test]
    fn agreement_with_bfs_search() {
        // The bounded quotient and the BFS must agree on the goal for both
        // running examples (with compatible bounds).
        use crate::derivation::{search_goal_derivation, SearchBudget, SearchResult};
        for (p, expected) in [(example_derivable(), true), (example_refutable(), false)] {
            let mut q = BoundedQuotient::build(&p, 4);
            let bfs = search_goal_derivation(
                &p,
                &SearchBudget {
                    max_word_len: 4,
                    max_states: 1_000_000,
                },
            );
            let bfs_found = matches!(bfs, SearchResult::Found(_));
            assert_eq!(q.goal_identified(&p), Some(expected));
            assert_eq!(bfs_found, expected);
        }
    }

    #[test]
    fn zero_absorption_within_bound() {
        let p = example_derivable();
        let mut q = BoundedQuotient::build(&p, 3);
        for s in p.alphabet().syms() {
            assert!(q.zero_absorbs(&p, s), "zero must absorb {s}");
        }
    }

    #[test]
    fn out_of_universe_is_none() {
        let p = example_refutable();
        let mut q = BoundedQuotient::build(&p, 2);
        let long = Word::parse("A0 A0 A0", p.alphabet()).unwrap();
        assert_eq!(q.equal(&long, &long), None);
        assert!(q.class_of(&long).is_none());
    }

    #[test]
    fn class_count_shrinks_with_equations() {
        let refutable = example_refutable(); // zero eqs only
        let mut q1 = BoundedQuotient::build(&refutable, 3);
        // More equations (derivable example has 2 extra) merge more classes
        // over a *larger* alphabet, so compare within one presentation:
        // classes < universe because zero equations merge a lot.
        assert!(q1.class_count() < q1.universe_size());
    }
}
