//! Alphabet symbols.

use std::fmt;

/// A symbol of the generating alphabet `S`, as a dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Sym(u16);

impl Sym {
    /// Wraps a dense index.
    #[inline]
    pub const fn new(ix: u16) -> Self {
        Self(ix)
    }

    /// The dense index as `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u16` index.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl From<u16> for Sym {
    fn from(ix: u16) -> Self {
        Self(ix)
    }
}

impl From<usize> for Sym {
    fn from(ix: usize) -> Self {
        Self(u16::try_from(ix).expect("symbol index exceeds u16::MAX"))
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let s = Sym::new(7);
        assert_eq!(s.index(), 7);
        assert_eq!(Sym::from(7usize), s);
        assert_eq!(s.to_string(), "s7");
        assert!(Sym::new(2) < Sym::new(3));
    }
}
