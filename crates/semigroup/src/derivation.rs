//! Replacement derivations and their search.
//!
//! The proof of part (A) rests on: "there is a sequence of m+1 ≥ 1 strings
//! u₀, u₁, …, u_m, where u₀ is A₀, u_m is 0, and for i = 0, …, m−1, u_{i+1}
//! results from u_i by replacement of a single occurrence of some xᵢ by yᵢ
//! or vice versa." A [`Derivation`] is exactly such a sequence, stored as
//! replayable steps; [`search_derivation`] finds one by breadth-first search
//! over the word graph (bounded by word length and state count, since the
//! problem is undecidable).

use std::collections::{HashMap, VecDeque};

use td_core::budget::{Cancellation, Ticker};

use crate::error::{Result, SgError};
use crate::presentation::Presentation;
use crate::word::Word;

/// One replacement step: at `pos`, replace an occurrence of one side of
/// equation `eq_index` by the other side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DerivStep {
    /// Index into the presentation's equation list.
    pub eq_index: usize,
    /// Position of the replaced occurrence.
    pub pos: usize,
    /// `true`: replace `lhs` by `rhs`; `false`: replace `rhs` by `lhs`.
    pub forward: bool,
}

/// A replayable derivation `start ⇒ … ⇒ end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Derivation {
    /// The initial word `u₀`.
    pub start: Word,
    /// The replacement steps.
    pub steps: Vec<DerivStep>,
}

impl Derivation {
    /// The trivial derivation (zero steps).
    pub fn trivial(start: Word) -> Self {
        Self {
            start,
            steps: Vec::new(),
        }
    }

    /// Number of steps (`m`).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if the derivation has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Replays the derivation against `p`, returning the full word sequence
    /// `u₀, …, u_m`. Fails if any step does not apply.
    pub fn replay(&self, p: &Presentation) -> Result<Vec<Word>> {
        let mut words = Vec::with_capacity(self.steps.len() + 1);
        words.push(self.start.clone());
        for (i, step) in self.steps.iter().enumerate() {
            let eq = p.equations().get(step.eq_index).ok_or_else(|| {
                SgError::DerivationReplay(format!(
                    "step {i}: equation index {} out of range",
                    step.eq_index
                ))
            })?;
            let (from, to) = if step.forward {
                (&eq.lhs, &eq.rhs)
            } else {
                (&eq.rhs, &eq.lhs)
            };
            let cur = words.last().expect("nonempty");
            if !cur.occurs_at(from, step.pos) {
                return Err(SgError::DerivationReplay(format!(
                    "step {i}: `{from}` does not occur at position {} of `{cur}`",
                    step.pos
                )));
            }
            words.push(cur.replace_range(step.pos, from.len(), to)?);
        }
        Ok(words)
    }

    /// The final word `u_m`.
    ///
    /// # Errors
    ///
    /// Fails when replaying the derivation fails (an out-of-range rule
    /// index, a rule that does not match at its claimed position, …).
    pub fn end(&self, p: &Presentation) -> Result<Word> {
        Ok(self
            .replay(p)?
            .pop()
            .expect("replay returns at least start"))
    }

    /// Checks that the derivation goes from `start` to `target` under `p`.
    ///
    /// # Errors
    ///
    /// Fails with [`SgError::DerivationReplay`] when the derivation does
    /// not start at `start`, does not replay cleanly under `p`, or ends
    /// somewhere other than `target`.
    pub fn verify(&self, p: &Presentation, start: &Word, target: &Word) -> Result<()> {
        if &self.start != start {
            return Err(SgError::DerivationReplay(format!(
                "derivation starts at `{}`, expected `{start}`",
                self.start
            )));
        }
        let end = self.end(p)?;
        if &end != target {
            return Err(SgError::DerivationReplay(format!(
                "derivation ends at `{end}`, expected `{target}`"
            )));
        }
        Ok(())
    }
}

/// Bounds for the breadth-first derivation search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Discard words longer than this (expansions can grow words without
    /// bound; some derivations genuinely need longer intermediate words, so
    /// exhausting this bound does **not** refute derivability).
    pub max_word_len: usize,
    /// Maximum number of distinct words to visit.
    pub max_states: usize,
}

impl Default for SearchBudget {
    fn default() -> Self {
        Self {
            max_word_len: 12,
            max_states: 200_000,
        }
    }
}

/// Outcome of [`search_derivation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchResult {
    /// A derivation was found (shortest in number of steps).
    Found(Derivation),
    /// The reachable set within `max_word_len` was exhausted: `target` is
    /// unreachable *using intermediate words within the length bound*.
    ExhaustedWithinBound {
        /// Number of distinct words visited.
        states: usize,
    },
    /// `max_states` was hit first; nothing can be concluded.
    BudgetExhausted {
        /// Number of distinct words visited.
        states: usize,
    },
}

impl SearchResult {
    /// The derivation, if found.
    pub fn derivation(&self) -> Option<&Derivation> {
        match self {
            SearchResult::Found(d) => Some(d),
            _ => None,
        }
    }
}

/// Breadth-first search for a derivation `start ⇒* target` under the
/// equations of `p` (used in both directions). Deterministic: equations are
/// tried in order, positions left to right.
pub fn search_derivation(
    p: &Presentation,
    start: &Word,
    target: &Word,
    budget: &SearchBudget,
) -> SearchResult {
    let never = Cancellation::new();
    search_derivation_cancellable(p, start, target, budget, &never)
}

/// A search outcome together with exact spend accounting, for the racing
/// pipeline's deterministic budget reports ([`search_derivation_tracked`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackedSearch {
    /// The classical three-valued result.
    pub result: SearchResult,
    /// Distinct words visited — exact even for [`SearchResult::Found`],
    /// which does not carry a count of its own.
    pub states: usize,
    /// `true` when the run stopped because the cancellation token was
    /// observed at a poll point (per dequeued word and per registered
    /// state, via the shared [`td_core::budget::Ticker`]) — as opposed to
    /// finding the target or exhausting its own budget. A cancelled run's
    /// `states` is a lower bound of what the same search would visit
    /// uncancelled.
    pub cancelled: bool,
}

/// [`search_derivation`] with a cooperative [`Cancellation`] token, for
/// racing against the finite-model search: the token is polled once per
/// dequeued word and per registered state, and a cancelled run reports
/// [`SearchResult::BudgetExhausted`] with the states visited so far (the
/// caller that cancelled has its own certificate and discards this side's
/// result). Use [`search_derivation_tracked`] when the caller must
/// distinguish cancellation from genuine budget exhaustion.
pub fn search_derivation_cancellable(
    p: &Presentation,
    start: &Word,
    target: &Word,
    budget: &SearchBudget,
    cancel: &Cancellation,
) -> SearchResult {
    search_derivation_tracked(p, start, target, budget, cancel).result
}

/// [`search_derivation_cancellable`] with exact spend accounting: the
/// returned [`TrackedSearch`] carries the states visited (even on success)
/// and whether the run was cut short by the cancellation flag rather than
/// by its own budget.
pub fn search_derivation_tracked(
    p: &Presentation,
    start: &Word,
    target: &Word,
    budget: &SearchBudget,
    cancel: &Cancellation,
) -> TrackedSearch {
    if start == target {
        return TrackedSearch {
            result: SearchResult::Found(Derivation::trivial(start.clone())),
            states: 1,
            cancelled: false,
        };
    }
    // One ticker unit per *registered* word (the start word included), so
    // `spent` is exactly the distinct-state count the reports need; mask 0
    // additionally observes the cancellation token at every registration.
    let mut ticker = Ticker::new(cancel, budget.max_states as u64, 0);
    // parent[word] = (previous word, step taken).
    let mut parent: HashMap<Word, (Word, DerivStep)> = HashMap::new();
    let mut queue: VecDeque<Word> = VecDeque::new();
    queue.push_back(start.clone());
    parent.insert(
        start.clone(),
        (
            start.clone(),
            DerivStep {
                eq_index: 0,
                pos: 0,
                forward: true,
            },
        ),
    );

    if ticker.tick() {
        'bfs: while let Some(word) = queue.pop_front() {
            if !ticker.poll() {
                break 'bfs;
            }
            for (eq_index, eq) in p.equations().iter().enumerate() {
                for (from, to, forward) in [(&eq.lhs, &eq.rhs, true), (&eq.rhs, &eq.lhs, false)] {
                    if from == to {
                        continue;
                    }
                    for pos in word.occurrences(from) {
                        let next = word
                            .replace_range(pos, from.len(), to)
                            .expect("occurrence positions are in range");
                        if next.len() > budget.max_word_len {
                            continue;
                        }
                        if parent.contains_key(&next) {
                            continue;
                        }
                        if !ticker.tick() {
                            break 'bfs;
                        }
                        let step = DerivStep {
                            eq_index,
                            pos,
                            forward,
                        };
                        parent.insert(next.clone(), (word.clone(), step));
                        if &next == target {
                            break 'bfs;
                        }
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    let visited = ticker.spent() as usize;

    if !parent.contains_key(target) {
        let result = if ticker.stopped() {
            SearchResult::BudgetExhausted { states: visited }
        } else {
            SearchResult::ExhaustedWithinBound { states: visited }
        };
        return TrackedSearch {
            result,
            states: visited,
            cancelled: ticker.cancelled(),
        };
    }

    // Reconstruct the step sequence backwards from target.
    let mut steps_rev = Vec::new();
    let mut cur = target.clone();
    // td-lint: allow(budget-poll) parent-chain walk over the BFS tree already built above:
    // each hop moves to a strictly earlier-discovered word, so it is bounded by `visited`
    // (which the ticker already charged during the search).
    while cur != *start {
        let (prev, step) = parent
            .get(&cur)
            .expect("every reached word has a parent")
            .clone();
        steps_rev.push(step);
        cur = prev;
    }
    steps_rev.reverse();
    TrackedSearch {
        result: SearchResult::Found(Derivation {
            start: start.clone(),
            steps: steps_rev,
        }),
        states: visited,
        cancelled: false,
    }
}

/// Convenience: search for the paper's goal derivation `A₀ ⇒* 0`.
pub fn search_goal_derivation(p: &Presentation, budget: &SearchBudget) -> SearchResult {
    let goal = p.goal();
    search_derivation(p, &goal.lhs, &goal.rhs, budget)
}

/// [`search_goal_derivation`] with a cooperative cancellation flag (see
/// [`search_derivation_cancellable`]).
pub fn search_goal_derivation_cancellable(
    p: &Presentation,
    budget: &SearchBudget,
    cancel: &Cancellation,
) -> SearchResult {
    let goal = p.goal();
    search_derivation_cancellable(p, &goal.lhs, &goal.rhs, budget, cancel)
}

/// [`search_goal_derivation_cancellable`] with exact spend accounting (see
/// [`search_derivation_tracked`]).
pub fn search_goal_derivation_tracked(
    p: &Presentation,
    budget: &SearchBudget,
    cancel: &Cancellation,
) -> TrackedSearch {
    let goal = p.goal();
    search_derivation_tracked(p, &goal.lhs, &goal.rhs, budget, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presentation::{example_derivable, example_refutable};

    #[test]
    fn derivable_goal_found_and_verified() {
        let p = example_derivable();
        let result = search_goal_derivation(&p, &SearchBudget::default());
        let d = result.derivation().expect("A0 => A1 A1 => 0");
        assert_eq!(d.len(), 2);
        let goal = p.goal();
        d.verify(&p, &goal.lhs, &goal.rhs).unwrap();
        let words = d.replay(&p).unwrap();
        assert_eq!(words.len(), 3);
        assert_eq!(words[0].render(p.alphabet()), "A0");
        assert_eq!(words[1].render(p.alphabet()), "A1 A1");
        assert_eq!(words[2].render(p.alphabet()), "0");
    }

    #[test]
    fn refutable_goal_not_reachable() {
        let p = example_refutable();
        let result = search_goal_derivation(
            &p,
            &SearchBudget {
                max_word_len: 8,
                max_states: 100_000,
            },
        );
        // Only zero equations: from the single word "A0" the only moves
        // produce words containing 0, which collapse back to 0-words; "A0"
        // alone can never reach "0".
        assert!(
            matches!(result, SearchResult::ExhaustedWithinBound { .. }),
            "{result:?}"
        );
    }

    #[test]
    fn trivial_derivation() {
        let p = example_refutable();
        let w = Word::single(p.alphabet().a0());
        let r = search_derivation(&p, &w, &w, &SearchBudget::default());
        let d = r.derivation().unwrap();
        assert!(d.is_empty());
        d.verify(&p, &w, &w).unwrap();
    }

    #[test]
    fn bfs_finds_shortest() {
        // Two routes to 0: direct (1 step) and via A1 A1 (2+ steps).
        let alphabet = crate::alphabet::Alphabet::standard(2);
        let direct = crate::equation::Equation::parse("A0 A0 = 0", &alphabet).unwrap();
        let via = crate::equation::Equation::parse("A0 A0 = A1", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![direct, via]).unwrap();
        let start = Word::parse("A0 A0", p.alphabet()).unwrap();
        let target = Word::single(p.alphabet().zero());
        let r = search_derivation(&p, &start, &target, &SearchBudget::default());
        assert_eq!(r.derivation().unwrap().len(), 1);
    }

    #[test]
    fn replay_rejects_corrupt_steps() {
        let p = example_derivable();
        let goal = p.goal();
        let mut d = search_goal_derivation(&p, &SearchBudget::default())
            .derivation()
            .unwrap()
            .clone();
        // Corrupt the position of the second step.
        d.steps[1].pos = 7;
        assert!(matches!(d.replay(&p), Err(SgError::DerivationReplay(_))));
        // Corrupt the equation index.
        let mut d2 = search_goal_derivation(&p, &SearchBudget::default())
            .derivation()
            .unwrap()
            .clone();
        d2.steps[0].eq_index = 99;
        assert!(d2.replay(&p).is_err());
        // Wrong endpoints.
        let d3 = Derivation::trivial(goal.lhs.clone());
        assert!(d3.verify(&p, &goal.lhs, &goal.rhs).is_err());
        assert!(d3.verify(&p, &goal.rhs, &goal.rhs).is_err());
    }

    #[test]
    fn budget_exhaustion_reported() {
        // A presentation with growth: A0 = A0 A0 lets words blow up; a tiny
        // state budget must be reported as exhausted.
        let alphabet = crate::alphabet::Alphabet::standard(1);
        let grow = crate::equation::Equation::parse("A0 A0 = A0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![grow]).unwrap();
        let start = Word::single(p.alphabet().a0());
        let target = Word::single(p.alphabet().zero());
        let r = search_derivation(
            &p,
            &start,
            &target,
            &SearchBudget {
                max_word_len: 30,
                max_states: 5,
            },
        );
        assert!(matches!(r, SearchResult::BudgetExhausted { .. }), "{r:?}");
    }

    #[test]
    fn tracked_search_reports_exact_states_and_cancellation() {
        let p = example_derivable();
        let never = Cancellation::new();
        let t = search_goal_derivation_tracked(&p, &SearchBudget::default(), &never);
        assert!(matches!(t.result, SearchResult::Found(_)));
        assert!(t.states >= 3, "start, A1 A1, 0 all visited: {}", t.states);
        assert!(!t.cancelled);

        // A pre-cancelled token stops at the first poll and is reported as
        // cancelled — distinct from genuine budget exhaustion.
        let always = Cancellation::new();
        always.cancel();
        let t = search_goal_derivation_tracked(&p, &SearchBudget::default(), &always);
        assert!(matches!(t.result, SearchResult::BudgetExhausted { .. }));
        assert!(t.cancelled);
        assert_eq!(t.states, 1, "only the start word was registered");

        // Genuine exhaustion is not cancellation.
        let p = example_refutable();
        let t = search_goal_derivation_tracked(&p, &SearchBudget::default(), &never);
        assert!(matches!(
            t.result,
            SearchResult::ExhaustedWithinBound { states } if states == t.states
        ));
        assert!(!t.cancelled);
    }

    #[test]
    fn word_length_bound_respected() {
        // Derivation requires passing through length 2, but bound is 1.
        let p = example_derivable();
        let r = search_goal_derivation(
            &p,
            &SearchBudget {
                max_word_len: 1,
                max_states: 1000,
            },
        );
        assert!(matches!(r, SearchResult::ExhaustedWithinBound { .. }));
    }
}
