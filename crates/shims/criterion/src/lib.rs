//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no registry access, so this
//! crate implements the subset of the criterion 0.5 API used by the benches
//! under `crates/bench/benches/`: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`]
//! / [`BenchmarkGroup::sample_size`], [`Bencher::iter`],
//! [`BenchmarkId::from_parameter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis it runs a short warm-up plus
//! a fixed number of timed samples and prints the median per-iteration time.
//! The sample count can be tuned with the `TD_BENCH_SAMPLES` environment
//! variable (default 10); `cargo bench -- FILTER` substring-filters
//! benchmark ids like the real harness does.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter, `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter value (the common case in a group,
    /// where the group name already identifies the function).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, first warming up, then taking `samples` timed runs.
    /// The routine's return value is passed through [`black_box`] so the
    /// optimizer cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed run (also faults in lazy state).
        black_box(routine());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed());
        }
        times.sort();
        self.last = Some(times[times.len() / 2]);
    }
}

/// A named collection of related benchmarks, printed under a common prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark (criterion's
    /// `sample_size`). Values below 2 are clamped to 2.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.criterion.test_mode {
            self.samples = n.max(2);
        }
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{id}", self.name);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut b = Bencher {
            samples: self.samples,
            last: None,
        };
        f(&mut b);
        match b.last {
            Some(t) => println!("{full:<48} {t:>12.2?}/iter ({} samples)", b.samples),
            None => println!("{full:<48} (no measurement)"),
        }
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        self.run_one(&id.text, f);
    }

    /// Benchmark `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run_one(&id.text, |b| f(b, input));
    }

    /// End the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// The benchmark manager: filter handling plus group construction.
#[derive(Debug)]
pub struct Criterion {
    filters: Vec<String>,
    /// Smoke mode (`cargo bench -- --test-mode`): run every benchmark a
    /// minimal number of times so CI can exercise the bench targets
    /// without paying for real measurements (the shim's analogue of
    /// criterion's `--test`).
    test_mode: bool,
}

impl Default for Criterion {
    /// Build a manager from the command line, skipping the flags cargo's
    /// bench runner passes (`--bench`, `--profile-time <n>`, …) and keeping
    /// positional arguments as substring filters.
    fn default() -> Self {
        let mut filters = Vec::new();
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test-mode" => test_mode = true,
                "--bench" | "--test" | "--nocapture" | "--quiet" | "-q" => {}
                "--profile-time" | "--sample-size" | "--warm-up-time" | "--measurement-time"
                | "--save-baseline" | "--baseline" | "--load-baseline" | "--output-format"
                | "--color" => {
                    // Value-taking flags: consume the value so it is not
                    // mistaken for a positional filter.
                    let _ = args.next();
                }
                s if s.starts_with('-') => {
                    eprintln!(
                        "warning: ignoring unsupported flag `{s}` (offline criterion stand-in); \
                         if it takes a value, that value becomes a benchmark filter"
                    );
                }
                s => filters.push(s.to_owned()),
            }
        }
        Criterion { filters, test_mode }
    }
}

impl Criterion {
    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    fn samples() -> usize {
        std::env::var("TD_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10)
            .max(2)
    }

    /// Open a named [`BenchmarkGroup`]. In `--test-mode` the sample count
    /// is pinned to the minimum regardless of `TD_BENCH_SAMPLES` or
    /// [`BenchmarkGroup::sample_size`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.test_mode { 2 } else { Self::samples() };
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Bundle benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running each [`criterion_group!`], mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
