//! The [`Strategy`] trait and the combinators the workspace's tests use.

use crate::test_runner::TestRng;

/// A recipe for generating values of a type (`proptest::strategy::Strategy`).
///
/// Unlike the real proptest there are no value trees and no shrinking: a
/// strategy simply produces one value per call from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`
    /// (`proptest::strategy::Strategy::prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from every generated value
    /// (`proptest::strategy::Strategy::prop_flat_map`).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value
/// (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start
                    + rng.usize_in(0, (self.end - self.start) as usize - 1) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                self.start()
                    + rng.usize_in(0, (self.end() - self.start()) as usize) as $t
            }
        }
    )*};
}

impl_range_strategy!(u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
