//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment for this workspace has no registry access, so this
//! crate implements the subset of the proptest 1.x API the workspace's
//! property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with
//!   [`prop_map`](strategy::Strategy::prop_map) and
//!   [`prop_flat_map`](strategy::Strategy::prop_flat_map);
//! * strategies for half-open and inclusive integer ranges, tuples of
//!   strategies (arity 2–6), [`Just`](strategy::Just), and
//!   [`collection::vec`];
//! * [`ProptestConfig`](test_runner::Config) (`with_cases` only),
//!   [`TestCaseError`](test_runner::TestCaseError);
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate, by design:
//!
//! * values are generated from a deterministic RNG seeded per test name, so
//!   runs are reproducible without a persistence file;
//! * there is **no shrinking** — a failing case reports its case number and
//!   message only;
//! * strategies are sampled by direct recursive generation (no value trees).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The permitted sizes of a generated collection
    /// (`proptest::collection::SizeRange`).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        /// Minimum length, inclusive.
        pub min: usize,
        /// Maximum length, inclusive.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose lengths lie in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Create a strategy generating vectors of values of `element`, with
    /// lengths drawn from `size` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-importable API surface (`proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert a condition inside a [`proptest!`] body, failing the current case
/// (rather than panicking directly) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // The stringified condition is a format *argument*, never the format
        // string itself: source text may contain literal braces.
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body, failing the current case
/// with a rendering of both sides when they differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    l,
                    r,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Define property tests: each function runs its body against `cases`
/// freshly generated inputs (mirrors proptest's macro of the same name).
///
/// In real code each function carries `#[test]` (forwarded to the generated
/// item, as in the real proptest); this example omits it so the doctest can
/// invoke the function directly.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     fn addition_commutes(a in 0..1000u32, b in 0..1000u32) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}
