//! Test configuration, case errors, and the deterministic test RNG.

use std::fmt;

/// Per-test configuration (`proptest::test_runner::Config`, re-exported from
/// the prelude as `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases each property runs against.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// Why a single generated case failed
/// (`proptest::test_runner::TestCaseError`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold; the payload is the assertion message.
    Fail(String),
    /// The inputs were rejected as invalid rather than wrong (unused by this
    /// workspace, kept for API fidelity).
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (filtered-out) case with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic RNG driving value generation, backed by the in-tree
/// `rand` shim's generator (one PRNG implementation for both shims, as the
/// real proptest defers to the real rand).
///
/// Each test case gets a seed derived from the test's module path, its name,
/// and the case index, so failures reproduce across runs without proptest's
/// failure-persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// The RNG for case number `case` of the test identified by `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        use rand::SeedableRng;
        // FNV-1a over the identifying string, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5DEE_CE66)),
        }
    }

    /// A uniform draw from the inclusive range `[min, max]`.
    pub fn usize_in(&mut self, min: usize, max: usize) -> usize {
        debug_assert!(min <= max);
        let Some(width) = (max - min).checked_add(1) else {
            // Full-width range: every raw output is a valid draw.
            return self.inner.next_u64() as usize;
        };
        let width = width as u64;
        // Rejection sampling from the top keeps the draw unbiased.
        let zone = u64::MAX - (u64::MAX % width);
        loop {
            let v = self.inner.next_u64();
            if v < zone {
                return min + (v % width) as usize;
            }
        }
    }
}
