//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no registry access, so this
//! crate implements exactly the subset of the `rand 0.8` API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open integer ranges.
//!
//! The generator is a SplitMix64 — deterministic in its seed, statistically
//! solid for workload generation, and *not* cryptographically secure (which
//! the real `StdRng` is; none of our call sites care). Range sampling uses
//! rejection from the high bits, so draws are unbiased.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::Range;

/// A seedable random number generator (here: SplitMix64).
///
/// The real `rand` backs `StdRng` with ChaCha12; this stand-in only promises
/// determinism in the seed, which is all the workspace's workload generators
/// rely on.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// The next raw 64-bit output of the generator.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

/// A type from which [`Rng::gen_range`] can sample values of type `T`,
/// mirroring `rand::distributions::uniform::SampleRange<T>`. Keeping the
/// output as a trait *parameter* (not an associated type) lets inference
/// flow backward from the use site, exactly as in the real crate.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut SplitMix64) -> T;
}

/// Draw a `u64` below `bound` without modulo bias (rejection sampling).
fn below(rng: &mut SplitMix64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Zone is the largest multiple of `bound` that fits in u64.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as u64) - (self.start as u64);
                self.start + below(rng, width) as $t
            }
        }
    )*};
}

impl_sample_range!(u16, u32, u64, usize);

/// Sampling methods, mirroring the subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Sample a value uniformly from `range` (half-open integer ranges).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for SplitMix64 {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Concrete generator types, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace-standard RNG (SplitMix64 in this stand-in).
    pub type StdRng = super::SplitMix64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
        }
        // All residues of a small range are hit.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4u16) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
