//! A sound weakening calculus for template dependencies.
//!
//! The paper builds on Sadri & Ullman's axiomatization of TDs ("Template
//! dependencies: A large class of dependencies in relational databases and
//! its complete axiomatization"). This module implements the *syntactic*
//! side of that theory: transformations that produce logically weaker
//! dependencies, plus the subsumption test underlying the axiomatization's
//! soundness arguments.
//!
//! * [`Weakening::AddAntecedent`] — extra antecedent rows only make the
//!   premise harder to match;
//! * [`Weakening::ExistentializeColumn`] — replacing the conclusion's
//!   component in one column with a fresh variable asks for less;
//! * [`Weakening::MergeAntecedentVars`] — identifying two variables in a
//!   column strengthens the premise pattern, hence weakens the dependency;
//! * [`subsumes`] — the homomorphism test: `general` implies `specific` in
//!   "zero or one chase steps". Complete for single-step consequences;
//!   the full implication problem is of course undecidable (the paper), so
//!   [`crate::inference::implies`] remains the general tool.
//!
//! Every rule's soundness is cross-validated against the chase in tests.

use std::collections::HashMap;

use crate::budget::{Cancellation, Ticker};
use crate::error::{CoreError, Result};
use crate::homomorphism::{match_first, Binding};
use crate::ids::{AttrId, Var};
use crate::inference::freeze;
use crate::instance::Instance;
use crate::td::{Td, TdRow};

/// A weakening transformation: applied to `td`, yields a dependency that
/// `td` logically implies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Weakening {
    /// Append an extra antecedent row (given as raw per-column variables;
    /// variables may be shared with existing rows).
    AddAntecedent(TdRow),
    /// Replace the conclusion variable in this column by a fresh one
    /// (making that component existentially quantified).
    ExistentializeColumn(AttrId),
    /// In `column`, replace every occurrence of `from` by `into`
    /// (identifying the two variables throughout the dependency).
    MergeAntecedentVars {
        /// The column whose variables are merged.
        column: AttrId,
        /// The variable being replaced.
        from: Var,
        /// The replacement variable.
        into: Var,
    },
}

/// Applies a weakening. The result carries a derived name.
///
/// # Errors
///
/// Fails on an arity mismatch between the added antecedent row and the
/// dependency, on a column index outside the schema, or when the
/// weakened dependency no longer validates under [`Td::new`].
pub fn apply(td: &Td, w: &Weakening) -> Result<Td> {
    match w {
        Weakening::AddAntecedent(row) => {
            if row.arity() != td.arity() {
                return Err(CoreError::ArityMismatch {
                    expected: td.arity(),
                    got: row.arity(),
                });
            }
            let mut antecedents = td.antecedents().to_vec();
            antecedents.push(row.clone());
            Td::new(
                td.schema().clone(),
                antecedents,
                td.conclusion().clone(),
                format!("{}+ante", td.name()),
            )
        }
        Weakening::ExistentializeColumn(col) => {
            if col.index() >= td.arity() {
                return Err(CoreError::UnknownAttribute(format!("{col}")));
            }
            let maxes = td.max_var_per_column();
            let fresh = Var::new(maxes[col.index()].map(|v| v.raw() + 1).unwrap_or(0));
            let mut conclusion = td.conclusion().clone();
            let cells: Vec<Var> = conclusion
                .components()
                .map(|(c, v)| if c == *col { fresh } else { v })
                .collect();
            conclusion = TdRow::new(cells);
            Td::new(
                td.schema().clone(),
                td.antecedents().to_vec(),
                conclusion,
                format!("{}∃{}", td.name(), td.schema().attr_name(*col)),
            )
        }
        Weakening::MergeAntecedentVars { column, from, into } => {
            if column.index() >= td.arity() {
                return Err(CoreError::UnknownAttribute(format!("{column}")));
            }
            let map_row =
                |row: &TdRow| {
                    TdRow::new(row.components().map(|(c, v)| {
                        if c == *column && v == *from {
                            *into
                        } else {
                            v
                        }
                    }))
                };
            let antecedents = td.antecedents().iter().map(map_row).collect();
            let conclusion = map_row(td.conclusion());
            Td::new(
                td.schema().clone(),
                antecedents,
                conclusion,
                format!("{}·merge", td.name()),
            )
        }
    }
}

/// Applies a sequence of weakenings.
///
/// # Errors
///
/// Fails on the first weakening [`apply`] rejects.
pub fn apply_all(td: &Td, ws: &[Weakening]) -> Result<Td> {
    let mut cur = td.clone();
    for w in ws {
        cur = apply(&cur, w)?;
    }
    Ok(cur)
}

/// The subsumption (one-step implication) test: `true` iff `specific`'s
/// frozen antecedent tableau, chased with `general` for **at most one
/// step**, witnesses `specific`'s conclusion. Sound for implication;
/// complete only for single-step consequences.
///
/// # Errors
///
/// Fails when the two dependencies disagree on schema, or when freezing
/// `specific`'s antecedent tableau fails.
pub fn subsumes(general: &Td, specific: &Td) -> Result<bool> {
    general.schema().expect_same(specific.schema())?;
    let (frozen, _, goal) = freeze(specific)?;
    Ok(subsumes_frozen(general, &frozen, &goal))
}

/// The matching half of [`subsumes`], against an already-frozen target
/// tableau and goal pattern. Hot-path callers — the fast-path prescreen —
/// freeze the target once and scan many candidate premises against it,
/// instead of paying one [`freeze`] allocation per candidate.
pub fn subsumes_frozen(general: &Td, frozen: &Instance, goal: &crate::chase::Goal) -> bool {
    // Zero steps: the goal may already be witnessed.
    if goal.find_in(frozen).is_some() {
        return true;
    }
    // One step: some trigger of `general` lands a goal-matching row.
    let mut found = false;
    crate::homomorphism::for_each_match(
        general.antecedents(),
        frozen,
        &Binding::new(general.arity()),
        |binding| {
            // Build the conclusion under this trigger; unbound (existential)
            // columns match any goal constraint only if the goal is a
            // wildcard there.
            let ok = general
                .conclusion()
                .components()
                .zip(goal.pattern())
                .all(|((c, v), want)| match (binding.get(c, v), want) {
                    (_, None) => true,
                    (Some(val), Some(w)) => val == *w,
                    (None, Some(_)) => false,
                });
            if ok {
                found = true;
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        },
    );
    found
}

/// Enumerates the "obvious" weakenings of `td` (used by tests and by
/// minimization heuristics): one `ExistentializeColumn` per universal
/// conclusion column, one `MergeAntecedentVars` per mergeable variable pair
/// per column, and one duplicated antecedent row.
pub fn canonical_weakenings(td: &Td) -> Vec<Weakening> {
    let mut out = Vec::new();
    for c in td.schema().attr_ids() {
        if td.is_universal_at(c) {
            out.push(Weakening::ExistentializeColumn(c));
        }
    }
    for c in td.schema().attr_ids() {
        let mut seen: Vec<Var> = Vec::new();
        for row in td.antecedents() {
            let v = row.get(c);
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        for i in 0..seen.len() {
            for j in i + 1..seen.len() {
                out.push(Weakening::MergeAntecedentVars {
                    column: c,
                    from: seen[j],
                    into: seen[i],
                });
            }
        }
    }
    if let Some(first) = td.antecedents().first() {
        out.push(Weakening::AddAntecedent(first.clone()));
    }
    out
}

/// Checks `instance ⊨ general ⇒ instance ⊨ specific` *on this instance* —
/// a cheap falsification helper used when hunting for unsound rules.
pub fn implication_holds_on(instance: &Instance, general: &Td, specific: &Td) -> bool {
    !crate::satisfaction::satisfies(instance, general)
        || crate::satisfaction::satisfies(instance, specific)
}

/// Renames all variables per column by an arbitrary injective map — a
/// semantics-preserving transformation (used to test invariance).
pub fn rename_vars(td: &Td, offset: u32) -> Td {
    let arity = td.arity();
    let mut maps: Vec<HashMap<Var, Var>> = vec![HashMap::new(); arity];
    let map_row = |row: &TdRow, maps: &mut Vec<HashMap<Var, Var>>| {
        TdRow::new(row.components().map(|(c, v)| {
            *maps[c.index()]
                .entry(v)
                .or_insert_with(|| Var::new(v.raw() + offset))
        }))
    };
    let antecedents = td
        .antecedents()
        .iter()
        .map(|r| map_row(r, &mut maps))
        .collect();
    let conclusion = map_row(td.conclusion(), &mut maps);
    Td::new(td.schema().clone(), antecedents, conclusion, td.name()).expect("arities unchanged")
}

/// `true` if `specific` is syntactically reachable from `general` by the
/// canonical weakenings within `depth` steps (a tiny proof search; sound by
/// construction, nowhere near complete — see module docs).
pub fn derivable_by_weakening(general: &Td, specific: &Td, depth: usize) -> bool {
    // An effectively unbounded ticker: the historical entry point explores
    // the whole depth-bounded tree, exactly as before the budgeted variant
    // existed.
    let never = Cancellation::new();
    let mut ticker = Ticker::new(&never, u64::MAX, u64::MAX);
    derivable_by_weakening_within(general, specific, depth, &mut ticker)
}

/// [`derivable_by_weakening`] under an explicit spend budget: every node
/// of the proof search (every weakened dependency compared against the
/// target) costs one [`Ticker`] unit, so hot-path callers — the fast-path
/// prescreen — get a hard, deterministic bound on the exponential tree
/// instead of trusting `depth` alone.
///
/// Returns `false` once the ticker stops; that read is *not derivable
/// within budget*, which is sound either way (a `true` is always backed by
/// a real weakening chain). The ticker's spend is shared across calls, so
/// a prescreen can budget one pool over many premises.
pub fn derivable_by_weakening_within(
    general: &Td,
    specific: &Td,
    depth: usize,
    ticker: &mut Ticker<'_>,
) -> bool {
    if !ticker.tick() {
        return false;
    }
    if general.eq_up_to_renaming(specific) {
        return true;
    }
    if depth == 0 {
        return false;
    }
    for w in canonical_weakenings(general) {
        // Once the ticker stops, every descendant's entry tick fails; bail
        // out instead of cloning and applying the remaining weakenings at
        // every level of the tree. Spend is unchanged (those ticks never
        // succeed), so replay determinism is preserved.
        if ticker.stopped() {
            return false;
        }
        if let Ok(next) = apply(general, &w) {
            if derivable_by_weakening_within(&next, specific, depth - 1, ticker) {
                return true;
            }
        }
    }
    false
}

/// One-step conclusion-witness check reused by [`subsumes`] callers that
/// already have a frozen tableau (exposed for the test suite).
pub fn witnessed_in(instance: &Instance, td: &Td, binding: &Binding) -> bool {
    match_first(std::slice::from_ref(td.conclusion()), instance, binding).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::ChaseBudget;
    use crate::inference::{implies, InferenceVerdict};
    use crate::schema::Schema;
    use crate::td::TdBuilder;

    fn schema() -> Schema {
        Schema::new("R", ["A", "B", "C"]).unwrap()
    }

    fn base() -> Td {
        TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["a", "b", "c'"])
            .unwrap()
            .build("join-a")
            .unwrap()
    }

    /// Every canonical weakening is sound: td ⊨ apply(td, w), verified by
    /// the chase.
    #[test]
    fn canonical_weakenings_are_sound() {
        let td = base();
        for w in canonical_weakenings(&td) {
            let weaker = apply(&td, &w).unwrap();
            let verdict =
                implies(std::slice::from_ref(&td), &weaker, ChaseBudget::default()).unwrap();
            assert!(
                verdict.is_implied(),
                "weakening {w:?} produced a non-implied {weaker}"
            );
        }
    }

    /// Existentialization is strictly weakening (not equivalent) when the
    /// column was meaningfully constrained.
    #[test]
    fn existentialization_is_strict() {
        let td = base();
        let weaker = apply(&td, &Weakening::ExistentializeColumn(AttrId::new(0))).unwrap();
        assert!(weaker.is_embedded());
        let verdict = implies(std::slice::from_ref(&weaker), &td, ChaseBudget::default()).unwrap();
        assert!(matches!(verdict, InferenceVerdict::NotImplied(_)));
    }

    #[test]
    fn merge_vars_is_sound_and_changes_pattern() {
        let td = base();
        // Merge b and b' (column B).
        let b = td.antecedents()[0].get(AttrId::new(1));
        let b2 = td.antecedents()[1].get(AttrId::new(1));
        let merged = apply(
            &td,
            &Weakening::MergeAntecedentVars {
                column: AttrId::new(1),
                from: b2,
                into: b,
            },
        )
        .unwrap();
        // Merged: R(a,b,c) & R(a,b,c') => R(a,b,c') — trivial, actually.
        assert!(merged.is_trivial());
        assert!(
            implies(std::slice::from_ref(&td), &merged, ChaseBudget::default())
                .unwrap()
                .is_implied()
        );
    }

    #[test]
    fn add_antecedent_duplicates_are_equivalent() {
        let td = base();
        let dup = apply(&td, &Weakening::AddAntecedent(td.antecedents()[0].clone())).unwrap();
        assert_eq!(dup.antecedent_count(), 3);
        // Both directions hold: duplicating a row changes nothing.
        assert!(
            implies(std::slice::from_ref(&td), &dup, ChaseBudget::default())
                .unwrap()
                .is_implied()
        );
        assert!(
            implies(std::slice::from_ref(&dup), &td, ChaseBudget::default())
                .unwrap()
                .is_implied()
        );
    }

    #[test]
    fn subsumption_matches_single_step_chase() {
        let td = base();
        // fig1-like weakening is subsumed in one step.
        let fig1 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["*", "b", "c'"])
            .unwrap()
            .build("fig1")
            .unwrap();
        assert!(subsumes(&td, &fig1).unwrap());
        // Trivial goals are subsumed in zero steps.
        let trivial = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .conclusion(["a", "b", "*"])
            .unwrap()
            .build("triv")
            .unwrap();
        assert!(subsumes(&td, &trivial).unwrap());
        // The reverse direction fails.
        assert!(!subsumes(&fig1, &td).unwrap());
    }

    #[test]
    fn subsumption_sound_wrt_chase() {
        let td = base();
        for w in canonical_weakenings(&td) {
            let weaker = apply(&td, &w).unwrap();
            if subsumes(&td, &weaker).unwrap() {
                assert!(
                    implies(std::slice::from_ref(&td), &weaker, ChaseBudget::default())
                        .unwrap()
                        .is_implied()
                );
            }
        }
    }

    #[test]
    fn weakening_search_finds_short_derivations() {
        let td = base();
        let fig1 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["*", "b", "c'"])
            .unwrap()
            .build("fig1")
            .unwrap();
        assert!(derivable_by_weakening(&td, &fig1, 1));
        assert!(!derivable_by_weakening(&fig1, &td, 2));
        // Depth 0 only matches syntactic equality (mod renaming).
        assert!(derivable_by_weakening(&td, &rename_vars(&td, 40), 0));
    }

    /// The budgeted variant agrees with the unbudgeted search when the
    /// budget suffices, refuses (soundly) when starved, and reports an
    /// exact, deterministic spend on exhaustion.
    #[test]
    fn budgeted_weakening_search_is_sound_and_deterministic() {
        let td = base();
        let fig1 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["*", "b", "c'"])
            .unwrap()
            .build("fig1")
            .unwrap();
        let never = Cancellation::new();

        // Ample budget: agrees with the unbudgeted search.
        let mut ample = Ticker::new(&never, 10_000, u64::MAX);
        assert!(derivable_by_weakening_within(&td, &fig1, 1, &mut ample));
        let found_at = ample.spent();
        assert!(found_at >= 1);

        // Starved budget: refuses without finding, spend exactly the cap.
        let mut starved = Ticker::new(&never, 1, u64::MAX);
        assert!(!derivable_by_weakening_within(&td, &fig1, 1, &mut starved));
        assert!(starved.exhausted());
        assert_eq!(starved.spent(), 1);

        // Replaying the ample search spends identically: the tree walk is
        // deterministic.
        let mut replay = Ticker::new(&never, 10_000, u64::MAX);
        assert!(derivable_by_weakening_within(&td, &fig1, 1, &mut replay));
        assert_eq!(replay.spent(), found_at);

        // One shared ticker across premises: spend accumulates.
        let mut shared = Ticker::new(&never, 10_000, u64::MAX);
        assert!(derivable_by_weakening_within(&td, &fig1, 1, &mut shared));
        assert!(derivable_by_weakening_within(&td, &fig1, 1, &mut shared));
        assert_eq!(shared.spent(), 2 * found_at);
    }

    #[test]
    fn renaming_preserves_semantics() {
        let td = base();
        let renamed = rename_vars(&td, 10);
        assert!(td.eq_up_to_renaming(&renamed));
        assert!(subsumes(&td, &renamed).unwrap());
        assert!(subsumes(&renamed, &td).unwrap());
    }

    #[test]
    fn implication_spot_check_helper() {
        let td = base();
        let weaker = apply(&td, &Weakening::ExistentializeColumn(AttrId::new(0))).unwrap();
        let mut inst = Instance::new(schema());
        inst.insert_values([0, 0, 0]).unwrap();
        inst.insert_values([0, 1, 1]).unwrap();
        inst.insert_values([0, 0, 1]).unwrap();
        inst.insert_values([0, 1, 0]).unwrap();
        assert!(implication_holds_on(&inst, &td, &weaker));
    }

    #[test]
    fn error_paths() {
        let td = base();
        assert!(apply(&td, &Weakening::AddAntecedent(TdRow::from_raw([0]))).is_err());
        assert!(apply(&td, &Weakening::ExistentializeColumn(AttrId::new(9))).is_err());
        assert!(apply(
            &td,
            &Weakening::MergeAntecedentVars {
                column: AttrId::new(9),
                from: Var::new(0),
                into: Var::new(0)
            }
        )
        .is_err());
    }
}
