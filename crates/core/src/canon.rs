//! Canonical forms and isomorphism-invariant keys for template dependencies.
//!
//! Two TDs ask the *same* implication question when they differ only by a
//! per-column renaming of variables and a permutation of antecedent rows —
//! the paper never distinguishes such copies ("only the pattern of equality
//! among attribute values … \[is\] important"). Batch workloads are full of
//! them: corpora of machine-generated implication instances repeat the same
//! question under fresh variable names and shuffled rows. This module
//! assigns every TD a [`CanonKey`] — a stable 128-bit digest of a canonical
//! labelling — such that **two TDs get the same key iff they are isomorphic**
//! (equal up to variable renaming and row permutation; column order stays
//! significant, because the typing restriction makes columns distinguishable
//! sorts). The batch pipeline dedups and caches decisions by this key.
//!
//! # Algorithm
//!
//! Canonicalization follows standard graph-canonicalization practice
//! (individualization–refinement, as in `nauty`-style tools) on the
//! **row–variable incidence structure**:
//!
//! * nodes are the antecedent rows and the (column-scoped) variables;
//! * *color refinement* iteratively splits color classes — a row's signature
//!   is the column-ordered vector of its variables' colors (columns are
//!   fixed, so the vector is ordered, not a multiset), a variable's
//!   signature is the multiset of colors of the antecedent rows it occurs
//!   in; the conclusion row is a fixed anchor, so variables that appear in
//!   the conclusion start in their own color;
//! * when refinement stalls with a non-discrete row partition, the search
//!   branches on the **smallest** remaining row class (smallest-orbit
//!   branching): each member is individualized in turn, refinement resumes,
//!   and the lexicographically smallest leaf encoding wins;
//! * one cheap **automorphism pruning** rule keeps the ubiquitous
//!   symmetric tableaux linear: class members that agree on every shared
//!   variable and differ only in variables *private* to their row are
//!   interchangeable (the row transposition swapping the private variables
//!   is an automorphism), so only one of them is branched on. A `k`-row
//!   star tableau — rows sharing a hub variable plus fresh privates —
//!   would otherwise branch `k!`-fold.
//!
//! At a discrete leaf the row order is forced; renaming variables per column
//! in first-occurrence order (exactly [`Td::normalized`]) then yields the
//! canonical form, and the key is a 128-bit FNV-1a digest of its encoding.
//! The encoding is a complete invariant — keys can only collide if the
//! digest does, which at 128 bits is negligible for any realistic corpus.
//!
//! The brute-force [`isomorphic`] check (all row permutations) is kept as
//! the property-test oracle; it is factorial and must only be used on small
//! dependencies.

use crate::ids::{AttrId, Var};
use crate::td::{Td, TdRow};

/// Version of the canonicalization scheme: the key-derivation algorithm,
/// its encoding, and the digest. **Bump this constant whenever a change to
/// this module can alter the [`CanonKey`] assigned to any TD** — refinement
/// signatures, branching order, the leaf encoding, the digest function, or
/// the [`system_key`] composition. Persisted artifacts keyed by canonical
/// keys (the decision-cache snapshots in `td-reduction`) embed this version
/// and refuse to marry keys minted under a different scheme: a stale
/// snapshot must be discarded, never silently reinterpreted as if its keys
/// still named the same isomorphism classes.
pub const CANON_SCHEME_VERSION: u32 = 1;

/// An isomorphism-invariant 128-bit key: equal for two TDs exactly when
/// they coincide up to per-column variable renaming and antecedent-row
/// permutation (up to digest collision, which is negligible at 128 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonKey(u128);

impl CanonKey {
    /// The raw 128-bit digest.
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// Rebuilds a key from a digest previously obtained via
    /// [`CanonKey::raw`] — the deserialization half of snapshot formats.
    /// The digest is only meaningful under the [`CANON_SCHEME_VERSION`]
    /// that minted it; callers persisting raw keys must persist (and check)
    /// that version alongside them.
    pub const fn from_raw(raw: u128) -> Self {
        CanonKey(raw)
    }

    /// A well-distributed 64-bit fold of the key, for shard selection.
    pub const fn fold64(self) -> u64 {
        (self.0 as u64) ^ ((self.0 >> 64) as u64)
    }
}

impl std::fmt::Display for CanonKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// 128-bit FNV-1a over a `u32` stream (little-endian bytes). Deterministic
/// and dependency-free; the canonical encoding it digests is itself a
/// complete isomorphism invariant.
#[derive(Debug, Clone, Copy)]
struct Digest(u128);

impl Digest {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;

    fn new() -> Self {
        Digest(Self::OFFSET)
    }

    fn push_u32(&mut self, v: u32) {
        for byte in v.to_le_bytes() {
            self.0 ^= u128::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn push_u128(&mut self, v: u128) {
        self.push_u32(v as u32);
        self.push_u32((v >> 32) as u32);
        self.push_u32((v >> 64) as u32);
        self.push_u32((v >> 96) as u32);
    }

    fn finish(self) -> CanonKey {
        CanonKey(self.0)
    }
}

/// The refinement state: one color per antecedent row and one per distinct
/// (column, variable) node. Colors are dense ranks of invariant signatures,
/// so the whole state is isomorphism-invariant. Everything is interned into
/// dense *flat* vectors up front — the refinement loop does no hashing and
/// no per-node allocation (batch canonicalization keys thousands of small
/// TDs, so per-key constant costs dominate; see [`Scratch`]).
struct Refiner<'a> {
    td: &'a Td,
    arity: usize,
    n_rows: usize,
    /// Per antecedent row, the column-ordered variable node ids (flattened
    /// `n_rows × arity`).
    row_var_ids: Vec<usize>,
    /// CSR adjacency: for variable node `id`, the antecedent rows it occurs
    /// in are `var_row_data[var_row_start[id]..var_row_start[id + 1]]`, in
    /// ascending row order (a variable lives in exactly one column, so each
    /// row appears at most once per node).
    var_row_start: Vec<usize>,
    /// The flattened occurrence rows behind [`Refiner::var_row_start`].
    var_row_data: Vec<usize>,
    /// Initial (invariant) variable colors: column index, split by whether
    /// the variable is the conclusion's variable for that column.
    var_init: Vec<u64>,
    /// Per antecedent row, the column-ordered *public signature*, flattened
    /// `n_rows × arity`: the variable node id if it occurs anywhere else
    /// (another antecedent row or the conclusion), `usize::MAX` for
    /// variables private to this row. Two rows of one color class with
    /// equal public signatures are interchangeable by an automorphism (the
    /// transposition swapping their private variables), so the branching
    /// search explores only one of them.
    row_public: Vec<usize>,
}

/// Reusable buffers for [`Refiner::refine`]: signature arenas, the ranking
/// index, and the double-buffered colorings. One `Scratch` serves every
/// refine call of a canonical search (the buffers hold no state between
/// calls), so a whole [`canon_key`] costs a bounded handful of allocations
/// instead of a fresh signature `Vec` per node per iteration.
#[derive(Default)]
struct Scratch {
    /// Variable colors at the current iteration.
    var_colors: Vec<u64>,
    /// Next variable colors (dense ranks), double-buffered.
    new_var: Vec<u64>,
    /// Next row colors (dense ranks), double-buffered.
    new_row: Vec<u64>,
    /// Variable signature arena, laid out like
    /// [`Refiner::var_row_data`]: per variable, the sorted colors of its
    /// occurrence rows.
    var_sig_data: Vec<u64>,
    /// Row signature arena (`n_rows × arity`): per row, the column-ordered
    /// colors of its variables.
    row_sig_data: Vec<u64>,
    /// Sort index for dense ranking.
    idx: Vec<usize>,
    /// Per-color member counts for the branching search's class grouping.
    counts: Vec<u32>,
}

/// Sorts `idx` as `0..n` under `cmp` and writes dense ranks into `out`:
/// equal keys get equal ranks, ranks follow key order. The comparator is
/// over invariant signatures, hence so are the ranks.
fn dense_ranks_with(
    n: usize,
    idx: &mut Vec<usize>,
    out: &mut Vec<u64>,
    mut cmp: impl FnMut(usize, usize) -> std::cmp::Ordering,
) {
    idx.clear();
    idx.extend(0..n);
    idx.sort_unstable_by(|&a, &b| cmp(a, b));
    out.clear();
    out.resize(n, 0);
    let mut rank = 0u64;
    for w in 0..n {
        if w > 0 && cmp(idx[w], idx[w - 1]) != std::cmp::Ordering::Equal {
            rank += 1;
        }
        out[idx[w]] = rank;
    }
}

impl<'a> Refiner<'a> {
    fn new(td: &'a Td) -> Self {
        let arity = td.arity();
        let n_rows = td.antecedent_count();
        // Per-column interning tables indexed by raw variable id (variable
        // ids are dense per column in practice, so a direct-index table
        // beats hashing on the canonicalization hot path). One flat table
        // with per-column offsets keeps this to a single allocation.
        let col_base: Vec<usize> = {
            let mut base = Vec::with_capacity(arity + 1);
            let mut acc = 0usize;
            base.push(0);
            for m in td.max_var_per_column() {
                acc += m.map_or(0, |v| v.index() + 1);
                base.push(acc);
            }
            base
        };
        let mut intern_tbl: Vec<usize> = vec![usize::MAX; col_base[arity]];
        // Occurrence counts per node (antecedent rows only, to start): used
        // both for the CSR prefix sums and the privacy test below.
        let mut occurrences: Vec<usize> = Vec::new();
        let mut var_init: Vec<u64> = Vec::new();
        let mut intern =
            |col: AttrId, v: Var, occurrences: &mut Vec<usize>, var_init: &mut Vec<u64>| {
                let slot = &mut intern_tbl[col_base[col.index()] + v.index()];
                if *slot == usize::MAX {
                    *slot = occurrences.len();
                    occurrences.push(0);
                    // The column fixes the sort; the conclusion pass below
                    // individually distinguishes the conclusion's variables
                    // (the conclusion row is not permutable).
                    var_init.push((col.index() as u64) * 2);
                }
                *slot
            };
        let mut row_var_ids: Vec<usize> = Vec::with_capacity(n_rows * arity);
        for row in td.antecedents() {
            for (col, v) in row.components() {
                let id = intern(col, v, &mut occurrences, &mut var_init);
                occurrences[id] += 1;
                row_var_ids.push(id);
            }
        }
        for (col, v) in td.conclusion().components() {
            let id = intern(col, v, &mut occurrences, &mut var_init);
            var_init[id] = (col.index() as u64) * 2 + 1;
            occurrences[id] += 1;
        }
        let n_vars = occurrences.len();
        // CSR fill: prefix sums over the antecedent-only occurrence counts
        // (a node introduced by the conclusion alone has no occurrence
        // rows), then one pass over the rows in ascending order.
        let mut concl_extra = vec![0usize; n_vars];
        for (col, v) in td.conclusion().components() {
            concl_extra[intern_tbl[col_base[col.index()] + v.index()]] = 1;
        }
        let mut var_row_start: Vec<usize> = Vec::with_capacity(n_vars + 1);
        let mut acc = 0usize;
        var_row_start.push(0);
        for id in 0..n_vars {
            acc += occurrences[id] - concl_extra[id];
            var_row_start.push(acc);
        }
        let mut cursor: Vec<usize> = var_row_start[..n_vars].to_vec();
        let mut var_row_data: Vec<usize> = vec![0; acc];
        for r in 0..n_rows {
            for &id in &row_var_ids[r * arity..(r + 1) * arity] {
                var_row_data[cursor[id]] = r;
                cursor[id] += 1;
            }
        }
        // A variable with a single total occurrence (rows + conclusion) is
        // private to its row; public nodes keep their id, private slots get
        // the `usize::MAX` sentinel (never a real node id).
        let row_public: Vec<usize> = row_var_ids
            .iter()
            .map(|&id| if occurrences[id] > 1 { id } else { usize::MAX })
            .collect();
        Refiner {
            td,
            arity,
            n_rows,
            row_var_ids,
            var_row_start,
            var_row_data,
            var_init,
            row_public,
        }
    }

    /// Runs color refinement to a fixpoint from the given row coloring
    /// (variables restart from their invariant initial colors each time,
    /// which reaches the same fixpoint and keeps the code simple). Returns
    /// the stable row coloring, as dense ranks. All signature and ranking
    /// buffers live in the caller's [`Scratch`] and ranking is sort-based
    /// ([`dense_ranks_with`]) — this sits on the batch pipeline's
    /// canonicalization hot path, where per-call allocation dominates.
    fn refine(&self, row_colors: &mut Vec<u64>, s: &mut Scratch) {
        let n_vars = self.var_init.len();
        let Scratch {
            var_colors,
            new_var,
            new_row,
            var_sig_data,
            row_sig_data,
            idx,
            ..
        } = s;
        var_colors.clear();
        var_colors.extend_from_slice(&self.var_init);
        loop {
            // Variables: signature = (own color, sorted multiset of
            // occurrence-row colors), laid out in the CSR arena.
            var_sig_data.clear();
            var_sig_data.extend(self.var_row_data.iter().map(|&r| row_colors[r]));
            for id in 0..n_vars {
                var_sig_data[self.var_row_start[id]..self.var_row_start[id + 1]].sort_unstable();
            }
            dense_ranks_with(n_vars, idx, new_var, |a, b| {
                let sig = |id: usize| {
                    (
                        var_colors[id],
                        &var_sig_data[self.var_row_start[id]..self.var_row_start[id + 1]],
                    )
                };
                sig(a).cmp(&sig(b))
            });

            // Rows: signature = (own color, column-ordered variable colors).
            row_sig_data.clear();
            row_sig_data.extend(self.row_var_ids.iter().map(|&id| new_var[id]));
            dense_ranks_with(self.n_rows, idx, new_row, |a, b| {
                let sig = |r: usize| {
                    (
                        row_colors[r],
                        &row_sig_data[r * self.arity..(r + 1) * self.arity],
                    )
                };
                sig(a).cmp(&sig(b))
            });

            let stable = new_row == row_colors && new_var == var_colors;
            std::mem::swap(row_colors, new_row);
            std::mem::swap(var_colors, new_var);
            if stable {
                return;
            }
        }
    }

    /// The canonical search: refine, then branch on the smallest ambiguous
    /// row class, keeping the lexicographically smallest leaf encoding.
    fn canonize(&self, row_colors: Vec<u64>, best: &mut Option<Vec<u32>>, s: &mut Scratch) {
        let mut colors = row_colors;
        self.refine(&mut colors, s);

        // Group rows by color — refinement returns dense ranks, so a
        // counting pass suffices — and find the smallest class with >= 2
        // members (ties towards the smallest color, for determinism: the
        // ascending scan takes the first color achieving the minimum size).
        s.counts.clear();
        s.counts.resize(self.n_rows, 0);
        for &c in &colors {
            s.counts[c as usize] += 1;
        }
        let target = s
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n >= 2)
            .min_by_key(|&(_, &n)| n)
            .map(|(c, _)| c as u64);

        match target {
            None => {
                // Discrete: the coloring orders the rows totally.
                let mut order: Vec<usize> = (0..self.n_rows).collect();
                order.sort_by_key(|&r| colors[r]);
                let enc = self.encode(&order);
                if best.as_ref().is_none_or(|b| enc < *b) {
                    *best = Some(enc);
                }
            }
            Some(class) => {
                let members: Vec<usize> =
                    (0..self.n_rows).filter(|&r| colors[r] == class).collect();
                // Automorphism pruning for the common symmetric case: two
                // class members that agree on every shared variable (and
                // differ only in variables private to the row) map to each
                // other under a row transposition that fixes the rest of
                // the dependency, so their branches yield identical
                // minima. Without this, a tableau of k rows that differ
                // only in fresh variables branches k!-fold.
                let public = |r: usize| &self.row_public[r * self.arity..(r + 1) * self.arity];
                let mut branched: Vec<&[usize]> = Vec::new();
                for r in members {
                    if branched.contains(&public(r)) {
                        continue;
                    }
                    branched.push(public(r));
                    // Individualize r: give it a fresh color below its
                    // class (2c keeps relative order of all other classes).
                    let mut next: Vec<u64> = colors.iter().map(|&c| 2 * c + 1).collect();
                    next[r] = 2 * class;
                    self.canonize(next, best, s);
                }
            }
        }
    }

    /// Encodes the TD with its antecedent rows in `order`, renaming
    /// variables per column in first-occurrence order. A complete invariant
    /// of the isomorphism class once `order` is canonical. The rename
    /// tables are dense direct-index vectors (variable ids are dense per
    /// column, same as the interner in [`Refiner::new`]) — this runs once
    /// per leaf of the branching search, so it stays hash-free like the
    /// refinement loop.
    fn encode(&self, order: &[usize]) -> Vec<u32> {
        const UNNAMED: u32 = u32::MAX;
        let mut rename: Vec<Vec<u32>> = self
            .td
            .max_var_per_column()
            .iter()
            .map(|m| vec![UNNAMED; m.map_or(0, |v| v.index() + 1)])
            .collect();
        let mut next: Vec<u32> = vec![0; self.arity];
        let mut out: Vec<u32> = Vec::with_capacity(2 + (self.n_rows + 1) * self.arity);
        out.push(self.arity as u32);
        out.push(self.n_rows as u32);
        let mut push_row = |row: &TdRow, out: &mut Vec<u32>| {
            for (col, v) in row.components() {
                let slot = &mut rename[col.index()][v.index()];
                if *slot == UNNAMED {
                    *slot = next[col.index()];
                    next[col.index()] += 1;
                }
                out.push(*slot);
            }
        };
        for &r in order {
            push_row(&self.td.antecedents()[r], &mut out);
        }
        push_row(self.td.conclusion(), &mut out);
        out
    }
}

/// The canonical encoding behind [`canon_key`]: a complete invariant of the
/// TD's isomorphism class, as a flat `u32` sequence
/// `[arity, n_antecedents, rows…, conclusion]` with canonically ordered
/// rows and canonically renamed variables.
fn canon_encoding(td: &Td) -> Vec<u32> {
    let refiner = Refiner::new(td);
    let mut best: Option<Vec<u32>> = None;
    let mut scratch = Scratch::default();
    refiner.canonize(vec![0; td.antecedent_count()], &mut best, &mut scratch);
    best.expect("at least one leaf: every TD has >= 1 antecedent")
}

/// A copy of `td` with antecedent rows in canonical order and variables
/// canonically renamed: two TDs are isomorphic iff their canonical forms
/// have identical rows. The name is preserved (it carries no structure).
pub fn canon_form(td: &Td) -> Td {
    let refiner = Refiner::new(td);
    let mut best: Option<Vec<u32>> = None;
    let mut scratch = Scratch::default();
    refiner.canonize(vec![0; td.antecedent_count()], &mut best, &mut scratch);
    let enc = best.expect("at least one leaf");
    let arity = td.arity();
    let rows: Vec<TdRow> = enc[2..]
        .chunks(arity)
        .map(|chunk| TdRow::from_raw(chunk.iter().copied()))
        .collect();
    let (concl, antes) = rows.split_last().expect("conclusion present");
    Td::new(
        td.schema().clone(),
        antes.to_vec(),
        concl.clone(),
        td.name(),
    )
    .expect("canonical rows keep the original arities")
}

/// The isomorphism-invariant key of one TD. Equal keys ⇔ isomorphic TDs
/// (renamed variables and/or permuted antecedent rows), up to 128-bit
/// digest collision.
pub fn canon_key(td: &Td) -> CanonKey {
    let mut d = Digest::new();
    for v in canon_encoding(td) {
        d.push_u32(v);
    }
    d.finish()
}

/// The key of a whole implication instance `D ⊨ D₀`: the multiset of the
/// premises' keys (order-independent — `D` is a set) combined with the
/// goal's key. Two instances get the same key iff their premise multisets
/// match pairwise up to isomorphism and so do their goals; the verdict of
/// the implication question is invariant under exactly these changes, which
/// is what makes key-based caching of verdicts sound.
pub fn system_key(deps: &[Td], d0: &Td) -> CanonKey {
    system_key_with(deps, d0, canon_key)
}

/// [`system_key`] with a caller-supplied per-TD keying function. The
/// composition (sorted premise-key multiset + goal key under one digest) is
/// identical to [`system_key`]; callers that can produce `canon_key`-equal
/// keys cheaper — e.g. a service memoizing keys of structurally identical
/// TDs across requests — plug in here without re-deriving the composition.
/// `key_of` must agree with [`canon_key`] on every TD it is given, or the
/// resulting key stops being the isomorphism invariant this module promises.
pub fn system_key_with(deps: &[Td], d0: &Td, mut key_of: impl FnMut(&Td) -> CanonKey) -> CanonKey {
    let mut dep_keys: Vec<CanonKey> = deps.iter().map(&mut key_of).collect();
    dep_keys.sort_unstable();
    let mut d = Digest::new();
    d.push_u32(d0.arity() as u32);
    d.push_u32(deps.len() as u32);
    for k in dep_keys {
        d.push_u128(k.raw());
    }
    d.push_u128(key_of(d0).raw());
    d.finish()
}

/// Brute-force isomorphism test: tries every permutation of `a`'s
/// antecedent rows against `b` (row-permuted copies compare equal after
/// [`Td::normalized`]). **Factorial in the antecedent count** — this is the
/// property-test oracle for [`canon_key`], not a production check.
pub fn isomorphic(a: &Td, b: &Td) -> bool {
    if a.arity() != b.arity() || a.antecedent_count() != b.antecedent_count() {
        return false;
    }
    let nb = b.normalized();
    let k = a.antecedent_count();
    let mut perm: Vec<usize> = (0..k).collect();
    // Heap's algorithm, iterative.
    let mut c = vec![0usize; k];
    let check = |perm: &[usize]| {
        let antes: Vec<TdRow> = perm.iter().map(|&i| a.antecedents()[i].clone()).collect();
        let td = Td::new(a.schema().clone(), antes, a.conclusion().clone(), a.name())
            .expect("same rows, same arities")
            .normalized();
        td.antecedents() == nb.antecedents() && td.conclusion() == nb.conclusion()
    };
    if check(&perm) {
        return true;
    }
    let mut i = 1;
    while i < k {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            if check(&perm) {
                return true;
            }
            c[i] += 1;
            i = 1;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::td::TdBuilder;

    fn schema3() -> Schema {
        Schema::new("R", ["A", "B", "C"]).unwrap()
    }

    fn schema2() -> Schema {
        Schema::new("R", ["A", "B"]).unwrap()
    }

    fn fig1() -> Td {
        TdBuilder::new(schema3())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["*", "b", "c'"])
            .unwrap()
            .build("fig1")
            .unwrap()
    }

    #[test]
    fn key_invariant_under_renaming() {
        let td1 = fig1();
        let td2 = TdBuilder::new(schema3())
            .antecedent(["s", "t", "u"])
            .unwrap()
            .antecedent(["s", "t2", "u2"])
            .unwrap()
            .conclusion(["*", "t", "u2"])
            .unwrap()
            .build("renamed")
            .unwrap();
        assert_eq!(canon_key(&td1), canon_key(&td2));
    }

    #[test]
    fn key_invariant_under_row_permutation() {
        let td1 = fig1();
        // Rows swapped; the conclusion references the same structure.
        let td2 = TdBuilder::new(schema3())
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .antecedent(["a", "b", "c"])
            .unwrap()
            .conclusion(["*", "b", "c'"])
            .unwrap()
            .build("swapped")
            .unwrap();
        assert!(isomorphic(&td1, &td2));
        assert_eq!(canon_key(&td1), canon_key(&td2));
    }

    #[test]
    fn distinct_structures_get_distinct_keys() {
        let td1 = fig1();
        // A no longer shared between the rows.
        let td3 = TdBuilder::new(schema3())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a2", "b'", "c'"])
            .unwrap()
            .conclusion(["*", "b", "c'"])
            .unwrap()
            .build("unshared")
            .unwrap();
        assert!(!isomorphic(&td1, &td3));
        assert_ne!(canon_key(&td1), canon_key(&td3));
    }

    #[test]
    fn conclusion_pattern_matters() {
        let full = TdBuilder::new(schema2())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("full")
            .unwrap();
        let other = TdBuilder::new(schema2())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a'", "b"])
            .unwrap()
            .build("mirror")
            .unwrap();
        // These ARE isomorphic: swapping the two antecedent rows maps one
        // conclusion pattern onto the other.
        assert!(isomorphic(&full, &other));
        assert_eq!(canon_key(&full), canon_key(&other));
        // But an existential conclusion is genuinely different.
        let emb = TdBuilder::new(schema2())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["*", "b'"])
            .unwrap()
            .build("emb")
            .unwrap();
        assert!(!isomorphic(&full, &emb));
        assert_ne!(canon_key(&full), canon_key(&emb));
    }

    /// Bipartite cycle fixtures over 2 columns: rows are edges, variables
    /// nodes. Every variable has degree 2, so color refinement alone is
    /// stuck at the uniform coloring — only individualization branching can
    /// tell one big cycle from two small ones.
    fn cycle_td(cycles: &[usize], name: &str) -> Td {
        let mut antecedents = Vec::new();
        let (mut a_base, mut b_base) = (0u32, 0u32);
        for &len in cycles {
            assert!(len >= 2 && len % 2 == 0, "bipartite cycles are even");
            let half = (len / 2) as u32;
            for i in 0..half {
                // Edges (a_i, b_i) and (a_{i+1}, b_i) close a 2·half cycle.
                antecedents.push(TdRow::from_raw([a_base + i, b_base + i]));
                antecedents.push(TdRow::from_raw([a_base + (i + 1) % half, b_base + i]));
            }
            a_base += half;
            b_base += half;
        }
        // Fresh existential conclusion: contributes no distinguishing
        // structure.
        let concl = TdRow::from_raw([a_base + 100, b_base + 100]);
        Td::new(schema2(), antecedents, concl, name).unwrap()
    }

    #[test]
    fn near_isomorphic_cycles_distinguished() {
        // 8 rows either as one 8-cycle or as two 4-cycles: identical color
        // refinement signatures, non-isomorphic structures.
        let one = cycle_td(&[8], "one-8-cycle");
        let two = cycle_td(&[4, 4], "two-4-cycles");
        assert_eq!(one.antecedent_count(), two.antecedent_count());
        assert!(!isomorphic(&one, &two));
        assert_ne!(canon_key(&one), canon_key(&two));
        // And a shuffled copy of the 8-cycle still matches it.
        let mut rows = one.antecedents().to_vec();
        rows.rotate_left(3);
        rows.swap(0, 5);
        let shuffled = Td::new(schema2(), rows, one.conclusion().clone(), "shuffled").unwrap();
        assert_eq!(canon_key(&one), canon_key(&shuffled));
    }

    #[test]
    fn canon_form_is_a_fixpoint_and_isomorphic() {
        for td in [fig1(), cycle_td(&[4, 4], "c"), cycle_td(&[6], "c6")] {
            let cf = canon_form(&td);
            assert!(isomorphic(&td, &cf));
            let cf2 = canon_form(&cf);
            assert_eq!(cf.antecedents(), cf2.antecedents());
            assert_eq!(cf.conclusion(), cf2.conclusion());
            assert_eq!(canon_key(&td), canon_key(&cf));
        }
    }

    #[test]
    fn system_key_is_order_independent_and_goal_sensitive() {
        let d1 = fig1();
        let d2 = TdBuilder::new(schema3())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["a", "b", "c'"])
            .unwrap()
            .build("join")
            .unwrap();
        let k1 = system_key(&[d1.clone(), d2.clone()], &d1);
        let k2 = system_key(&[d2.clone(), d1.clone()], &d1);
        assert_eq!(k1, k2, "premise order must not matter");
        let k3 = system_key(&[d1.clone(), d2.clone()], &d2);
        assert_ne!(k1, k3, "the goal must matter");
        // A premise swapped for an isomorphic copy keeps the key.
        let d1r = TdBuilder::new(schema3())
            .antecedent(["x", "y", "z"])
            .unwrap()
            .antecedent(["x", "y2", "z2"])
            .unwrap()
            .conclusion(["*", "y", "z2"])
            .unwrap()
            .build("fig1-copy")
            .unwrap();
        assert_eq!(system_key(&[d1r, d2.clone()], &d1), k1);
    }

    #[test]
    fn duplicate_rows_are_handled() {
        // Duplicate antecedent rows: permutations that swap them are
        // automorphisms; the key is still well-defined and invariant.
        let td = Td::new(
            schema2(),
            vec![
                TdRow::from_raw([0, 0]),
                TdRow::from_raw([0, 0]),
                TdRow::from_raw([0, 1]),
            ],
            TdRow::from_raw([0, 1]),
            "dups",
        )
        .unwrap();
        let td_perm = Td::new(
            schema2(),
            vec![
                TdRow::from_raw([5, 1]),
                TdRow::from_raw([5, 5]),
                TdRow::from_raw([5, 5]),
            ],
            TdRow::from_raw([5, 1]),
            "dups-renamed",
        )
        .unwrap();
        assert!(isomorphic(&td, &td_perm));
        assert_eq!(canon_key(&td), canon_key(&td_perm));
    }

    #[test]
    fn symmetric_star_tableaux_stay_tractable() {
        // 64 rows sharing the column-0 hub, each with a private column-1
        // variable: a 63!-sized automorphism group. The pruning rule must
        // keep this linear; key equality under row permutation and
        // renaming still holds.
        // Offsets start at 1: column-1 variable 0 is the conclusion's, and
        // a row carrying it would not be private-symmetric with the rest.
        let star = |offset: u32, rot: usize| {
            let mut rows: Vec<TdRow> = (0..64).map(|i| TdRow::from_raw([0, offset + i])).collect();
            rows.rotate_left(rot);
            Td::new(schema2(), rows, TdRow::from_raw([1, 0]), "star").unwrap()
        };
        let k1 = canon_key(&star(1, 0));
        let k2 = canon_key(&star(1000, 17));
        assert_eq!(k1, k2);
        // One extra duplicated hub row breaks the symmetry class apart but
        // must stay tractable and distinct.
        let mut rows: Vec<TdRow> = (1..=64).map(|i| TdRow::from_raw([0, i])).collect();
        rows.push(TdRow::from_raw([1, 0]));
        let other = Td::new(schema2(), rows, TdRow::from_raw([1, 0]), "star+").unwrap();
        assert_ne!(canon_key(&other), k1);
    }

    #[test]
    fn display_is_hex() {
        let k = canon_key(&fig1());
        let s = k.to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
