//! Pattern matching: homomorphisms from variable rows into instances.
//!
//! Everything the paper does with templates — checking satisfaction,
//! finding chase triggers, witnessing conclusions — reduces to one
//! operation: *extend a partial variable binding so that every pattern row
//! maps to some tuple of the instance*. This module implements that search
//! (backtracking, deterministic order) once, and the rest of the crate reuses
//! it.
//!
//! Distinct pattern rows may map to the **same** tuple (homomorphisms need
//! not be injective); this matters — the paper's part (B) case analysis
//! explicitly walks through the collapsed cases ("if t₁ = … = t₅, then ∗ can
//! be chosen as the same element").

use std::collections::HashMap;
use std::ops::ControlFlow;

use crate::ids::{AttrId, Value, Var};
use crate::instance::Instance;
use crate::td::TdRow;

/// A partial assignment of values to (column-scoped) variables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Binding {
    cols: Vec<HashMap<Var, Value>>,
}

impl Binding {
    /// An empty binding for an `arity`-column schema.
    pub fn new(arity: usize) -> Self {
        Self {
            cols: vec![HashMap::new(); arity],
        }
    }

    /// The value bound to `var` in `col`, if any.
    pub fn get(&self, col: AttrId, var: Var) -> Option<Value> {
        self.cols[col.index()].get(&var).copied()
    }

    /// Binds `var` (in `col`) to `value`. Returns `false` on conflict with
    /// an existing different binding; returns `true` (without change) if the
    /// binding already agrees.
    pub fn bind(&mut self, col: AttrId, var: Var, value: Value) -> bool {
        match self.cols[col.index()].entry(var) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get() == value,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(value);
                true
            }
        }
    }

    /// Removes the binding of `var` in `col`.
    pub fn unbind(&mut self, col: AttrId, var: Var) {
        self.cols[col.index()].remove(&var);
    }

    /// Number of bound variables over all columns.
    pub fn len(&self) -> usize {
        self.cols.iter().map(HashMap::len).sum()
    }

    /// `true` if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.cols.iter().all(HashMap::is_empty)
    }

    /// A deterministic, sorted dump of the binding (for proofs and display).
    pub fn to_sorted_vec(&self) -> Vec<(AttrId, Var, Value)> {
        let mut out = Vec::with_capacity(self.len());
        for (c, m) in self.cols.iter().enumerate() {
            for (&var, &val) in m {
                out.push((AttrId::from(c), var, val));
            }
        }
        out.sort();
        out
    }

    /// Rebuilds a binding from a dump produced by [`Self::to_sorted_vec`].
    pub fn from_entries(
        arity: usize,
        entries: impl IntoIterator<Item = (AttrId, Var, Value)>,
    ) -> Option<Self> {
        let mut b = Binding::new(arity);
        for (c, var, val) in entries {
            if c.index() >= arity || !b.bind(c, var, val) {
                return None;
            }
        }
        Some(b)
    }
}

/// Applies `row` under `binding`; `None` for any unbound cell.
pub fn apply_row(binding: &Binding, row: &TdRow) -> Vec<Option<Value>> {
    row.components().map(|(c, v)| binding.get(c, v)).collect()
}

/// Tries to match `row` against `tuple`, extending `binding`. On success
/// returns the list of newly bound `(col, var)` pairs (for rollback); on
/// conflict rolls back and returns `None`.
fn try_match_row(
    binding: &mut Binding,
    row: &TdRow,
    tuple: &crate::tuple::Tuple,
) -> Option<Vec<(AttrId, Var)>> {
    let mut added = Vec::new();
    for (col, var) in row.components() {
        let val = tuple.get(col);
        match binding.get(col, var) {
            Some(existing) if existing == val => {}
            Some(_) => {
                for &(c, v) in &added {
                    binding.unbind(c, v);
                }
                return None;
            }
            None => {
                binding.bind(col, var, val);
                added.push((col, var));
            }
        }
    }
    Some(added)
}

fn search<F>(
    pattern: &[TdRow],
    target: &Instance,
    binding: &mut Binding,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Binding) -> ControlFlow<()>,
{
    let Some((row, rest)) = pattern.split_first() else {
        return visit(binding);
    };
    for tuple in target.tuples() {
        if let Some(added) = try_match_row(binding, row, tuple) {
            let flow = search(rest, target, binding, visit);
            for (c, v) in added {
                binding.unbind(c, v);
            }
            flow?;
        }
    }
    ControlFlow::Continue(())
}

/// Visits every extension of `seed` that maps all of `pattern` into
/// `target`. The visitor returns `ControlFlow::Break(())` to stop early.
/// Returns `true` if the enumeration ran to completion.
pub fn for_each_match<F>(pattern: &[TdRow], target: &Instance, seed: &Binding, mut visit: F) -> bool
where
    F: FnMut(&Binding) -> ControlFlow<()>,
{
    let mut binding = seed.clone();
    search(pattern, target, &mut binding, &mut visit).is_continue()
}

/// The first matching extension of `seed`, if any.
pub fn match_first(pattern: &[TdRow], target: &Instance, seed: &Binding) -> Option<Binding> {
    let mut found = None;
    for_each_match(pattern, target, seed, |b| {
        found = Some(b.clone());
        ControlFlow::Break(())
    });
    found
}

/// Up to `limit` matching extensions of `seed` (deterministic order).
pub fn match_all(
    pattern: &[TdRow],
    target: &Instance,
    seed: &Binding,
    limit: usize,
) -> Vec<Binding> {
    let mut out = Vec::new();
    for_each_match(pattern, target, seed, |b| {
        out.push(b.clone());
        if out.len() >= limit {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    out
}

/// Finds a homomorphism from instance `a` into instance `b` that **fixes**
/// every value of `fixed` pointwise: a per-column value mapping under which
/// every row of `a` lands on a row of `b`, with the fixed values acting as
/// constants. Returns the mapping as a [`Binding`] over `a`'s values read
/// as variables.
///
/// Fixing matters: with no constants every instance collapses
/// homomorphically onto any single row, so the unconstrained relation is
/// trivial. The meaningful notion — behind *universal models* — fixes the
/// frozen tableau: a terminated chase result maps homomorphically into
/// every model of the dependencies containing the initial instance, by a
/// hom that is the identity on the initial values. That is why
/// [`crate::inference::InferenceVerdict::NotImplied`] is conclusive.
pub fn instance_hom_fixing(a: &Instance, b: &Instance, fixed: &Instance) -> Option<Binding> {
    if a.schema() != b.schema() || a.schema() != fixed.schema() {
        return None;
    }
    let arity = a.schema().arity();
    let mut seed = Binding::new(arity);
    for col in a.schema().attr_ids() {
        for v in fixed.active_domain(col) {
            if !seed.bind(col, crate::ids::Var::new(v.raw()), v) {
                return None;
            }
        }
    }
    // Read each row of `a` as a pattern row whose variables are the values.
    let pattern: Vec<TdRow> = a
        .tuples()
        .map(|t| TdRow::new(t.values().iter().map(|v| crate::ids::Var::new(v.raw()))))
        .collect();
    match_first(&pattern, b, &seed)
}

/// [`instance_hom_fixing`] with nothing fixed. Note this is only nontrivial
/// when `b` is empty and `a` is not — see the fixing variant's docs.
pub fn instance_hom(a: &Instance, b: &Instance) -> Option<Binding> {
    let empty = Instance::new(a.schema().clone());
    instance_hom_fixing(a, b, &empty)
}

/// `true` if `a` maps into `b` by a homomorphism fixing `fixed` pointwise.
pub fn hom_embeds_fixing(a: &Instance, b: &Instance, fixed: &Instance) -> bool {
    instance_hom_fixing(a, b, fixed).is_some()
}

/// Counts matches, up to `limit`.
pub fn count_matches(pattern: &[TdRow], target: &Instance, seed: &Binding, limit: usize) -> usize {
    let mut n = 0usize;
    for_each_match(pattern, target, seed, |_| {
        n += 1;
        if n >= limit {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::td::TdBuilder;

    fn schema() -> Schema {
        Schema::new("R", ["A", "B"]).unwrap()
    }

    /// Pattern rows of the garment-style dependency `R(a,b) & R(a,b')`.
    fn pattern() -> Vec<TdRow> {
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a", "b'"])
            .unwrap()
            .conclusion(["a", "b"])
            .unwrap()
            .build("p")
            .unwrap();
        td.antecedents().to_vec()
    }

    #[test]
    fn binding_bind_and_conflict() {
        let mut b = Binding::new(2);
        assert!(b.is_empty());
        assert!(b.bind(AttrId::new(0), Var::new(0), Value::new(7)));
        assert!(b.bind(AttrId::new(0), Var::new(0), Value::new(7)));
        assert!(!b.bind(AttrId::new(0), Var::new(0), Value::new(8)));
        // Same numeric var in another column is independent.
        assert!(b.bind(AttrId::new(1), Var::new(0), Value::new(8)));
        assert_eq!(b.len(), 2);
        b.unbind(AttrId::new(0), Var::new(0));
        assert_eq!(b.get(AttrId::new(0), Var::new(0)), None);
    }

    #[test]
    fn binding_dump_roundtrip() {
        let mut b = Binding::new(2);
        b.bind(AttrId::new(1), Var::new(3), Value::new(9));
        b.bind(AttrId::new(0), Var::new(1), Value::new(2));
        let dump = b.to_sorted_vec();
        assert_eq!(dump.len(), 2);
        let b2 = Binding::from_entries(2, dump).unwrap();
        assert_eq!(b, b2);
        // Conflicting entries are rejected.
        assert!(Binding::from_entries(
            2,
            [
                (AttrId::new(0), Var::new(0), Value::new(1)),
                (AttrId::new(0), Var::new(0), Value::new(2)),
            ],
        )
        .is_none());
    }

    #[test]
    fn matches_share_variables() {
        let mut inst = Instance::new(schema());
        inst.insert_values([1, 10]).unwrap();
        inst.insert_values([1, 11]).unwrap();
        inst.insert_values([2, 20]).unwrap();
        let p = pattern();
        // Matches: both rows must share the A value.
        // a=1: (r0,r0),(r0,r1),(r1,r0),(r1,r1) ; a=2: (r2,r2). Total 5.
        let all = match_all(&p, &inst, &Binding::new(2), 100);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn non_injective_matches_allowed() {
        let mut inst = Instance::new(schema());
        inst.insert_values([1, 10]).unwrap();
        let p = pattern();
        // Both pattern rows map to the single tuple.
        let m = match_first(&p, &inst, &Binding::new(2)).unwrap();
        assert_eq!(m.get(AttrId::new(0), Var::new(0)), Some(Value::new(1)));
    }

    #[test]
    fn seeded_search_restricts() {
        let mut inst = Instance::new(schema());
        inst.insert_values([1, 10]).unwrap();
        inst.insert_values([2, 20]).unwrap();
        let p = pattern();
        let mut seed = Binding::new(2);
        // Force a = 2.
        let a_var = p[0].get(AttrId::new(0));
        seed.bind(AttrId::new(0), a_var, Value::new(2));
        let all = match_all(&p, &inst, &seed, 100);
        assert_eq!(all.len(), 1);
        assert_eq!(
            all[0].get(AttrId::new(1), p[0].get(AttrId::new(1))),
            Some(Value::new(20))
        );
    }

    #[test]
    fn no_match_when_seed_conflicts() {
        let mut inst = Instance::new(schema());
        inst.insert_values([1, 10]).unwrap();
        let p = pattern();
        let mut seed = Binding::new(2);
        seed.bind(AttrId::new(0), p[0].get(AttrId::new(0)), Value::new(99));
        assert!(match_first(&p, &inst, &seed).is_none());
    }

    #[test]
    fn empty_pattern_matches_once() {
        let inst = Instance::new(schema());
        assert_eq!(count_matches(&[], &inst, &Binding::new(2), 10), 1);
    }

    #[test]
    fn empty_instance_matches_nothing() {
        let inst = Instance::new(schema());
        assert!(match_first(&pattern(), &inst, &Binding::new(2)).is_none());
    }

    #[test]
    fn count_respects_limit() {
        let mut inst = Instance::new(schema());
        for i in 0..4 {
            inst.insert_values([1, 10 + i]).unwrap();
        }
        // 16 (a shared) matches, limit at 7.
        assert_eq!(count_matches(&pattern(), &inst, &Binding::new(2), 7), 7);
    }

    #[test]
    fn instance_homomorphisms() {
        let mut a = Instance::new(schema());
        a.insert_values([0, 0]).unwrap();
        a.insert_values([0, 1]).unwrap();
        // Unconstrained homs are trivial: everything collapses onto any
        // nonempty target.
        let mut c = Instance::new(schema());
        c.insert_values([0, 0]).unwrap();
        c.insert_values([1, 1]).unwrap();
        assert!(instance_hom(&a, &c).is_some());
        assert!(instance_hom(&c, &a).is_some());
        // Fixing a's values as constants changes the story: a -> c fixing a
        // needs rows (0,0) and (0,1) in c verbatim — absent.
        assert!(!hom_embeds_fixing(&a, &c, &a));
        // But a -> b fixing a, where b extends a, is the identity.
        let mut b = a.clone();
        b.insert_values([9, 9]).unwrap();
        let h = instance_hom_fixing(&a, &b, &a).unwrap();
        assert_eq!(h.get(AttrId::new(0), Var::new(0)), Some(Value::new(0)));
        assert_eq!(h.get(AttrId::new(1), Var::new(1)), Some(Value::new(1)));
        // Empty source embeds anywhere; nonempty source cannot embed into
        // an empty target.
        let empty = Instance::new(schema());
        assert!(instance_hom(&empty, &c).is_some());
        assert!(instance_hom(&a, &empty).is_none());
        // Schema mismatch short-circuits.
        let other = Instance::new(Schema::new("S", ["X"]).unwrap());
        assert!(instance_hom(&a, &other).is_none());
    }

    /// The universal-model property: chase a tableau to termination, then
    /// map the result into any model extending the tableau, fixing the
    /// tableau's values.
    #[test]
    fn chase_results_are_universal() {
        use crate::chase::{ChaseBudget, ChaseEngine, ChaseOutcome, ChasePolicy};
        use crate::td::TdBuilder;
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("product")
            .unwrap();
        let tds = vec![td];
        let mut initial = Instance::new(schema());
        initial.insert_values([0, 0]).unwrap();
        initial.insert_values([1, 1]).unwrap();
        let mut engine = ChaseEngine::new(
            &tds,
            initial.clone(),
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        let universal = engine.state().clone();
        // Any model of td extending `initial` receives the chase result.
        let mut model = initial.clone();
        for x in 0..3u32 {
            for y in 0..3u32 {
                model.insert_values([x, y]).unwrap();
            }
        }
        assert!(crate::satisfaction::satisfies(&model, &tds[0]));
        assert!(hom_embeds_fixing(&universal, &model, &initial));
    }

    #[test]
    fn apply_row_maps_bound_cells() {
        let p = pattern();
        let mut b = Binding::new(2);
        b.bind(AttrId::new(0), p[0].get(AttrId::new(0)), Value::new(5));
        let vals = apply_row(&b, &p[0]);
        assert_eq!(vals[0], Some(Value::new(5)));
        assert_eq!(vals[1], None);
    }
}
