//! Pattern matching: homomorphisms from variable rows into instances.
//!
//! Everything the paper does with templates — checking satisfaction,
//! finding chase triggers, witnessing conclusions — reduces to one
//! operation: *extend a partial variable binding so that every pattern row
//! maps to some tuple of the instance*. This module implements that search
//! (backtracking, deterministic order) once, and the rest of the crate reuses
//! it.
//!
//! Distinct pattern rows may map to the **same** tuple (homomorphisms need
//! not be injective); this matters — the paper's part (B) case analysis
//! explicitly walks through the collapsed cases ("if t₁ = … = t₅, then ∗ can
//! be chosen as the same element").
//!
//! # Matching strategies
//!
//! Two interchangeable implementations of the search live here, selected by
//! [`MatchStrategy`]:
//!
//! * [`MatchStrategy::Naive`] — the textbook nested-loop backtracking
//!   search: each pattern row is tried against every tuple of the target.
//!   `O(|target|^rows)` in the worst case. Kept as the **differential-testing
//!   oracle**: it is small enough to audit by eye, and the property tests
//!   assert the indexed planner enumerates exactly the same match set.
//! * [`MatchStrategy::Indexed`] (the default) — a join-order planner over
//!   the per-column value indexes of [`Instance`]: pattern rows are greedily
//!   reordered so each row shares variables with the rows already matched,
//!   and at each depth the candidate tuples are read from the most selective
//!   index entry ([`Instance::rows_with`]) instead of scanning the whole
//!   relation. Rows with no bound column fall back to a scan, so the
//!   strategy is never worse than a constant factor off the naive search
//!   and is asymptotically faster whenever the pattern is connected.
//!
//! Both strategies are deterministic; they may enumerate matches in
//! different orders but always produce the same *set* of bindings.

use std::ops::ControlFlow;

use crate::ids::{AttrId, Value, Var};
use crate::instance::Instance;
use crate::td::TdRow;

/// How [`for_each_match`] searches for homomorphisms. See the module docs
/// for the trade-off; the default is [`MatchStrategy::Indexed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchStrategy {
    /// Nested full scans (the differential-testing oracle).
    Naive,
    /// Index-lookup planning over [`Instance::rows_with`].
    #[default]
    Indexed,
}

/// A partial assignment of values to (column-scoped) variables.
///
/// Stored **densely**: one `Vec<u32>` per column, indexed directly by
/// variable id, with `u32::MAX` marking unbound slots. Variable ids are
/// small and dense in every caller (dependency builders number them in
/// first-occurrence order; [`instance_hom_fixing`] reads dense value ids
/// as variables), so direct indexing replaces the per-column `HashMap`s
/// that used to dominate the chase's trigger-discovery profile — `get` is
/// two array indexes, `clone` is a handful of `memcpy`s, and
/// [`Binding::to_sorted_vec`] is a linear sweep that needs no sort.
#[derive(Debug, Clone, Default)]
pub struct Binding {
    /// `cols[c][v]` is the bound value's raw id, or [`Binding::UNBOUND`].
    /// Column vectors grow on demand, so fresh bindings allocate nothing.
    cols: Vec<Vec<u32>>,
    /// Number of bound variables over all columns.
    bound: usize,
}

impl PartialEq for Binding {
    /// Logical equality: two bindings are equal when they bind the same
    /// variables to the same values — trailing unbound slots left behind
    /// by backtracking are representationally irrelevant.
    fn eq(&self, other: &Self) -> bool {
        let slot = |col: &Vec<u32>, i: usize| col.get(i).copied().unwrap_or(Self::UNBOUND);
        self.bound == other.bound
            && self.cols.len() == other.cols.len()
            && self
                .cols
                .iter()
                .zip(&other.cols)
                .all(|(a, b)| (0..a.len().max(b.len())).all(|i| slot(a, i) == slot(b, i)))
    }
}

impl Eq for Binding {}

impl Binding {
    /// Sentinel marking an unbound dense slot.
    const UNBOUND: u32 = u32::MAX;

    /// An empty binding for an `arity`-column schema.
    pub fn new(arity: usize) -> Self {
        Self {
            cols: vec![Vec::new(); arity],
            bound: 0,
        }
    }

    /// The value bound to `var` in `col`, if any.
    #[inline]
    pub fn get(&self, col: AttrId, var: Var) -> Option<Value> {
        match self.cols[col.index()].get(var.index()) {
            Some(&raw) if raw != Self::UNBOUND => Some(Value::new(raw)),
            _ => None,
        }
    }

    /// Binds `var` (in `col`) to `value`. Returns `false` on conflict with
    /// an existing different binding; returns `true` (without change) if the
    /// binding already agrees.
    #[inline]
    pub fn bind(&mut self, col: AttrId, var: Var, value: Value) -> bool {
        debug_assert!(
            value.raw() != Self::UNBOUND,
            "value id u32::MAX collides with the dense-slot sentinel"
        );
        let slots = &mut self.cols[col.index()];
        if slots.len() <= var.index() {
            slots.resize(var.index() + 1, Self::UNBOUND);
        }
        let slot = &mut slots[var.index()];
        if *slot == Self::UNBOUND {
            *slot = value.raw();
            self.bound += 1;
            true
        } else {
            *slot == value.raw()
        }
    }

    /// Removes the binding of `var` in `col`.
    #[inline]
    pub fn unbind(&mut self, col: AttrId, var: Var) {
        if let Some(slot) = self.cols[col.index()].get_mut(var.index()) {
            if *slot != Self::UNBOUND {
                *slot = Self::UNBOUND;
                self.bound -= 1;
            }
        }
    }

    /// Number of bound variables over all columns.
    pub fn len(&self) -> usize {
        self.bound
    }

    /// `true` if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.bound == 0
    }

    /// A deterministic, sorted dump of the binding (for proofs and
    /// display). The dense layout already stores each column in variable
    /// order, so this is a single allocation-then-sweep.
    pub fn to_sorted_vec(&self) -> Vec<(AttrId, Var, Value)> {
        let mut out = Vec::with_capacity(self.bound);
        for (c, slots) in self.cols.iter().enumerate() {
            for (v, &raw) in slots.iter().enumerate() {
                if raw != Self::UNBOUND {
                    out.push((AttrId::from(c), Var::from(v), Value::new(raw)));
                }
            }
        }
        out
    }

    /// Rebuilds a binding from a dump produced by [`Self::to_sorted_vec`].
    pub fn from_entries(
        arity: usize,
        entries: impl IntoIterator<Item = (AttrId, Var, Value)>,
    ) -> Option<Self> {
        let mut b = Binding::new(arity);
        for (c, var, val) in entries {
            if c.index() >= arity || !b.bind(c, var, val) {
                return None;
            }
        }
        Some(b)
    }

    /// Binds every cell of `row` to the corresponding component of the
    /// `tuple` slice (a borrowed arena row). Returns `false` (leaving the
    /// binding in a partially-extended state) if some cell conflicts with
    /// an existing binding — callers that need rollback should clone
    /// first. Used to seed delta-driven trigger discovery in the
    /// semi-naive chase.
    pub fn bind_row(&mut self, row: &TdRow, tuple: &[Value]) -> bool {
        row.components()
            .all(|(c, v)| self.bind(c, v, tuple[c.index()]))
    }
}

/// Applies `row` under `binding`; `None` for any unbound cell.
pub fn apply_row(binding: &Binding, row: &TdRow) -> Vec<Option<Value>> {
    row.components().map(|(c, v)| binding.get(c, v)).collect()
}

/// Tries to match `row` against the `tuple` slice (a borrowed arena row),
/// extending `binding`. Newly bound `(col, var)` pairs are pushed onto the
/// shared `trail` (a rollback stack reused across the whole search, so
/// matching allocates nothing in steady state). On success returns `true`
/// with the additions on the trail above the caller's mark; on conflict
/// rolls back to the mark and returns `false`.
fn try_match_row(
    binding: &mut Binding,
    row: &TdRow,
    tuple: &[Value],
    trail: &mut Vec<(AttrId, Var)>,
) -> bool {
    let mark = trail.len();
    for (col, var) in row.components() {
        let val = tuple[col.index()];
        match binding.get(col, var) {
            Some(existing) if existing == val => {}
            Some(_) => {
                unwind(binding, trail, mark);
                return false;
            }
            None => {
                binding.bind(col, var, val);
                trail.push((col, var));
            }
        }
    }
    true
}

/// Rolls the binding back to a trail mark.
#[inline]
fn unwind(binding: &mut Binding, trail: &mut Vec<(AttrId, Var)>, mark: usize) {
    for &(c, v) in &trail[mark..] {
        binding.unbind(c, v);
    }
    trail.truncate(mark);
}

/// A pattern row paired with an exclusive row-id cap: the row may only
/// match tuples whose `RowId` index is below the cap (`usize::MAX` means
/// unrestricted). The semi-naive chase uses caps to constrain rows to the
/// pre-delta prefix of the state, which makes its pivot decomposition
/// duplicate-free.
type CappedRow<'p> = (&'p TdRow, usize);

fn search_naive<F>(
    pattern: &[CappedRow<'_>],
    target: &Instance,
    binding: &mut Binding,
    trail: &mut Vec<(AttrId, Var)>,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Binding) -> ControlFlow<()>,
{
    let Some((&(row, cap), rest)) = pattern.split_first() else {
        return visit(binding);
    };
    for tuple in target.row_slices().take(cap) {
        let mark = trail.len();
        if try_match_row(binding, row, tuple, trail) {
            let flow = search_naive(rest, target, binding, trail, visit);
            unwind(binding, trail, mark);
            flow?;
        }
    }
    ControlFlow::Continue(())
}

/// Restricts an index bucket (ascending row ids) to ids below `cap`.
fn capped_prefix(rows: &[crate::ids::RowId], cap: usize) -> &[crate::ids::RowId] {
    if cap == usize::MAX {
        rows
    } else {
        &rows[..rows.partition_point(|r| r.index() < cap)]
    }
}

/// The most selective candidate list for `row` under `binding`: the
/// shortest index bucket over the row's bound columns, capped to row ids
/// below `cap`. `Err(())` means some bound column has no candidates (the
/// row cannot match at all); `Ok(None)` means no column is bound (callers
/// fall back to a scan).
#[allow(clippy::result_unit_err)]
fn best_bucket<'t>(
    row: &TdRow,
    target: &'t Instance,
    binding: &Binding,
    cap: usize,
) -> Result<Option<&'t [crate::ids::RowId]>, ()> {
    let mut candidates: Option<&[crate::ids::RowId]> = None;
    for (col, var) in row.components() {
        if let Some(val) = binding.get(col, var) {
            let rows = capped_prefix(target.rows_with(col, val), cap);
            if rows.is_empty() {
                return Err(());
            }
            if candidates.is_none_or(|best| rows.len() < best.len()) {
                candidates = Some(rows);
                // A singleton bucket cannot be beaten; stop scanning
                // columns for a more selective one.
                if rows.len() == 1 {
                    break;
                }
            }
        }
    }
    Ok(candidates)
}

/// One step of the indexed search: pick the most selective candidate list
/// for `row` under the current binding — the shortest index entry over its
/// bound columns — and fall back to a full scan when nothing is bound.
fn search_indexed<F>(
    pattern: &[CappedRow<'_>],
    target: &Instance,
    binding: &mut Binding,
    trail: &mut Vec<(AttrId, Var)>,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Binding) -> ControlFlow<()>,
{
    let Some((&(row, cap), rest)) = pattern.split_first() else {
        return visit(binding);
    };
    let Ok(candidates) = best_bucket(row, target, binding, cap) else {
        return ControlFlow::Continue(());
    };
    match candidates {
        Some(rows) => {
            for &rid in rows {
                let tuple = target.row(rid);
                let mark = trail.len();
                if try_match_row(binding, row, tuple, trail) {
                    let flow = search_indexed(rest, target, binding, trail, visit);
                    unwind(binding, trail, mark);
                    flow?;
                }
            }
        }
        None => {
            // No column of this row is bound yet: scan, exactly like the
            // naive search (the planner's row order makes this rare).
            for tuple in target.row_slices().take(cap) {
                let mark = trail.len();
                if try_match_row(binding, row, tuple, trail) {
                    let flow = search_indexed(rest, target, binding, trail, visit);
                    unwind(binding, trail, mark);
                    flow?;
                }
            }
        }
    }
    ControlFlow::Continue(())
}

/// Greedy join-order plan: rows are emitted so that each (after the first)
/// shares as many variables as possible with the rows already planned,
/// which maximizes how often [`search_indexed`] can use an index lookup.
/// Deterministic: ties break towards the earliest pattern row. Rows whose
/// variables are bound by the seed count as shared too.
///
/// Pattern widths are tiny (the paper's reduction caps antecedents at
/// five), so connectivity is computed by direct row-to-row comparison —
/// `O(m² · arity)` with no allocation beyond the output — rather than
/// through per-column variable sets; this keeps the planner off the hot
/// path for the single-row patterns of conclusion-witness checks.
fn plan_row_order<'p>(pattern: &[CappedRow<'p>], seed: &Binding) -> Vec<CappedRow<'p>> {
    let mut plan: Vec<CappedRow<'p>> = Vec::with_capacity(pattern.len());
    if pattern.len() <= 1 {
        plan.extend(pattern.iter());
        return plan;
    }
    let mut chosen = vec![false; pattern.len()];
    for _ in 0..pattern.len() {
        let mut best = usize::MAX;
        let mut best_shared = 0usize;
        for (i, &(row, _)) in pattern.iter().enumerate() {
            if chosen[i] {
                continue;
            }
            let shared = row
                .components()
                .filter(|&(c, v)| {
                    seed.get(c, v).is_some() || plan.iter().any(|&(r, _)| r.get(c) == v)
                })
                .count();
            if best == usize::MAX || shared > best_shared {
                best = i;
                best_shared = shared;
            }
        }
        chosen[best] = true;
        plan.push(pattern[best]);
    }
    plan
}

/// [`for_each_match_with`] over rows carrying explicit row-id caps (the
/// semi-naive chase's delta decomposition). Crate-internal: the public
/// entry points pass `usize::MAX` caps.
pub(crate) fn for_each_match_capped<F>(
    strategy: MatchStrategy,
    pattern: &[CappedRow<'_>],
    target: &Instance,
    seed: &Binding,
    mut visit: F,
) -> bool
where
    F: FnMut(&Binding) -> ControlFlow<()>,
{
    let mut binding = seed.clone();
    let mut trail: Vec<(AttrId, Var)> = Vec::new();
    match strategy {
        MatchStrategy::Naive => {
            search_naive(pattern, target, &mut binding, &mut trail, &mut visit).is_continue()
        }
        MatchStrategy::Indexed => {
            let plan = plan_row_order(pattern, seed);
            search_indexed(&plan, target, &mut binding, &mut trail, &mut visit).is_continue()
        }
    }
}

/// Visits every extension of `seed` that maps all of `pattern` into
/// `target`, searching with `strategy`. The visitor returns
/// `ControlFlow::Break(())` to stop early. Returns `true` if the
/// enumeration ran to completion.
pub fn for_each_match_with<F>(
    strategy: MatchStrategy,
    pattern: &[TdRow],
    target: &Instance,
    seed: &Binding,
    visit: F,
) -> bool
where
    F: FnMut(&Binding) -> ControlFlow<()>,
{
    let rows: Vec<CappedRow<'_>> = pattern.iter().map(|r| (r, usize::MAX)).collect();
    for_each_match_capped(strategy, &rows, target, seed, visit)
}

/// Visits every extension of `seed` that maps all of `pattern` into
/// `target` using the default [`MatchStrategy::Indexed`] planner. The
/// visitor returns `ControlFlow::Break(())` to stop early. Returns `true`
/// if the enumeration ran to completion.
pub fn for_each_match<F>(pattern: &[TdRow], target: &Instance, seed: &Binding, visit: F) -> bool
where
    F: FnMut(&Binding) -> ControlFlow<()>,
{
    for_each_match_with(MatchStrategy::default(), pattern, target, seed, visit)
}

/// `true` if some tuple of `target` matches the single pattern `row` under
/// `binding` — without extending the binding. Because variables are
/// column-scoped, the cells of one row are pairwise distinct variables, so
/// a read-only consistency check per tuple is equivalent to a full
/// single-row match; this is the allocation-free fast path behind
/// conclusion-witness checks, the hottest operation of the restricted
/// chase.
pub fn row_match_exists(
    strategy: MatchStrategy,
    row: &TdRow,
    target: &Instance,
    binding: &Binding,
) -> bool {
    let matches_tuple = |tuple: &[Value]| {
        row.components()
            .all(|(c, v)| binding.get(c, v).is_none_or(|val| val == tuple[c.index()]))
    };
    match strategy {
        MatchStrategy::Naive => target.row_slices().any(matches_tuple),
        MatchStrategy::Indexed => match best_bucket(row, target, binding, usize::MAX) {
            Err(()) => false,
            Ok(Some(rows)) => rows.iter().any(|&rid| matches_tuple(target.row(rid))),
            Ok(None) => target.row_slices().any(matches_tuple),
        },
    }
}

/// The first matching extension of `seed`, if any.
pub fn match_first(pattern: &[TdRow], target: &Instance, seed: &Binding) -> Option<Binding> {
    let mut found = None;
    for_each_match(pattern, target, seed, |b| {
        found = Some(b.clone());
        ControlFlow::Break(())
    });
    found
}

/// Up to `limit` matching extensions of `seed` (deterministic order).
pub fn match_all(
    pattern: &[TdRow],
    target: &Instance,
    seed: &Binding,
    limit: usize,
) -> Vec<Binding> {
    match_all_with(MatchStrategy::default(), pattern, target, seed, limit)
}

/// [`match_all`] under an explicit [`MatchStrategy`]. The two strategies
/// enumerate the same set of bindings, possibly in different orders.
pub fn match_all_with(
    strategy: MatchStrategy,
    pattern: &[TdRow],
    target: &Instance,
    seed: &Binding,
    limit: usize,
) -> Vec<Binding> {
    let mut out = Vec::new();
    for_each_match_with(strategy, pattern, target, seed, |b| {
        out.push(b.clone());
        if out.len() >= limit {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    out
}

/// Finds a homomorphism from instance `a` into instance `b` that **fixes**
/// every value of `fixed` pointwise: a per-column value mapping under which
/// every row of `a` lands on a row of `b`, with the fixed values acting as
/// constants. Returns the mapping as a [`Binding`] over `a`'s values read
/// as variables.
///
/// Fixing matters: with no constants every instance collapses
/// homomorphically onto any single row, so the unconstrained relation is
/// trivial. The meaningful notion — behind *universal models* — fixes the
/// frozen tableau: a terminated chase result maps homomorphically into
/// every model of the dependencies containing the initial instance, by a
/// hom that is the identity on the initial values. That is why
/// [`crate::inference::InferenceVerdict::NotImplied`] is conclusive.
pub fn instance_hom_fixing(a: &Instance, b: &Instance, fixed: &Instance) -> Option<Binding> {
    if a.schema() != b.schema() || a.schema() != fixed.schema() {
        return None;
    }
    let arity = a.schema().arity();
    let mut seed = Binding::new(arity);
    for col in a.schema().attr_ids() {
        for v in fixed.active_domain(col) {
            if !seed.bind(col, crate::ids::Var::new(v.raw()), v) {
                return None;
            }
        }
    }
    // Read each row of `a` as a pattern row whose variables are the values.
    let pattern: Vec<TdRow> = a
        .row_slices()
        .map(|t| TdRow::new(t.iter().map(|v| crate::ids::Var::new(v.raw()))))
        .collect();
    match_first(&pattern, b, &seed)
}

/// [`instance_hom_fixing`] with nothing fixed. Note this is only nontrivial
/// when `b` is empty and `a` is not — see the fixing variant's docs.
pub fn instance_hom(a: &Instance, b: &Instance) -> Option<Binding> {
    let empty = Instance::new(a.schema().clone());
    instance_hom_fixing(a, b, &empty)
}

/// `true` if `a` maps into `b` by a homomorphism fixing `fixed` pointwise.
pub fn hom_embeds_fixing(a: &Instance, b: &Instance, fixed: &Instance) -> bool {
    instance_hom_fixing(a, b, fixed).is_some()
}

/// Counts matches, up to `limit`.
pub fn count_matches(pattern: &[TdRow], target: &Instance, seed: &Binding, limit: usize) -> usize {
    let mut n = 0usize;
    for_each_match(pattern, target, seed, |_| {
        n += 1;
        if n >= limit {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::td::TdBuilder;

    fn schema() -> Schema {
        Schema::new("R", ["A", "B"]).unwrap()
    }

    /// Pattern rows of the garment-style dependency `R(a,b) & R(a,b')`.
    fn pattern() -> Vec<TdRow> {
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a", "b'"])
            .unwrap()
            .conclusion(["a", "b"])
            .unwrap()
            .build("p")
            .unwrap();
        td.antecedents().to_vec()
    }

    #[test]
    fn binding_bind_and_conflict() {
        let mut b = Binding::new(2);
        assert!(b.is_empty());
        assert!(b.bind(AttrId::new(0), Var::new(0), Value::new(7)));
        assert!(b.bind(AttrId::new(0), Var::new(0), Value::new(7)));
        assert!(!b.bind(AttrId::new(0), Var::new(0), Value::new(8)));
        // Same numeric var in another column is independent.
        assert!(b.bind(AttrId::new(1), Var::new(0), Value::new(8)));
        assert_eq!(b.len(), 2);
        b.unbind(AttrId::new(0), Var::new(0));
        assert_eq!(b.get(AttrId::new(0), Var::new(0)), None);
    }

    #[test]
    fn binding_dump_roundtrip() {
        let mut b = Binding::new(2);
        b.bind(AttrId::new(1), Var::new(3), Value::new(9));
        b.bind(AttrId::new(0), Var::new(1), Value::new(2));
        let dump = b.to_sorted_vec();
        assert_eq!(dump.len(), 2);
        let b2 = Binding::from_entries(2, dump).unwrap();
        assert_eq!(b, b2);
        // Conflicting entries are rejected.
        assert!(Binding::from_entries(
            2,
            [
                (AttrId::new(0), Var::new(0), Value::new(1)),
                (AttrId::new(0), Var::new(0), Value::new(2)),
            ],
        )
        .is_none());
    }

    #[test]
    fn matches_share_variables() {
        let mut inst = Instance::new(schema());
        inst.insert_values([1, 10]).unwrap();
        inst.insert_values([1, 11]).unwrap();
        inst.insert_values([2, 20]).unwrap();
        let p = pattern();
        // Matches: both rows must share the A value.
        // a=1: (r0,r0),(r0,r1),(r1,r0),(r1,r1) ; a=2: (r2,r2). Total 5.
        let all = match_all(&p, &inst, &Binding::new(2), 100);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn non_injective_matches_allowed() {
        let mut inst = Instance::new(schema());
        inst.insert_values([1, 10]).unwrap();
        let p = pattern();
        // Both pattern rows map to the single tuple.
        let m = match_first(&p, &inst, &Binding::new(2)).unwrap();
        assert_eq!(m.get(AttrId::new(0), Var::new(0)), Some(Value::new(1)));
    }

    #[test]
    fn seeded_search_restricts() {
        let mut inst = Instance::new(schema());
        inst.insert_values([1, 10]).unwrap();
        inst.insert_values([2, 20]).unwrap();
        let p = pattern();
        let mut seed = Binding::new(2);
        // Force a = 2.
        let a_var = p[0].get(AttrId::new(0));
        seed.bind(AttrId::new(0), a_var, Value::new(2));
        let all = match_all(&p, &inst, &seed, 100);
        assert_eq!(all.len(), 1);
        assert_eq!(
            all[0].get(AttrId::new(1), p[0].get(AttrId::new(1))),
            Some(Value::new(20))
        );
    }

    #[test]
    fn no_match_when_seed_conflicts() {
        let mut inst = Instance::new(schema());
        inst.insert_values([1, 10]).unwrap();
        let p = pattern();
        let mut seed = Binding::new(2);
        seed.bind(AttrId::new(0), p[0].get(AttrId::new(0)), Value::new(99));
        assert!(match_first(&p, &inst, &seed).is_none());
    }

    #[test]
    fn empty_pattern_matches_once() {
        let inst = Instance::new(schema());
        assert_eq!(count_matches(&[], &inst, &Binding::new(2), 10), 1);
    }

    #[test]
    fn empty_instance_matches_nothing() {
        let inst = Instance::new(schema());
        assert!(match_first(&pattern(), &inst, &Binding::new(2)).is_none());
    }

    #[test]
    fn count_respects_limit() {
        let mut inst = Instance::new(schema());
        for i in 0..4 {
            inst.insert_values([1, 10 + i]).unwrap();
        }
        // 16 (a shared) matches, limit at 7.
        assert_eq!(count_matches(&pattern(), &inst, &Binding::new(2), 7), 7);
    }

    #[test]
    fn instance_homomorphisms() {
        let mut a = Instance::new(schema());
        a.insert_values([0, 0]).unwrap();
        a.insert_values([0, 1]).unwrap();
        // Unconstrained homs are trivial: everything collapses onto any
        // nonempty target.
        let mut c = Instance::new(schema());
        c.insert_values([0, 0]).unwrap();
        c.insert_values([1, 1]).unwrap();
        assert!(instance_hom(&a, &c).is_some());
        assert!(instance_hom(&c, &a).is_some());
        // Fixing a's values as constants changes the story: a -> c fixing a
        // needs rows (0,0) and (0,1) in c verbatim — absent.
        assert!(!hom_embeds_fixing(&a, &c, &a));
        // But a -> b fixing a, where b extends a, is the identity.
        let mut b = a.clone();
        b.insert_values([9, 9]).unwrap();
        let h = instance_hom_fixing(&a, &b, &a).unwrap();
        assert_eq!(h.get(AttrId::new(0), Var::new(0)), Some(Value::new(0)));
        assert_eq!(h.get(AttrId::new(1), Var::new(1)), Some(Value::new(1)));
        // Empty source embeds anywhere; nonempty source cannot embed into
        // an empty target.
        let empty = Instance::new(schema());
        assert!(instance_hom(&empty, &c).is_some());
        assert!(instance_hom(&a, &empty).is_none());
        // Schema mismatch short-circuits.
        let other = Instance::new(Schema::new("S", ["X"]).unwrap());
        assert!(instance_hom(&a, &other).is_none());
    }

    /// The universal-model property: chase a tableau to termination, then
    /// map the result into any model extending the tableau, fixing the
    /// tableau's values.
    #[test]
    fn chase_results_are_universal() {
        use crate::chase::{ChaseBudget, ChaseEngine, ChaseOutcome, ChasePolicy};
        use crate::td::TdBuilder;
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("product")
            .unwrap();
        let tds = vec![td];
        let mut initial = Instance::new(schema());
        initial.insert_values([0, 0]).unwrap();
        initial.insert_values([1, 1]).unwrap();
        let mut engine = ChaseEngine::new(
            &tds,
            initial.clone(),
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        let universal = engine.state().clone();
        // Any model of td extending `initial` receives the chase result.
        let mut model = initial.clone();
        for x in 0..3u32 {
            for y in 0..3u32 {
                model.insert_values([x, y]).unwrap();
            }
        }
        assert!(crate::satisfaction::satisfies(&model, &tds[0]));
        assert!(hom_embeds_fixing(&universal, &model, &initial));
    }

    /// Compares the two strategies' match sets on one (pattern, instance).
    fn assert_strategies_agree(pattern: &[TdRow], inst: &Instance, seed: &Binding) {
        let dump = |ms: &[Binding]| {
            let mut v: Vec<_> = ms.iter().map(Binding::to_sorted_vec).collect();
            v.sort();
            v.dedup();
            v
        };
        let naive = match_all_with(MatchStrategy::Naive, pattern, inst, seed, usize::MAX);
        let indexed = match_all_with(MatchStrategy::Indexed, pattern, inst, seed, usize::MAX);
        assert_eq!(naive.len(), indexed.len(), "match multiplicity differs");
        assert_eq!(dump(&naive), dump(&indexed), "match sets differ");
    }

    #[test]
    fn strategies_enumerate_identical_match_sets() {
        let mut inst = Instance::new(schema());
        inst.insert_values([1, 10]).unwrap();
        inst.insert_values([1, 11]).unwrap();
        inst.insert_values([2, 20]).unwrap();
        inst.insert_values([2, 10]).unwrap();
        assert_strategies_agree(&pattern(), &inst, &Binding::new(2));
        // Seeded: force a = 2.
        let p = pattern();
        let mut seed = Binding::new(2);
        seed.bind(AttrId::new(0), p[0].get(AttrId::new(0)), Value::new(2));
        assert_strategies_agree(&p, &inst, &seed);
        // Empty pattern and empty instance corner cases.
        assert_strategies_agree(&[], &inst, &Binding::new(2));
        assert_strategies_agree(&pattern(), &Instance::new(schema()), &Binding::new(2));
    }

    #[test]
    fn disconnected_pattern_rows_still_match_under_index_planner() {
        // Two rows sharing no variables: the planner's fallback scan path.
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("cross")
            .unwrap();
        let mut inst = Instance::new(schema());
        inst.insert_values([1, 10]).unwrap();
        inst.insert_values([2, 20]).unwrap();
        let all = match_all_with(
            MatchStrategy::Indexed,
            td.antecedents(),
            &inst,
            &Binding::new(2),
            usize::MAX,
        );
        assert_eq!(all.len(), 4); // 2 x 2 independent choices
        assert_strategies_agree(td.antecedents(), &inst, &Binding::new(2));
    }

    #[test]
    fn binding_bind_row() {
        let p = pattern();
        let mut b = Binding::new(2);
        let t = crate::tuple::Tuple::from_raw([3, 7]);
        assert!(b.bind_row(&p[0], t.values()));
        assert_eq!(
            b.get(AttrId::new(0), p[0].get(AttrId::new(0))),
            Some(Value::new(3))
        );
        // Second row shares the A variable: binding to a conflicting tuple fails.
        let t2 = crate::tuple::Tuple::from_raw([4, 8]);
        assert!(!b.bind_row(&p[1], t2.values()));
        // A tuple agreeing on A succeeds.
        let mut b2 = Binding::new(2);
        assert!(b2.bind_row(&p[0], t.values()));
        assert!(b2.bind_row(&p[1], crate::tuple::Tuple::from_raw([3, 9]).values()));
    }

    #[test]
    fn apply_row_maps_bound_cells() {
        let p = pattern();
        let mut b = Binding::new(2);
        b.bind(AttrId::new(0), p[0].get(AttrId::new(0)), Value::new(5));
        let vals = apply_row(&b, &p[0]);
        assert_eq!(vals[0], Some(Value::new(5)));
        assert_eq!(vals[1], None);
    }
}
