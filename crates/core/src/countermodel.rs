//! Brute-force search for small finite countermodels.
//!
//! The paper's Main Theorem concerns *finite* implication too: `D₀` may fail
//! in a finite database satisfying `D`. When the chase diverges, a bounded
//! exhaustive search over small instances can still refute implication. The
//! search enumerates instances in a canonical form (per column, values are
//! numbered by first occurrence) to avoid re-visiting isomorphic copies, and
//! returns the first instance that satisfies every member of `D` while
//! violating `D₀`.
//!
//! This is exponential and only intended for small schemas and bounds; the
//! reduction crate builds its (much larger) countermodels analytically
//! instead, following the paper's part (B) construction.

use crate::instance::Instance;
use crate::satisfaction::{find_violation, satisfies_all};
use crate::schema::Schema;
use crate::td::Td;
use crate::tuple::Tuple;

/// Bounds for the exhaustive search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOptions {
    /// Try instances with `1..=max_rows` rows.
    pub max_rows: usize,
    /// Allow at most this many distinct values per column.
    pub max_values_per_column: usize,
    /// Give up after examining this many candidate instances.
    pub max_candidates: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            max_rows: 4,
            max_values_per_column: 4,
            max_candidates: 2_000_000,
        }
    }
}

/// Result of a countermodel search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A countermodel was found.
    Found(Instance),
    /// Every instance within the bounds satisfies `D₀` whenever it
    /// satisfies `D` — implication *within the bounds* (not in general!).
    ExhaustedBounds {
        /// Number of candidate instances examined.
        candidates: usize,
    },
    /// The candidate budget ran out before the bounds were exhausted.
    ExhaustedBudget {
        /// Number of candidate instances examined.
        candidates: usize,
    },
}

impl SearchOutcome {
    /// The countermodel, if one was found.
    pub fn model(&self) -> Option<&Instance> {
        match self {
            SearchOutcome::Found(m) => Some(m),
            _ => None,
        }
    }
}

struct Search<'a> {
    schema: &'a Schema,
    d: &'a [Td],
    d0: &'a Td,
    opts: &'a SearchOptions,
    rows: Vec<Vec<u32>>,
    candidates: usize,
    result: Option<Instance>,
    budget_hit: bool,
}

impl Search<'_> {
    /// Fills row `row` from column `col` onward, then recurses to the next
    /// row; at the leaf, tests the candidate instance.
    fn fill(&mut self, row: usize, col: usize, max_used: &mut Vec<u32>) -> bool {
        if self.result.is_some() || self.budget_hit {
            return false;
        }
        let arity = self.schema.arity();
        if col == arity {
            // Prune duplicate rows: a candidate with duplicates is
            // equivalent to a smaller one already examined.
            let this = &self.rows[row];
            if self.rows[..row].iter().any(|r| r == this) {
                return true;
            }
            if row + 1 == self.rows.len() {
                return self.test_candidate();
            }
            return self.fill(row + 1, 0, max_used);
        }
        // Canonical form: a value is either one already used in this column
        // or the next unused one.
        let limit = (max_used[col] + 1).min(self.opts.max_values_per_column as u32 - 1);
        for v in 0..=limit {
            self.rows[row][col] = v;
            let saved = max_used[col];
            if v > saved {
                max_used[col] = v;
            }
            let keep_going = self.fill(row, col + 1, max_used);
            max_used[col] = saved;
            if !keep_going {
                return false;
            }
        }
        true
    }

    fn test_candidate(&mut self) -> bool {
        self.candidates += 1;
        if self.candidates > self.opts.max_candidates {
            self.budget_hit = true;
            return false;
        }
        let inst = Instance::from_tuples(
            self.schema.clone(),
            self.rows.iter().map(|r| Tuple::from_raw(r.iter().copied())),
        )
        .expect("arity correct by construction");
        if find_violation(&inst, self.d0).is_some() && satisfies_all(&inst, self.d) {
            self.result = Some(inst);
            return false;
        }
        true
    }
}

/// Searches for an instance with at most `opts.max_rows` rows that
/// satisfies every member of `d` and violates `d0`.
pub fn search_countermodel(d: &[Td], d0: &Td, opts: &SearchOptions) -> SearchOutcome {
    let schema = d0.schema();
    let mut total_candidates = 0usize;
    for n_rows in 1..=opts.max_rows {
        let mut search = Search {
            schema,
            d,
            d0,
            opts,
            rows: vec![vec![0; schema.arity()]; n_rows],
            candidates: 0,
            result: None,
            budget_hit: false,
        };
        let mut max_used = vec![0u32; schema.arity()];
        // Row 0 in canonical form is all zeros except we still must explore
        // (first occurrence numbering makes row 0 = (0,0,…,0) always).
        search.fill(0, 0, &mut max_used);
        total_candidates += search.candidates;
        if let Some(m) = search.result {
            return SearchOutcome::Found(m);
        }
        if search.budget_hit {
            return SearchOutcome::ExhaustedBudget {
                candidates: total_candidates,
            };
        }
    }
    SearchOutcome::ExhaustedBounds {
        candidates: total_candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::satisfaction::satisfies;
    use crate::td::TdBuilder;

    fn schema() -> Schema {
        Schema::new("R", ["A", "B"]).unwrap()
    }

    #[test]
    fn finds_simple_countermodel() {
        // d0: R(a,b) & R(a',b') => R(a,b') — the cross product closure.
        // The empty premise set does not imply it; the 2-row instance
        // {(0,0),(1,1)} is the minimal countermodel.
        let d0 = TdBuilder::new(schema())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("d0")
            .unwrap();
        let outcome = search_countermodel(&[], &d0, &SearchOptions::default());
        let model = outcome.model().expect("countermodel must exist");
        assert_eq!(model.len(), 2);
        assert!(!satisfies(model, &d0));
    }

    #[test]
    fn respects_premises() {
        let schema3 = Schema::new("R", ["A", "B", "C"]).unwrap();
        // Premise: join on A (full TD).
        let d = TdBuilder::new(schema3.clone())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["a", "b", "c'"])
            .unwrap()
            .build("join-a")
            .unwrap();
        // Goal: join on B — not implied.
        let d0 = TdBuilder::new(schema3)
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a'", "b", "c'"])
            .unwrap()
            .conclusion(["a", "b", "c'"])
            .unwrap()
            .build("join-b")
            .unwrap();
        let outcome = search_countermodel(std::slice::from_ref(&d), &d0, &SearchOptions::default());
        let model = outcome.model().expect("countermodel must exist");
        assert!(satisfies(model, &d));
        assert!(!satisfies(model, &d0));
        // Minimal countermodel: two rows, same B, different A, different C.
        assert_eq!(model.len(), 2);
    }

    #[test]
    fn implied_dependency_has_no_countermodel_in_bounds() {
        // d implies itself: no countermodel can exist at any size.
        let d = TdBuilder::new(schema())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("d")
            .unwrap();
        let opts = SearchOptions {
            max_rows: 3,
            max_values_per_column: 3,
            ..Default::default()
        };
        let outcome = search_countermodel(std::slice::from_ref(&d), &d, &opts);
        assert!(matches!(outcome, SearchOutcome::ExhaustedBounds { .. }));
    }

    #[test]
    fn trivial_goal_never_refuted() {
        let d0 = TdBuilder::new(schema())
            .antecedent(["a", "b"])
            .unwrap()
            .conclusion(["a", "*"])
            .unwrap()
            .build("trivial")
            .unwrap();
        assert!(d0.is_trivial());
        let outcome = search_countermodel(&[], &d0, &SearchOptions::default());
        assert!(matches!(outcome, SearchOutcome::ExhaustedBounds { .. }));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let d0 = TdBuilder::new(schema())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("d0")
            .unwrap();
        // Premise set that the goal *is* implied by, with a candidate budget
        // too small to finish the bounds.
        let opts = SearchOptions {
            max_rows: 4,
            max_values_per_column: 4,
            max_candidates: 3,
        };
        let outcome = search_countermodel(std::slice::from_ref(&d0), &d0, &opts);
        assert!(matches!(outcome, SearchOutcome::ExhaustedBudget { .. }));
    }
}
