//! The equivalence-relation view of an instance.
//!
//! The paper never mentions attribute *values*: "No attribute values need be
//! mentioned explicitly in these diagrams, since they are all quantified;
//! only the pattern of equality among attribute values … \[is\] important."
//! Its part (B) model construction likewise specifies a universe of rows and,
//! for each attribute, an equivalence relation (`≈_{A′}`, `≈_{A″}`, `≈_E`,
//! `≈_{E′}`) on rows.
//!
//! [`EqInstance`] implements that view directly: `n` rows and one
//! [`UnionFind`] per attribute. Rows `r`, `s` *agree on attribute `A`*
//! exactly when they are in the same `A`-class. Converting to an
//! [`Instance`] labels each class with a fresh per-column value, which is a
//! lossless change of representation.

use crate::error::{CoreError, Result};
use crate::ids::{AttrId, RowId};
use crate::instance::Instance;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::union_find::UnionFind;

/// Rows plus one equivalence relation per attribute.
#[derive(Debug, Clone)]
pub struct EqInstance {
    schema: Schema,
    n_rows: usize,
    /// One union–find per column, each over `0..n_rows`.
    parts: Vec<UnionFind>,
}

impl EqInstance {
    /// Creates an instance with `n_rows` rows, all attributes initially
    /// holding only trivially (every class a singleton).
    pub fn new(schema: Schema, n_rows: usize) -> Self {
        let arity = schema.arity();
        Self {
            schema,
            n_rows,
            parts: (0..arity).map(|_| UnionFind::new(n_rows)).collect(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Appends a fresh row (a singleton class in every attribute) and
    /// returns its id.
    pub fn add_row(&mut self) -> RowId {
        for uf in &mut self.parts {
            uf.push();
        }
        let id = RowId::from(self.n_rows);
        self.n_rows += 1;
        id
    }

    fn check_row(&self, r: RowId) -> Result<()> {
        if r.index() < self.n_rows {
            Ok(())
        } else {
            Err(CoreError::RowOutOfRange {
                row: r.index(),
                len: self.n_rows,
            })
        }
    }

    /// Declares that rows `a` and `b` agree on attribute `col` (merging
    /// their classes). Returns `true` if the classes were distinct.
    ///
    /// # Errors
    ///
    /// Fails with [`CoreError::RowOutOfRange`] when either row id is out
    /// of range.
    pub fn merge(&mut self, col: AttrId, a: RowId, b: RowId) -> Result<bool> {
        self.check_row(a)?;
        self.check_row(b)?;
        Ok(self.parts[col.index()].union(a.index(), b.index()))
    }

    /// `true` if rows `a` and `b` agree on attribute `col`.
    pub fn same(&self, col: AttrId, a: RowId, b: RowId) -> bool {
        a.index() < self.n_rows
            && b.index() < self.n_rows
            && self.parts[col.index()].same_immutable(a.index(), b.index())
    }

    /// The classes of attribute `col`, each a sorted vector of row indices.
    pub fn classes(&self, col: AttrId) -> Vec<Vec<usize>> {
        self.parts[col.index()].classes()
    }

    /// Size of row `r`'s class under attribute `col`.
    pub fn class_size(&self, col: AttrId, r: RowId) -> usize {
        self.parts[col.index()].class_size(r.index())
    }

    /// Declares `col` *total*: all rows agree on it.
    pub fn make_total(&mut self, col: AttrId) {
        for i in 1..self.n_rows {
            self.parts[col.index()].union(0, i);
        }
    }

    /// Converts to the explicit-tuple view: each class of each attribute is
    /// labelled with a dense per-column value.
    pub fn to_instance(&self) -> Instance {
        let mut inst = Instance::new(self.schema.clone());
        let labels: Vec<Vec<u32>> = self.parts.iter().map(|uf| uf.dense_labels()).collect();
        for row in 0..self.n_rows {
            let tuple = Tuple::from_raw(labels.iter().map(|col_labels| col_labels[row]));
            inst.insert(tuple)
                .expect("arity is schema arity by construction");
        }
        inst
    }

    /// Builds the partition view from the explicit-tuple view: rows agree on
    /// an attribute exactly when their values there coincide.
    ///
    /// Note: `Instance` deduplicates tuples, so `from_instance(to_instance)`
    /// may have fewer rows than the original if two rows agreed everywhere.
    pub fn from_instance(inst: &Instance) -> Self {
        let mut eq = EqInstance::new(inst.schema().clone(), inst.len());
        for col in inst.schema().attr_ids() {
            let mut first_with: std::collections::HashMap<u32, usize> = Default::default();
            for (row, t) in inst.rows() {
                let v = t[col.index()].raw();
                match first_with.entry(v) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        eq.parts[col.index()].union(*e.get(), row.index());
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(row.index());
                    }
                }
            }
        }
        eq
    }

    /// All row ids.
    pub fn row_ids(&self) -> impl Iterator<Item = RowId> {
        (0..self.n_rows).map(RowId::from)
    }
}

impl std::fmt::Display for EqInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} [{} rows, partition view]",
            self.schema.summary(),
            self.n_rows
        )?;
        for (col, name) in self.schema.attrs() {
            let cls = self.classes(col);
            let nontrivial: Vec<&Vec<usize>> = cls.iter().filter(|c| c.len() > 1).collect();
            write!(f, "  {name}: ")?;
            if nontrivial.is_empty() {
                writeln!(f, "trivial")?;
            } else {
                for (i, c) in nontrivial.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(
                        f,
                        "{{{}}}",
                        c.iter()
                            .map(|r| r.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    )?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new("R", ["A", "B"]).unwrap()
    }

    #[test]
    fn merge_and_query() {
        let mut eq = EqInstance::new(schema(), 3);
        let (a, b) = (AttrId::new(0), AttrId::new(1));
        let (r0, r1, r2) = (RowId::new(0), RowId::new(1), RowId::new(2));
        assert!(!eq.same(a, r0, r1));
        assert!(eq.merge(a, r0, r1).unwrap());
        assert!(eq.same(a, r0, r1));
        assert!(!eq.same(b, r0, r1), "columns are independent");
        assert!(!eq.same(a, r1, r2));
        assert_eq!(eq.class_size(a, r0), 2);
    }

    #[test]
    fn row_bounds_checked() {
        let mut eq = EqInstance::new(schema(), 1);
        assert!(matches!(
            eq.merge(AttrId::new(0), RowId::new(0), RowId::new(5)),
            Err(CoreError::RowOutOfRange { .. })
        ));
        assert!(!eq.same(AttrId::new(0), RowId::new(0), RowId::new(5)));
    }

    #[test]
    fn add_row_extends_all_columns() {
        let mut eq = EqInstance::new(schema(), 1);
        let r1 = eq.add_row();
        assert_eq!(eq.len(), 2);
        assert!(!eq.same(AttrId::new(0), RowId::new(0), r1));
        eq.merge(AttrId::new(1), RowId::new(0), r1).unwrap();
        assert!(eq.same(AttrId::new(1), RowId::new(0), r1));
    }

    #[test]
    fn make_total() {
        let mut eq = EqInstance::new(schema(), 4);
        eq.make_total(AttrId::new(0));
        for i in 0..4 {
            for j in 0..4 {
                assert!(eq.same(AttrId::new(0), RowId::new(i), RowId::new(j)));
            }
        }
        assert!(!eq.same(AttrId::new(1), RowId::new(0), RowId::new(1)));
    }

    #[test]
    fn to_instance_preserves_agreement_pattern() {
        let mut eq = EqInstance::new(schema(), 3);
        eq.merge(AttrId::new(0), RowId::new(0), RowId::new(2))
            .unwrap();
        eq.merge(AttrId::new(1), RowId::new(1), RowId::new(2))
            .unwrap();
        let inst = eq.to_instance();
        assert_eq!(inst.len(), 3);
        let ts: Vec<Tuple> = inst.row_slices().map(Tuple::from_slice).collect();
        assert!(ts[0].agrees_on(&ts[2], AttrId::new(0)));
        assert!(!ts[0].agrees_on(&ts[1], AttrId::new(0)));
        assert!(ts[1].agrees_on(&ts[2], AttrId::new(1)));
        assert!(!ts[0].agrees_on(&ts[1], AttrId::new(1)));
    }

    #[test]
    fn roundtrip_through_instance() {
        let mut eq = EqInstance::new(schema(), 4);
        eq.merge(AttrId::new(0), RowId::new(0), RowId::new(1))
            .unwrap();
        eq.merge(AttrId::new(1), RowId::new(2), RowId::new(3))
            .unwrap();
        let back = EqInstance::from_instance(&eq.to_instance());
        assert_eq!(back.len(), 4);
        for col in [AttrId::new(0), AttrId::new(1)] {
            for i in 0..4u32 {
                for j in 0..4u32 {
                    assert_eq!(
                        eq.same(col, RowId::new(i), RowId::new(j)),
                        back.same(col, RowId::new(i), RowId::new(j)),
                        "agreement must be preserved at col {col} rows {i},{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn display_mentions_nontrivial_classes() {
        let mut eq = EqInstance::new(schema(), 3);
        eq.merge(AttrId::new(0), RowId::new(0), RowId::new(1))
            .unwrap();
        let s = eq.to_string();
        assert!(s.contains("A: {0,1}"));
        assert!(s.contains("B: trivial"));
    }
}
