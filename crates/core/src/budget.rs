//! The shared budget/cancellation substrate.
//!
//! Undecidability makes resource budgets load-bearing throughout this
//! workspace: every search — the chase, the BFS derivation search, the
//! backtracking finite-model search — must be able to stop early, and the
//! racing pipeline additionally needs *cooperative cancellation* so the
//! losing side of a race backs out once the winner has its certificate.
//! Before this module existed, each search carried its own ad-hoc copy of
//! the same three ingredients (a raw `AtomicBool`, a spend counter checked
//! against a cap, and a poll-cadence mask) and its own convention for
//! telling *cancelled* apart from *exhausted*. [`Cancellation`] and
//! [`Ticker`] centralize them:
//!
//! * [`Cancellation`] — a shareable one-shot flag. The thread that finds a
//!   certificate calls [`Cancellation::cancel`]; every other party polls
//!   [`Cancellation::is_cancelled`] at its own cadence. All operations are
//!   relaxed atomics: the flag carries no data, only "stop soon".
//! * [`Ticker`] — a spend counter bound to a cancellation token. Each
//!   [`Ticker::tick`] spends one unit of budget (a search node, a visited
//!   state, a fired trigger); the ticker refuses the unit once the limit
//!   is reached and observes the cancellation flag every `poll_mask + 1`
//!   units, so the atomic load stays off the hot path. When a ticker stops
//!   it records *why* — [`StopReason::Cancelled`] versus
//!   [`StopReason::Exhausted`] — which is exactly the distinction the
//!   pipeline's deterministic spend reports need: a cancelled spend is a
//!   lower bound (it depends on when the race was decided), an exhausted
//!   spend is exact.
//!
//! The consumers are spread across the workspace: the chase engine
//! ([`crate::chase::ChaseEngine`]) polls a token between rounds and
//! firings, `td_semigroup`'s derivation and model searches run their node
//! budgets through a [`Ticker`], and `td_reduction`'s racing pipeline and
//! batch worker pool share [`Cancellation`] tokens instead of raw atomics.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Thread-team sizing for the data-parallel phases of a search.
///
/// The knob every parallel phase in the workspace shares: semi-naive
/// trigger discovery in [`crate::chase::ChaseEngine`] partitions its delta
/// scan across a scoped team of this many workers. The contract is strict
/// determinism — a parallel run must produce byte-identical verdicts,
/// proofs, and transcripts to the sequential one (worker results are
/// merged in the sequential enumeration order), so this setting is purely
/// a wall-clock lever and defaults to [`Parallelism::Off`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Everything on the calling thread (the exact-compatibility
    /// baseline, and the differential oracle for the parallel paths).
    #[default]
    Off,
    /// A scoped team of `n` worker threads. `Threads(0)` and `Threads(1)`
    /// behave exactly like [`Parallelism::Off`].
    Threads(usize),
}

impl Parallelism {
    /// One worker per available core
    /// ([`std::thread::available_parallelism`]), falling back to `Off`
    /// when the count is unavailable.
    pub fn available() -> Self {
        match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => Parallelism::Threads(n.get()),
            _ => Parallelism::Off,
        }
    }

    /// The effective worker count: at least 1, even for `Threads(0)`.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Off => 1,
            Parallelism::Threads(n) => n.max(1),
        }
    }

    /// `true` when more than one worker would actually run.
    pub fn is_parallel(self) -> bool {
        self.workers() > 1
    }
}

/// A shareable, one-shot cooperative-cancellation token.
///
/// Cheap to poll (one relaxed load) and impossible to "un-cancel": once
/// flipped, every observer winds down. Create one per race or worker pool
/// and hand out shared references.
#[derive(Debug, Default)]
pub struct Cancellation(AtomicBool);

impl Cancellation {
    /// A fresh, un-cancelled token.
    pub const fn new() -> Self {
        Self(AtomicBool::new(false))
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once [`Cancellation::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A thread-safe cumulative spend meter.
///
/// Where a [`Ticker`] *limits* the spend of one search, a `Meter`
/// *accumulates* spend across many: a long-lived service charges every
/// finished request's spend to shared meters and reports the running
/// totals (for example `td_reduction::engine::EngineStats`). All
/// operations are relaxed atomics — the meter carries independent counts,
/// not synchronization.
///
/// Totals are monotone: there is no reset. A consumer that wants
/// per-interval numbers snapshots [`Meter::total`] and subtracts.
#[derive(Debug, Default)]
pub struct Meter(AtomicU64);

impl Meter {
    /// A fresh meter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Charges `units` of spend. Never blocks; wraps on `u64` overflow
    /// (unreachable for realistic workloads).
    pub fn add(&self, units: u64) {
        self.0.fetch_add(units, Ordering::Relaxed);
    }

    /// The cumulative total charged so far.
    pub fn total(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a [`Ticker`] stopped accepting spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The bound [`Cancellation`] token was observed at a poll point. The
    /// spend so far is a *lower bound*: an uncancelled run would have
    /// spent more.
    Cancelled,
    /// The ticker's own budget limit was reached. The spend is *exact*
    /// and reproducible.
    Exhausted,
}

/// A budgeted spend counter with cadenced cancellation polling.
///
/// One unit of spend is whatever the caller says it is — a BFS state, a
/// DFS node, a fired chase trigger. The ticker enforces a hard limit,
/// polls its [`Cancellation`] token every `poll_mask + 1` units, and
/// remembers which of the two stopped it first.
#[derive(Debug)]
pub struct Ticker<'a> {
    cancel: &'a Cancellation,
    limit: u64,
    poll_mask: u64,
    spent: u64,
    stop: Option<StopReason>,
}

impl<'a> Ticker<'a> {
    /// A ticker allowing up to `limit` units of spend, polling `cancel`
    /// whenever `spent & poll_mask == 0` (mask `0` polls on every tick;
    /// `0x3FF` polls every 1024 ticks — pick by how expensive a unit is
    /// relative to a relaxed atomic load).
    pub fn new(cancel: &'a Cancellation, limit: u64, poll_mask: u64) -> Self {
        Self {
            cancel,
            limit,
            poll_mask,
            spent: 0,
            stop: None,
        }
    }

    /// Spends one unit. Returns `false` — permanently, recording the
    /// [`StopReason`] — when the unit cannot be spent (the limit is
    /// reached) or the cancellation token was observed at this poll point
    /// (the unit *is* spent in that case; cancellation never un-counts
    /// work already done).
    #[inline]
    pub fn tick(&mut self) -> bool {
        if self.stop.is_some() {
            return false;
        }
        if self.spent >= self.limit {
            self.stop = Some(StopReason::Exhausted);
            return false;
        }
        self.spent += 1;
        if self.spent & self.poll_mask == 0 && self.cancel.is_cancelled() {
            self.stop = Some(StopReason::Cancelled);
            return false;
        }
        true
    }

    /// Checks the cancellation token without spending (for poll points
    /// that do no budgeted work, like dequeuing). Returns `false` once the
    /// ticker has stopped for any reason.
    #[inline]
    pub fn poll(&mut self) -> bool {
        if self.stop.is_some() {
            return false;
        }
        if self.cancel.is_cancelled() {
            self.stop = Some(StopReason::Cancelled);
            return false;
        }
        true
    }

    /// Units spent so far. Exact when the ticker ran to completion or
    /// exhausted its limit; a lower bound when it was cancelled.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Why the ticker stopped, if it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop
    }

    /// `true` once [`Ticker::tick`] or [`Ticker::poll`] has returned
    /// `false`.
    pub fn stopped(&self) -> bool {
        self.stop.is_some()
    }

    /// `true` when the stop was caused by the cancellation token.
    pub fn cancelled(&self) -> bool {
        self.stop == Some(StopReason::Cancelled)
    }

    /// `true` when the stop was caused by the spend limit.
    pub fn exhausted(&self) -> bool {
        self.stop == Some(StopReason::Exhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancellation_is_one_shot_and_shared() {
        let c = Cancellation::new();
        assert!(!c.is_cancelled());
        c.cancel();
        assert!(c.is_cancelled());
        c.cancel(); // idempotent
        assert!(c.is_cancelled());
    }

    #[test]
    fn ticker_exhausts_exactly_at_the_limit() {
        let c = Cancellation::new();
        let mut t = Ticker::new(&c, 3, 0);
        assert!(t.tick());
        assert!(t.tick());
        assert!(t.tick());
        assert_eq!(t.spent(), 3);
        assert!(!t.stopped());
        assert!(!t.tick(), "the fourth unit must be refused");
        assert_eq!(t.spent(), 3, "refused units are not counted");
        assert!(t.exhausted());
        assert!(!t.cancelled());
        assert!(!t.tick(), "stopped tickers stay stopped");
    }

    #[test]
    fn ticker_observes_cancellation_at_poll_cadence() {
        let c = Cancellation::new();
        // Mask 3: polls only when spent is a multiple of 4.
        let mut t = Ticker::new(&c, 1000, 3);
        c.cancel();
        assert!(t.tick(), "spent 1: off-cadence, flag unobserved");
        assert!(t.tick(), "spent 2: off-cadence");
        assert!(t.tick(), "spent 3: off-cadence");
        assert!(!t.tick(), "spent 4: poll point observes the flag");
        assert_eq!(t.spent(), 4);
        assert!(t.cancelled());
    }

    #[test]
    fn ticker_cancellation_spends_the_observing_unit() {
        let c = Cancellation::new();
        let mut t = Ticker::new(&c, 1000, 0);
        assert!(t.tick());
        c.cancel();
        assert!(!t.tick(), "poll-on-every-tick observes immediately");
        assert_eq!(t.spent(), 2, "the observing unit is still counted");
        assert!(t.cancelled());
        assert_eq!(t.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn poll_checks_without_spending() {
        let c = Cancellation::new();
        let mut t = Ticker::new(&c, 10, 0);
        assert!(t.poll());
        assert_eq!(t.spent(), 0);
        c.cancel();
        assert!(!t.poll());
        assert!(t.cancelled());
        assert_eq!(t.spent(), 0);
        assert!(!t.tick(), "a stopped ticker refuses further spend");
    }

    #[test]
    fn meter_accumulates_across_threads() {
        let m = Meter::new();
        assert_eq!(m.total(), 0);
        m.add(3);
        m.add(0);
        assert_eq!(m.total(), 3);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.add(2);
                    }
                });
            }
        });
        assert_eq!(m.total(), 3 + 4 * 1000 * 2);
    }

    #[test]
    fn parallelism_worker_counts_are_clamped() {
        assert_eq!(Parallelism::Off.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(1).workers(), 1);
        assert_eq!(Parallelism::Threads(4).workers(), 4);
        assert!(!Parallelism::Off.is_parallel());
        assert!(!Parallelism::Threads(1).is_parallel());
        assert!(Parallelism::Threads(2).is_parallel());
        assert_eq!(Parallelism::default(), Parallelism::Off);
        assert!(Parallelism::available().workers() >= 1);
    }

    #[test]
    fn zero_limit_refuses_immediately() {
        let c = Cancellation::new();
        let mut t = Ticker::new(&c, 0, 0);
        assert!(!t.tick());
        assert!(t.exhausted());
        assert_eq!(t.spent(), 0);
    }
}
