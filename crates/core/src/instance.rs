//! Relational instances: the explicit set-of-tuples view of a database.
//!
//! "A database is for our purposes simply a relational structure … assumed to
//! consist of a single relation R with a fixed number of columns." An
//! [`Instance`] is a duplicate-free, insertion-ordered set of [`Tuple`]s over
//! one [`Schema`]. It also hands out *fresh values* per column, which the
//! chase uses as labelled nulls.
//!
//! Every instance additionally maintains **per-column value indexes**: for
//! each column, a map from each value to the (insertion-ordered) list of rows
//! holding that value in that column. The indexes are updated incrementally
//! on [`Instance::insert`] and drive the planner of
//! [`crate::homomorphism::MatchStrategy::Indexed`], which replaces the
//! nested full scans of trigger discovery with index lookups.
//!
//! # Index freshness is an invariant by construction
//!
//! The index can only go stale if a stored tuple changes without going
//! through [`Instance::insert`] — and no such path exists: the tuple store
//! is private, every accessor returns shared references, and rows are never
//! removed or edited in place. The workspace's "mutation-heavy" operations
//! all rebuild instances row by row through `insert` rather than mutating
//! one: [`crate::eq_instance::EqInstance`] merges and its union–find
//! collapses happen in the partition view and only materialize via
//! [`crate::eq_instance::EqInstance::to_instance`] (a fresh instance);
//! [`crate::product::direct_product`] interns pair values into a fresh
//! instance; the chase (`crate::chase`) extends its state exclusively by
//! inserting conclusion rows with freshly drawn nulls — template
//! dependencies have no equality conclusions, so chasing never unifies two
//! existing values in place. [`Instance::index_is_consistent`] re-derives
//! the index from the tuple store so differential tests can audit the
//! invariant end to end.

use std::collections::{BTreeSet, HashMap};

use crate::error::{CoreError, Result};
use crate::ids::{AttrId, RowId, Value};
use crate::schema::Schema;
use crate::tuple::Tuple;

/// A finite (or finitely-materialized) database instance.
#[derive(Debug, Clone)]
pub struct Instance {
    schema: Schema,
    tuples: Vec<Tuple>,
    seen: HashMap<Tuple, RowId>,
    /// Per-column counter: the smallest value id that is guaranteed unused.
    next_value: Vec<u32>,
    /// Per-column index: value -> rows carrying that value in the column,
    /// in insertion order. Maintained incrementally by [`Instance::insert`].
    index: Vec<HashMap<Value, Vec<RowId>>>,
}

impl Instance {
    /// Creates an empty instance over `schema`.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        Self {
            schema,
            tuples: Vec::new(),
            seen: HashMap::new(),
            next_value: vec![0; arity],
            index: vec![HashMap::new(); arity],
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` if the instance holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts `tuple`, deduplicating. Returns the row id and whether the
    /// tuple was new.
    pub fn insert(&mut self, tuple: Tuple) -> Result<(RowId, bool)> {
        if tuple.arity() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        if let Some(&row) = self.seen.get(&tuple) {
            return Ok((row, false));
        }
        let row = RowId::from(self.tuples.len());
        for (col, v) in tuple.components() {
            let next = &mut self.next_value[col.index()];
            *next = (*next).max(v.raw().saturating_add(1));
            self.index[col.index()].entry(v).or_default().push(row);
        }
        self.seen.insert(tuple.clone(), row);
        self.tuples.push(tuple);
        Ok((row, true))
    }

    /// Convenience: inserts a tuple given raw `u32` value ids.
    pub fn insert_values(
        &mut self,
        values: impl IntoIterator<Item = u32>,
    ) -> Result<(RowId, bool)> {
        self.insert(Tuple::from_raw(values))
    }

    /// `true` if `tuple` is present.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.seen.contains_key(tuple)
    }

    /// The row id of `tuple`, if present.
    pub fn row_of(&self, tuple: &Tuple) -> Option<RowId> {
        self.seen.get(tuple).copied()
    }

    /// The tuple at `row`.
    pub fn get(&self, row: RowId) -> Result<&Tuple> {
        self.tuples
            .get(row.index())
            .ok_or(CoreError::RowOutOfRange {
                row: row.index(),
                len: self.tuples.len(),
            })
    }

    /// Iterates over rows in insertion order.
    pub fn rows(&self) -> impl Iterator<Item = (RowId, &Tuple)> {
        self.tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (RowId::from(i), t))
    }

    /// Iterates over tuples in insertion order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Draws a fresh value for column `col`: one that does not occur in the
    /// instance and will not be handed out again. The chase uses these as
    /// labelled nulls.
    pub fn fresh_value(&mut self, col: AttrId) -> Value {
        let next = &mut self.next_value[col.index()];
        let v = Value::new(*next);
        *next += 1;
        v
    }

    /// The rows whose `col` component equals `value`, in insertion order
    /// (the per-column index behind
    /// [`crate::homomorphism::MatchStrategy::Indexed`]). Returns the empty
    /// slice when the value does not occur in the column.
    pub fn rows_with(&self, col: AttrId, value: Value) -> &[RowId] {
        self.index[col.index()]
            .get(&value)
            .map_or(&[], Vec::as_slice)
    }

    /// Number of distinct values occurring in column `col` (the size of the
    /// column's active domain), straight from the index.
    pub fn distinct_values(&self, col: AttrId) -> usize {
        self.index[col.index()].len()
    }

    /// The set of values occurring in column `col` (the column's active
    /// domain).
    pub fn active_domain(&self, col: AttrId) -> BTreeSet<Value> {
        self.index[col.index()].keys().copied().collect()
    }

    /// Total number of distinct values over all columns (sum of per-column
    /// active-domain sizes; columns have disjoint domains).
    pub fn domain_size(&self) -> usize {
        self.schema
            .attr_ids()
            .map(|c| self.distinct_values(c))
            .sum()
    }

    /// Audits the per-column index invariant against the tuple store: every
    /// bucket must list exactly the rows carrying its value, in ascending
    /// insertion order (the order [`crate::homomorphism`]'s row-id caps rely
    /// on), the dedup map must mirror the store, and the fresh-value
    /// counters must clear every stored value. There is no mutation path
    /// that can break this (see the module docs) — the method exists so
    /// differential tests can *prove* that claim on unification-heavy
    /// workloads instead of trusting it.
    pub fn index_is_consistent(&self) -> bool {
        let mut expected: Vec<HashMap<Value, Vec<RowId>>> =
            vec![HashMap::new(); self.schema.arity()];
        for (row, tuple) in self.rows() {
            for (col, v) in tuple.components() {
                expected[col.index()].entry(v).or_default().push(row);
            }
        }
        expected == self.index
            && self.seen.len() == self.tuples.len()
            && self.rows().all(|(row, t)| self.seen.get(t) == Some(&row))
            && self.schema.attr_ids().all(|col| {
                self.index[col.index()]
                    .keys()
                    .all(|v| v.raw() < self.next_value[col.index()])
            })
    }

    /// Builds an instance from an iterator of tuples.
    pub fn from_tuples(schema: Schema, tuples: impl IntoIterator<Item = Tuple>) -> Result<Self> {
        let mut inst = Self::new(schema);
        for t in tuples {
            inst.insert(t)?;
        }
        Ok(inst)
    }
}

impl PartialEq for Instance {
    /// Set semantics: two instances are equal when they have the same schema
    /// and the same set of tuples, regardless of insertion order.
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.len() == other.len()
            && self.tuples.iter().all(|t| other.contains(t))
    }
}

impl Eq for Instance {}

impl std::fmt::Display for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} [{} rows]", self.schema.summary(), self.len())?;
        for (_, t) in self.rows() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new("R", ["A", "B", "C"]).unwrap()
    }

    #[test]
    fn insert_dedup_and_lookup() {
        let mut inst = Instance::new(schema());
        let (r0, fresh0) = inst.insert_values([1, 2, 3]).unwrap();
        let (r1, fresh1) = inst.insert_values([1, 2, 3]).unwrap();
        assert!(fresh0);
        assert!(!fresh1);
        assert_eq!(r0, r1);
        assert_eq!(inst.len(), 1);
        assert!(inst.contains(&Tuple::from_raw([1, 2, 3])));
        assert!(!inst.contains(&Tuple::from_raw([3, 2, 1])));
        assert_eq!(inst.row_of(&Tuple::from_raw([1, 2, 3])), Some(r0));
    }

    #[test]
    fn arity_checked() {
        let mut inst = Instance::new(schema());
        assert_eq!(
            inst.insert_values([1, 2]).unwrap_err(),
            CoreError::ArityMismatch {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn fresh_values_avoid_existing() {
        let mut inst = Instance::new(schema());
        inst.insert_values([5, 0, 0]).unwrap();
        let v = inst.fresh_value(AttrId::new(0));
        assert_eq!(v, Value::new(6));
        let v2 = inst.fresh_value(AttrId::new(0));
        assert_eq!(v2, Value::new(7));
        // Column 1 is independent.
        assert_eq!(inst.fresh_value(AttrId::new(1)), Value::new(1));
    }

    #[test]
    fn fresh_value_then_insert_does_not_collide() {
        let mut inst = Instance::new(schema());
        let v = inst.fresh_value(AttrId::new(2));
        assert_eq!(v, Value::new(0));
        inst.insert_values([0, 0, v.raw()]).unwrap();
        assert_eq!(inst.fresh_value(AttrId::new(2)), Value::new(1));
    }

    #[test]
    fn active_domain_and_size() {
        let mut inst = Instance::new(schema());
        inst.insert_values([1, 2, 3]).unwrap();
        inst.insert_values([1, 5, 3]).unwrap();
        let dom = inst.active_domain(AttrId::new(1));
        assert_eq!(dom.len(), 2);
        assert!(dom.contains(&Value::new(5)));
        assert_eq!(inst.domain_size(), 1 + 2 + 1);
    }

    #[test]
    fn column_index_tracks_inserts() {
        let mut inst = Instance::new(schema());
        assert!(inst.rows_with(AttrId::new(0), Value::new(1)).is_empty());
        let (r0, _) = inst.insert_values([1, 2, 3]).unwrap();
        let (r1, _) = inst.insert_values([1, 5, 3]).unwrap();
        let (r2, _) = inst.insert_values([2, 5, 3]).unwrap();
        // Duplicate insert must not duplicate index entries.
        inst.insert_values([1, 2, 3]).unwrap();
        assert_eq!(inst.rows_with(AttrId::new(0), Value::new(1)), &[r0, r1]);
        assert_eq!(inst.rows_with(AttrId::new(0), Value::new(2)), &[r2]);
        assert_eq!(inst.rows_with(AttrId::new(1), Value::new(5)), &[r1, r2]);
        assert_eq!(inst.rows_with(AttrId::new(2), Value::new(3)), &[r0, r1, r2]);
        assert!(inst.rows_with(AttrId::new(2), Value::new(9)).is_empty());
        assert_eq!(inst.distinct_values(AttrId::new(0)), 2);
        assert_eq!(inst.distinct_values(AttrId::new(2)), 1);
    }

    #[test]
    fn index_consistency_audit() {
        let mut inst = Instance::new(schema());
        assert!(inst.index_is_consistent(), "empty instance");
        for i in 0..10u32 {
            inst.insert_values([i % 3, i % 2, i]).unwrap();
            inst.insert_values([i % 3, i % 2, i]).unwrap(); // duplicate
            assert!(inst.index_is_consistent(), "after insert {i}");
        }
        // Fresh values bump the counters but leave the index untouched.
        inst.fresh_value(AttrId::new(1));
        assert!(inst.index_is_consistent());
        assert!(
            inst.clone().index_is_consistent(),
            "clones share the invariant"
        );
    }

    #[test]
    fn get_out_of_range() {
        let inst = Instance::new(schema());
        assert!(matches!(
            inst.get(RowId::new(0)),
            Err(CoreError::RowOutOfRange { .. })
        ));
    }

    #[test]
    fn from_tuples_roundtrip() {
        let ts = vec![Tuple::from_raw([0, 0, 0]), Tuple::from_raw([1, 1, 1])];
        let inst = Instance::from_tuples(schema(), ts.clone()).unwrap();
        assert_eq!(inst.len(), 2);
        let collected: Vec<Tuple> = inst.tuples().cloned().collect();
        assert_eq!(collected, ts);
    }

    #[test]
    fn display_lists_rows() {
        let mut inst = Instance::new(schema());
        inst.insert_values([1, 2, 3]).unwrap();
        let s = inst.to_string();
        assert!(s.contains("R(A, B, C)"));
        assert!(s.contains("(1, 2, 3)"));
    }
}
