//! Relational instances: the explicit set-of-tuples view of a database,
//! stored as a flat, arena-backed struct-of-arrays.
//!
//! "A database is for our purposes simply a relational structure … assumed to
//! consist of a single relation R with a fixed number of columns." An
//! [`Instance`] is a duplicate-free, insertion-ordered set of rows over one
//! [`Schema`]. It also hands out *fresh values* per column, which the chase
//! uses as labelled nulls.
//!
//! # Arena layout
//!
//! All rows live in **one contiguous `Vec<Value>`**, strided by the schema
//! arity: row `r` occupies `store[r·arity .. (r+1)·arity]` and is handed out
//! as a borrowed `&[Value]` slice ([`Instance::row`]) — no per-row heap
//! allocation, no pointer chasing, and row iteration is a linear scan of one
//! allocation:
//!
//! ```text
//! store:  | r0c0 r0c1 r0c2 | r1c0 r1c1 r1c2 | r2c0 r2c1 r2c2 | …
//!           └── row 0 ────┘  └── row 1 ────┘  └── row 2 ────┘
//! ```
//!
//! Deduplication is **slice-keyed**: an open-addressing table maps the hash
//! of a row's value slice to its [`RowId`], comparing candidate slices
//! directly against the arena — probing never clones a row, so the hot
//! duplicate-insert path of the chase does no allocation at all.
//!
//! # Dense per-column value indexes
//!
//! Every instance maintains, per column, a bucket vector indexed *directly
//! by value id*: `index[col][v]` is the insertion-ordered list of rows whose
//! `col` component is value `v` ([`Instance::rows_with`]). Addressing by
//! value id (rather than hashing the value) is sound because value ids are
//! **dense per column** in every workload of this workspace: the
//! `next_value` counter tracks the smallest unused id, fresh nulls are drawn
//! from it, and the parser, `EqInstance` materialization and product
//! interning all allocate ids `0, 1, 2, …` per column. Out-of-range lookups
//! simply return the empty slice. The flip side of dense addressing is
//! that a sparse insert costs **O(max value id) memory in that column**
//! (one empty bucket per skipped id): callers minting their own raw ids
//! must keep them dense per column — inserting id `4_000_000_000` into a
//! fresh column allocates four billion empty buckets, where the old
//! hash-map index would have allocated one entry. The indexes drive the
//! planner of [`crate::homomorphism::MatchStrategy::Indexed`] and are
//! updated incrementally on [`Instance::insert`].
//!
//! # Index freshness is an invariant by construction
//!
//! The index can only go stale if a stored row changes without going
//! through [`Instance::insert`] — and no such path exists: the arena is
//! private, every accessor returns shared slices, and rows are never
//! removed or edited in place. The workspace's "mutation-heavy" operations
//! all rebuild instances row by row through `insert` rather than mutating
//! one: [`crate::eq_instance::EqInstance`] merges and its union–find
//! collapses happen in the partition view and only materialize via
//! [`crate::eq_instance::EqInstance::to_instance`] (a fresh instance);
//! [`crate::product::direct_product`] interns pair values into a fresh
//! instance; the chase (`crate::chase`) extends its state exclusively by
//! inserting conclusion rows with freshly drawn nulls — template
//! dependencies have no equality conclusions, so chasing never unifies two
//! existing values in place. [`Instance::index_is_consistent`] re-derives
//! the index from the arena so differential tests can audit the invariant
//! end to end.

use std::collections::BTreeSet;

use crate::error::{CoreError, Result};
use crate::ids::{AttrId, RowId, Value};
use crate::schema::Schema;
use crate::tuple::{fmt_row, Tuple};

/// Slice-keyed dedup table: open addressing from row-slice hashes to row
/// ids, with probes compared directly against the arena (no owned keys).
/// Row ids are stored `+1` so `0` can mark an empty slot; rows are never
/// removed, so there are no tombstones.
#[derive(Debug, Clone)]
struct RowTable {
    slots: Vec<u32>,
    len: usize,
}

/// Multiplicative mix over the row's value ids; the per-word multiply and
/// xor-shift spread dense ids (the common case) across the table.
fn hash_row(values: &[Value]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for v in values {
        h = (h ^ u64::from(v.raw())).wrapping_mul(0xA24B_AED4_963E_E407);
        h ^= h >> 29;
    }
    h
}

impl RowTable {
    const MIN_SLOTS: usize = 16;

    fn new() -> Self {
        Self {
            slots: vec![0; Self::MIN_SLOTS],
            len: 0,
        }
    }

    /// The arena slice of stored row `r` (slot payload minus one).
    #[inline]
    fn stored(store: &[Value], arity: usize, slot: u32) -> &[Value] {
        let r = (slot - 1) as usize;
        &store[r * arity..(r + 1) * arity]
    }

    /// Finds `needle`'s row id, comparing probed slots against the arena.
    /// A miss returns the needle's hash so the follow-up
    /// [`RowTable::insert_new`] does not have to hash and probe again.
    fn lookup(&self, store: &[Value], arity: usize, needle: &[Value]) -> Result<RowId, u64> {
        let hash = hash_row(needle);
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            match self.slots[i] {
                0 => return Err(hash),
                slot => {
                    if Self::stored(store, arity, slot) == needle {
                        return Ok(RowId::from((slot - 1) as usize));
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Registers freshly appended row `row` under its precomputed `hash`
    /// (from the [`RowTable::lookup`] miss; the caller has verified the
    /// row is absent and already pushed its values into the arena).
    fn insert_new(&mut self, store: &[Value], arity: usize, row: RowId, hash: u64) {
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow(store, arity);
        }
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        while self.slots[i] != 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = row.raw() + 1;
        self.len += 1;
    }

    /// Doubles the table, rehashing every stored row from the arena.
    fn grow(&mut self, store: &[Value], arity: usize) {
        let new_cap = (self.slots.len() * 2).max(Self::MIN_SLOTS);
        let mut slots = vec![0u32; new_cap];
        let mask = new_cap - 1;
        for &slot in self.slots.iter().filter(|&&s| s != 0) {
            let mut i = hash_row(Self::stored(store, arity, slot)) as usize & mask;
            while slots[i] != 0 {
                i = (i + 1) & mask;
            }
            slots[i] = slot;
        }
        self.slots = slots;
    }
}

/// A finite (or finitely-materialized) database instance over a flat
/// arena (see the module docs for the layout).
#[derive(Debug, Clone)]
pub struct Instance {
    schema: Schema,
    /// Cached `schema.arity()` — the arena stride.
    arity: usize,
    /// The row arena: `arity` values per row, rows back to back.
    store: Vec<Value>,
    /// Slice-keyed dedup: row slice (by hash + arena comparison) → row.
    seen: RowTable,
    /// Per-column counter: the smallest value id that is guaranteed unused.
    next_value: Vec<u32>,
    /// Per-column dense index: `index[col][v]` lists the rows whose `col`
    /// component is value `v`, in insertion order. Maintained incrementally
    /// by [`Instance::insert`].
    index: Vec<Vec<Vec<RowId>>>,
    /// Per-column count of non-empty index buckets (= distinct values).
    distinct: Vec<usize>,
}

impl Instance {
    /// Creates an empty instance over `schema`.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        Self {
            schema,
            arity,
            store: Vec::new(),
            seen: RowTable::new(),
            next_value: vec![0; arity],
            index: vec![Vec::new(); arity],
            distinct: vec![0; arity],
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of (distinct) rows.
    pub fn len(&self) -> usize {
        self.store.len() / self.arity
    }

    /// `true` if the instance holds no rows.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Releases spare capacity in the arena and its indexes. The chase
    /// grows these geometrically; a snapshot parked in a long-lived cache
    /// (an instance is snapshotted by plain [`Clone`] — the arena layout
    /// is flat, so a clone is a handful of `memcpy`s) should not pin the
    /// growth slack. The dedup table keeps its capacity: it is sized by
    /// load factor, and shrinking it would force a rehash on resume.
    pub fn shrink_to_fit(&mut self) {
        self.store.shrink_to_fit();
        for col in &mut self.index {
            col.shrink_to_fit();
            for bucket in col {
                bucket.shrink_to_fit();
            }
        }
    }

    /// Inserts a row given as a value slice, deduplicating against the
    /// arena without copying. Returns the row id and whether the row was
    /// new. This is the allocation-free hot path behind every other insert
    /// entry point.
    ///
    /// # Errors
    ///
    /// Fails with [`CoreError::ArityMismatch`] when `values.len()` is not
    /// the instance's arity.
    pub fn insert_slice(&mut self, values: &[Value]) -> Result<(RowId, bool)> {
        if values.len() != self.arity {
            return Err(CoreError::ArityMismatch {
                expected: self.arity,
                got: values.len(),
            });
        }
        let hash = match self.seen.lookup(&self.store, self.arity, values) {
            Ok(row) => return Ok((row, false)),
            Err(hash) => hash,
        };
        let row = RowId::from(self.len());
        self.store.extend_from_slice(values);
        for (col, &v) in values.iter().enumerate() {
            let next = &mut self.next_value[col];
            *next = (*next).max(v.raw().saturating_add(1));
            let buckets = &mut self.index[col];
            let vi = v.index();
            if buckets.len() <= vi {
                buckets.resize_with(vi + 1, Vec::new);
            }
            if buckets[vi].is_empty() {
                self.distinct[col] += 1;
            }
            buckets[vi].push(row);
        }
        self.seen.insert_new(&self.store, self.arity, row, hash);
        Ok((row, true))
    }

    /// Inserts `tuple`, deduplicating. Returns the row id and whether the
    /// row was new.
    ///
    /// # Errors
    ///
    /// Fails with [`CoreError::ArityMismatch`] when the tuple's arity is
    /// not the instance's.
    pub fn insert(&mut self, tuple: Tuple) -> Result<(RowId, bool)> {
        self.insert_slice(tuple.values())
    }

    /// Convenience: inserts a row given raw `u32` value ids.
    ///
    /// # Errors
    ///
    /// Fails with [`CoreError::ArityMismatch`] when the number of values
    /// is not the instance's arity.
    pub fn insert_values(
        &mut self,
        values: impl IntoIterator<Item = u32>,
    ) -> Result<(RowId, bool)> {
        let vals: Vec<Value> = values.into_iter().map(Value::new).collect();
        self.insert_slice(&vals)
    }

    /// `true` if the row with these values is present.
    pub fn contains_slice(&self, values: &[Value]) -> bool {
        self.row_of_slice(values).is_some()
    }

    /// `true` if `tuple` is present.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.contains_slice(tuple.values())
    }

    /// The row id of the row with these values, if present.
    pub fn row_of_slice(&self, values: &[Value]) -> Option<RowId> {
        if values.len() != self.arity {
            return None;
        }
        self.seen.lookup(&self.store, self.arity, values).ok()
    }

    /// The row id of `tuple`, if present.
    pub fn row_of(&self, tuple: &Tuple) -> Option<RowId> {
        self.row_of_slice(tuple.values())
    }

    /// The value slice of `row`, checked.
    ///
    /// # Errors
    ///
    /// Fails with [`CoreError::RowOutOfRange`] when `row` is not a row of
    /// this instance.
    pub fn get(&self, row: RowId) -> Result<&[Value]> {
        let r = row.index();
        if r < self.len() {
            Ok(&self.store[r * self.arity..(r + 1) * self.arity])
        } else {
            Err(CoreError::RowOutOfRange {
                row: r,
                len: self.len(),
            })
        }
    }

    /// The value slice of `row` (the arena window `[row·arity, (row+1)·arity)`).
    ///
    /// # Panics
    /// Panics if `row` is out of range; hot paths that hold row ids from
    /// [`Instance::rows_with`] or delta ranges use this directly.
    #[inline]
    pub fn row(&self, row: RowId) -> &[Value] {
        let r = row.index();
        &self.store[r * self.arity..(r + 1) * self.arity]
    }

    /// Iterates over rows in insertion order, as borrowed arena slices.
    pub fn rows(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.store
            .chunks_exact(self.arity)
            .enumerate()
            .map(|(i, s)| (RowId::from(i), s))
    }

    /// Iterates over row slices in insertion order.
    pub fn row_slices(&self) -> impl Iterator<Item = &[Value]> {
        self.store.chunks_exact(self.arity)
    }

    /// Draws a fresh value for column `col`: one that does not occur in the
    /// instance and will not be handed out again. The chase uses these as
    /// labelled nulls.
    pub fn fresh_value(&mut self, col: AttrId) -> Value {
        let next = &mut self.next_value[col.index()];
        let v = Value::new(*next);
        *next += 1;
        v
    }

    /// The rows whose `col` component equals `value`, in insertion order —
    /// one bounds check and one array index into the dense per-column
    /// bucket vector (the index behind
    /// [`crate::homomorphism::MatchStrategy::Indexed`]). Returns the empty
    /// slice when the value does not occur in the column.
    #[inline]
    pub fn rows_with(&self, col: AttrId, value: Value) -> &[RowId] {
        self.index[col.index()]
            .get(value.index())
            .map_or(&[], Vec::as_slice)
    }

    /// Number of distinct values occurring in column `col` (the size of the
    /// column's active domain), tracked incrementally.
    pub fn distinct_values(&self, col: AttrId) -> usize {
        self.distinct[col.index()]
    }

    /// The set of values occurring in column `col` (the column's active
    /// domain).
    pub fn active_domain(&self, col: AttrId) -> BTreeSet<Value> {
        self.index[col.index()]
            .iter()
            .enumerate()
            .filter(|(_, bucket)| !bucket.is_empty())
            .map(|(v, _)| Value::new(v as u32))
            .collect()
    }

    /// Total number of distinct values over all columns (sum of per-column
    /// active-domain sizes; columns have disjoint domains).
    pub fn domain_size(&self) -> usize {
        self.distinct.iter().sum()
    }

    /// Audits the storage invariants against the arena: every dense bucket
    /// must list exactly the rows carrying its value, in ascending
    /// insertion order (the order [`crate::homomorphism`]'s row-id caps
    /// rely on), the distinct-value counters must match, the slice-keyed
    /// dedup table must mirror the arena, and the fresh-value counters
    /// must clear every stored value. There is no mutation path that can
    /// break this (see the module docs) — the method exists so
    /// differential tests can *prove* that claim on unification-heavy
    /// workloads instead of trusting it.
    pub fn index_is_consistent(&self) -> bool {
        // Re-derive the dense index from the arena.
        let mut expected: Vec<Vec<Vec<RowId>>> = vec![Vec::new(); self.arity];
        for (row, values) in self.rows() {
            for (col, &v) in values.iter().enumerate() {
                let buckets = &mut expected[col];
                if buckets.len() <= v.index() {
                    buckets.resize_with(v.index() + 1, Vec::new);
                }
                buckets[v.index()].push(row);
            }
        }
        let buckets_match = (0..self.arity).all(|col| {
            let got = &self.index[col];
            let want = &expected[col];
            // Trailing all-empty buckets are representationally irrelevant.
            let longest = got.len().max(want.len());
            (0..longest).all(|v| {
                let g = got.get(v).map_or(&[][..], Vec::as_slice);
                let w = want.get(v).map_or(&[][..], Vec::as_slice);
                g == w
            })
        });
        buckets_match
            && (0..self.arity).all(|col| {
                self.distinct[col] == expected[col].iter().filter(|b| !b.is_empty()).count()
            })
            && self.seen.len == self.len()
            && self
                .rows()
                .all(|(row, values)| self.row_of_slice(values) == Some(row))
            && (0..self.arity).all(|col| {
                self.index[col]
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| !b.is_empty())
                    .all(|(v, _)| (v as u32) < self.next_value[col])
            })
    }

    /// Builds an instance from an iterator of tuples.
    ///
    /// # Errors
    ///
    /// Fails when a tuple's arity differs from the schema's.
    pub fn from_tuples(schema: Schema, tuples: impl IntoIterator<Item = Tuple>) -> Result<Self> {
        let mut inst = Self::new(schema);
        for t in tuples {
            inst.insert(t)?;
        }
        Ok(inst)
    }
}

impl PartialEq for Instance {
    /// Set semantics: two instances are equal when they have the same schema
    /// and the same set of rows, regardless of insertion order.
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.len() == other.len()
            && self.row_slices().all(|s| other.contains_slice(s))
    }
}

impl Eq for Instance {}

impl std::fmt::Display for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} [{} rows]", self.schema.summary(), self.len())?;
        for s in self.row_slices() {
            write!(f, "  ")?;
            fmt_row(f, s)?;
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new("R", ["A", "B", "C"]).unwrap()
    }

    #[test]
    fn insert_dedup_and_lookup() {
        let mut inst = Instance::new(schema());
        let (r0, fresh0) = inst.insert_values([1, 2, 3]).unwrap();
        let (r1, fresh1) = inst.insert_values([1, 2, 3]).unwrap();
        assert!(fresh0);
        assert!(!fresh1);
        assert_eq!(r0, r1);
        assert_eq!(inst.len(), 1);
        assert!(inst.contains(&Tuple::from_raw([1, 2, 3])));
        assert!(!inst.contains(&Tuple::from_raw([3, 2, 1])));
        assert_eq!(inst.row_of(&Tuple::from_raw([1, 2, 3])), Some(r0));
    }

    #[test]
    fn arity_checked() {
        let mut inst = Instance::new(schema());
        assert_eq!(
            inst.insert_values([1, 2]).unwrap_err(),
            CoreError::ArityMismatch {
                expected: 3,
                got: 2
            }
        );
        // Lookups with the wrong arity are a clean miss, not a panic.
        assert!(!inst.contains_slice(&[Value::new(1)]));
    }

    #[test]
    fn arena_rows_are_contiguous_slices() {
        let mut inst = Instance::new(schema());
        let (r0, _) = inst.insert_values([1, 2, 3]).unwrap();
        let (r1, _) = inst.insert_values([4, 5, 6]).unwrap();
        assert_eq!(inst.row(r0), &[Value::new(1), Value::new(2), Value::new(3)]);
        assert_eq!(inst.row(r1), &[Value::new(4), Value::new(5), Value::new(6)]);
        let all: Vec<&[Value]> = inst.row_slices().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], inst.row(r0));
    }

    #[test]
    fn dedup_survives_table_growth() {
        // Push far past the initial table capacity; every row must stay
        // findable and duplicates must keep deduplicating.
        let mut inst = Instance::new(schema());
        for i in 0..500u32 {
            let (_, fresh) = inst.insert_values([i, i / 2, i / 3]).unwrap();
            assert!(fresh);
        }
        assert_eq!(inst.len(), 500);
        for i in 0..500u32 {
            let (_, fresh) = inst.insert_values([i, i / 2, i / 3]).unwrap();
            assert!(!fresh, "row {i} must be a duplicate");
        }
        assert_eq!(inst.len(), 500);
        assert!(inst.index_is_consistent());
    }

    #[test]
    fn fresh_values_avoid_existing() {
        let mut inst = Instance::new(schema());
        inst.insert_values([5, 0, 0]).unwrap();
        let v = inst.fresh_value(AttrId::new(0));
        assert_eq!(v, Value::new(6));
        let v2 = inst.fresh_value(AttrId::new(0));
        assert_eq!(v2, Value::new(7));
        // Column 1 is independent.
        assert_eq!(inst.fresh_value(AttrId::new(1)), Value::new(1));
    }

    #[test]
    fn fresh_value_then_insert_does_not_collide() {
        let mut inst = Instance::new(schema());
        let v = inst.fresh_value(AttrId::new(2));
        assert_eq!(v, Value::new(0));
        inst.insert_values([0, 0, v.raw()]).unwrap();
        assert_eq!(inst.fresh_value(AttrId::new(2)), Value::new(1));
    }

    #[test]
    fn active_domain_and_size() {
        let mut inst = Instance::new(schema());
        inst.insert_values([1, 2, 3]).unwrap();
        inst.insert_values([1, 5, 3]).unwrap();
        let dom = inst.active_domain(AttrId::new(1));
        assert_eq!(dom.len(), 2);
        assert!(dom.contains(&Value::new(5)));
        assert_eq!(inst.domain_size(), 1 + 2 + 1);
    }

    #[test]
    fn column_index_tracks_inserts() {
        let mut inst = Instance::new(schema());
        assert!(inst.rows_with(AttrId::new(0), Value::new(1)).is_empty());
        let (r0, _) = inst.insert_values([1, 2, 3]).unwrap();
        let (r1, _) = inst.insert_values([1, 5, 3]).unwrap();
        let (r2, _) = inst.insert_values([2, 5, 3]).unwrap();
        // Duplicate insert must not duplicate index entries.
        inst.insert_values([1, 2, 3]).unwrap();
        assert_eq!(inst.rows_with(AttrId::new(0), Value::new(1)), &[r0, r1]);
        assert_eq!(inst.rows_with(AttrId::new(0), Value::new(2)), &[r2]);
        assert_eq!(inst.rows_with(AttrId::new(1), Value::new(5)), &[r1, r2]);
        assert_eq!(inst.rows_with(AttrId::new(2), Value::new(3)), &[r0, r1, r2]);
        assert!(inst.rows_with(AttrId::new(2), Value::new(9)).is_empty());
        assert_eq!(inst.distinct_values(AttrId::new(0)), 2);
        assert_eq!(inst.distinct_values(AttrId::new(2)), 1);
    }

    #[test]
    fn index_consistency_audit() {
        let mut inst = Instance::new(schema());
        assert!(inst.index_is_consistent(), "empty instance");
        for i in 0..10u32 {
            inst.insert_values([i % 3, i % 2, i]).unwrap();
            inst.insert_values([i % 3, i % 2, i]).unwrap(); // duplicate
            assert!(inst.index_is_consistent(), "after insert {i}");
        }
        // Fresh values bump the counters but leave the index untouched.
        inst.fresh_value(AttrId::new(1));
        assert!(inst.index_is_consistent());
        assert!(
            inst.clone().index_is_consistent(),
            "clones share the invariant"
        );
    }

    #[test]
    fn get_out_of_range() {
        let inst = Instance::new(schema());
        assert!(matches!(
            inst.get(RowId::new(0)),
            Err(CoreError::RowOutOfRange { .. })
        ));
    }

    #[test]
    fn from_tuples_roundtrip() {
        let ts = vec![Tuple::from_raw([0, 0, 0]), Tuple::from_raw([1, 1, 1])];
        let inst = Instance::from_tuples(schema(), ts.clone()).unwrap();
        assert_eq!(inst.len(), 2);
        let collected: Vec<Tuple> = inst.row_slices().map(Tuple::from_slice).collect();
        assert_eq!(collected, ts);
    }

    #[test]
    fn display_lists_rows() {
        let mut inst = Instance::new(schema());
        inst.insert_values([1, 2, 3]).unwrap();
        let s = inst.to_string();
        assert!(s.contains("R(A, B, C)"));
        assert!(s.contains("(1, 2, 3)"));
    }
}
