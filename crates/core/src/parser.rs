//! A small line-oriented text format for schemas, dependencies and
//! instances.
//!
//! ```text
//! # The garment database of the paper's introduction.
//! schema R(SUPPLIER, STYLE, SIZE)
//!
//! td fig1: (a, b, c) (a, b2, c2) -> (*, b, c2)
//! eid both-sizes: (a, b, c) (a, b2, c2) -> (x, b, c) (x, b, c2)
//!
//! row (stlaurent, dress, s10)
//! row (bvd, brief, s36)
//! ```
//!
//! * `schema` must appear before any `td`, `eid` or `row` line.
//! * Dependency names are unique across `td` and `eid` lines; duplicates
//!   are rejected with a positioned error.
//! * Variable tokens `*` and `_` are anonymous (fresh each occurrence);
//!   in conclusions they denote existentially quantified components.
//! * Variable scope is per dependency; the typing restriction (one name,
//!   one column) is enforced.
//! * `row` values are symbolic names, interned per column; duplicate rows
//!   are deduplicated (instances have set semantics).

use std::collections::HashMap;

use crate::eid::Eid;
use crate::error::{CoreError, Result};
use crate::ids::Value;
use crate::instance::Instance;
use crate::schema::Schema;
use crate::td::{Td, TdBuilder, TdRow};
use crate::tuple::Tuple;

/// Everything a parsed file contains.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// The declared schema.
    pub schema: Schema,
    /// Template dependencies, in declaration order.
    pub tds: Vec<Td>,
    /// EIDs, in declaration order.
    pub eids: Vec<Eid>,
    /// The instance assembled from `row` lines.
    pub instance: Instance,
    /// Per-column interning table used for `row` values.
    pub value_names: Vec<HashMap<String, Value>>,
}

fn err(line: usize, msg: impl Into<String>) -> CoreError {
    CoreError::Parse {
        line,
        msg: msg.into(),
    }
}

/// Splits `(a, b) (c, d)`-style text into tuples of tokens.
fn parse_tuples(text: &str, line: usize) -> Result<Vec<Vec<String>>> {
    let mut tuples = Vec::new();
    let mut chars = text.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        match chars.peek() {
            None => break,
            Some('(') => {
                chars.next();
            }
            Some(c) => {
                return Err(err(line, format!("expected `(`, found `{c}`")));
            }
        }
        let mut tuple = Vec::new();
        let mut token = String::new();
        let mut closed = false;
        for c in chars.by_ref() {
            match c {
                ')' => {
                    closed = true;
                    break;
                }
                ',' => {
                    let t = token.trim();
                    if t.is_empty() {
                        return Err(err(line, "empty component in tuple"));
                    }
                    tuple.push(t.to_owned());
                    token.clear();
                }
                c => token.push(c),
            }
        }
        if !closed {
            return Err(err(line, "unterminated tuple: missing `)`"));
        }
        let t = token.trim();
        if t.is_empty() {
            return Err(err(line, "empty component in tuple"));
        }
        tuple.push(t.to_owned());
        tuples.push(tuple);
    }
    Ok(tuples)
}

/// Parses a `schema R(A, B, C)` declaration body (after the keyword).
fn parse_schema(body: &str, line: usize) -> Result<Schema> {
    let open = body
        .find('(')
        .ok_or_else(|| err(line, "schema needs `Name(Attr, …)`"))?;
    let close = body
        .rfind(')')
        .ok_or_else(|| err(line, "schema declaration missing `)`"))?;
    if close < open {
        return Err(err(line, "mismatched parentheses in schema"));
    }
    let relation = body[..open].trim();
    if relation.is_empty() {
        return Err(err(line, "schema needs a relation name"));
    }
    let attrs: Vec<&str> = body[open + 1..close].split(',').map(str::trim).collect();
    if attrs.iter().any(|a| a.is_empty()) {
        return Err(err(line, "empty attribute name in schema"));
    }
    Schema::new(relation, attrs).map_err(|e| err(line, e.to_string()))
}

/// Splits a dependency body `name: tuples -> tuples`.
fn split_dependency(body: &str, line: usize) -> Result<(String, &str, &str)> {
    let colon = body
        .find(':')
        .ok_or_else(|| err(line, "dependency needs `name: … -> …`"))?;
    let name = body[..colon].trim();
    if name.is_empty() {
        return Err(err(line, "dependency needs a nonempty name"));
    }
    let rest = &body[colon + 1..];
    let arrow = rest
        .find("->")
        .ok_or_else(|| err(line, "dependency needs `->`"))?;
    Ok((name.to_owned(), &rest[..arrow], &rest[arrow + 2..]))
}

/// Parses an entire file.
///
/// Dependency names (`td` and `eid` alike — they share a namespace) must
/// be unique: lookups by name would otherwise resolve to an arbitrary
/// entry, so a duplicate is rejected with a positioned error naming the
/// first declaration. Duplicate `row` tuples are deduplicated (instances
/// have set semantics; [`Instance::insert`] drops repeats), so the parsed
/// instance's length counts distinct rows only.
pub fn parse(text: &str) -> Result<ParsedFile> {
    let mut schema: Option<Schema> = None;
    let mut tds = Vec::new();
    let mut eids = Vec::new();
    let mut rows: Vec<(usize, Vec<String>)> = Vec::new();
    // Dependency name -> line of first declaration, for duplicate errors.
    let mut dep_names: HashMap<String, usize> = HashMap::new();
    let mut check_dep_name = |name: &str, line_no: usize| match dep_names.entry(name.to_owned()) {
        std::collections::hash_map::Entry::Occupied(first) => Err(err(
            line_no,
            format!(
                "duplicate dependency name `{name}` (first declared on line {})",
                first.get()
            ),
        )),
        std::collections::hash_map::Entry::Vacant(slot) => {
            slot.insert(line_no);
            Ok(())
        }
    };

    for (ix, raw_line) in text.lines().enumerate() {
        let line_no = ix + 1;
        let line = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, body) = match line.split_once(char::is_whitespace) {
            Some((k, b)) => (k, b.trim()),
            None => (line, ""),
        };
        match keyword {
            "schema" => {
                if schema.is_some() {
                    return Err(err(line_no, "duplicate schema declaration"));
                }
                schema = Some(parse_schema(body, line_no)?);
            }
            "td" => {
                let schema = schema
                    .as_ref()
                    .ok_or_else(|| err(line_no, "`td` before `schema`"))?;
                let (name, ante, concl) = split_dependency(body, line_no)?;
                check_dep_name(&name, line_no)?;
                let ante_tuples = parse_tuples(ante, line_no)?;
                let concl_tuples = parse_tuples(concl, line_no)?;
                if concl_tuples.len() != 1 {
                    return Err(err(
                        line_no,
                        format!(
                            "a td has exactly one conclusion tuple, found {} \
                             (use `eid` for conjunctions)",
                            concl_tuples.len()
                        ),
                    ));
                }
                let mut builder = TdBuilder::new(schema.clone());
                for t in &ante_tuples {
                    builder = builder
                        .antecedent(t.iter().map(String::as_str))
                        .map_err(|e| err(line_no, e.to_string()))?;
                }
                builder = builder
                    .conclusion(concl_tuples[0].iter().map(String::as_str))
                    .map_err(|e| err(line_no, e.to_string()))?;
                tds.push(
                    builder
                        .build(name)
                        .map_err(|e| err(line_no, e.to_string()))?,
                );
            }
            "eid" => {
                let schema = schema
                    .as_ref()
                    .ok_or_else(|| err(line_no, "`eid` before `schema`"))?;
                let (name, ante, concl) = split_dependency(body, line_no)?;
                check_dep_name(&name, line_no)?;
                let ante_tuples = parse_tuples(ante, line_no)?;
                let concl_tuples = parse_tuples(concl, line_no)?;
                // Reuse TdBuilder's name resolution by building all rows as
                // "antecedents" of a scratch builder, then splitting.
                let mut builder = TdBuilder::new(schema.clone());
                for t in ante_tuples.iter().chain(concl_tuples.iter()) {
                    builder = builder
                        .antecedent(t.iter().map(String::as_str))
                        .map_err(|e| err(line_no, e.to_string()))?;
                }
                let scratch = builder
                    .conclusion(vec!["_"; schema.arity()])
                    .map_err(|e| err(line_no, e.to_string()))?
                    .build(name.clone())
                    .map_err(|e| err(line_no, e.to_string()))?;
                let all: Vec<TdRow> = scratch.antecedents().to_vec();
                let (ante_rows, concl_rows) = all.split_at(ante_tuples.len());
                eids.push(
                    Eid::new(
                        schema.clone(),
                        ante_rows.to_vec(),
                        concl_rows.to_vec(),
                        name,
                    )
                    .map_err(|e| err(line_no, e.to_string()))?,
                );
            }
            "row" => {
                if schema.is_none() {
                    return Err(err(line_no, "`row` before `schema`"));
                }
                let tuples = parse_tuples(body, line_no)?;
                if tuples.len() != 1 {
                    return Err(err(line_no, "`row` takes exactly one tuple"));
                }
                rows.push((line_no, tuples.into_iter().next().unwrap()));
            }
            other => {
                return Err(err(
                    line_no,
                    format!("unknown keyword `{other}` (expected schema/td/eid/row)"),
                ));
            }
        }
    }

    let schema = schema.ok_or_else(|| err(1, "missing `schema` declaration"))?;
    let mut instance = Instance::new(schema.clone());
    let mut value_names: Vec<HashMap<String, Value>> = vec![HashMap::new(); schema.arity()];
    for (line_no, tokens) in rows {
        if tokens.len() != schema.arity() {
            return Err(err(
                line_no,
                format!(
                    "row has {} components, schema has {}",
                    tokens.len(),
                    schema.arity()
                ),
            ));
        }
        let mut vals = Vec::with_capacity(tokens.len());
        for (col, token) in tokens.into_iter().enumerate() {
            let next_id = value_names[col].len() as u32;
            let v = *value_names[col]
                .entry(token)
                .or_insert_with(|| Value::new(next_id));
            vals.push(v);
        }
        instance
            .insert(Tuple::new(vals))
            .map_err(|e| err(line_no, e.to_string()))?;
    }

    Ok(ParsedFile {
        schema,
        tds,
        eids,
        instance,
        value_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::satisfaction::satisfies;

    const GARMENT: &str = "
# The garment database of the paper's introduction.
schema R(SUPPLIER, STYLE, SIZE)

td fig1: (a, b, c) (a, b2, c2) -> (*, b, c2)
eid both: (a, b, c) (a, b2, c2) -> (x, b, c) (x, b, c2)

# One supplier, two garments: fig1 demands the mixed combinations too.
row (stlaurent, dress, s10)
row (stlaurent, brief, s36)
";

    #[test]
    fn parses_garment_file() {
        let f = parse(GARMENT).unwrap();
        assert_eq!(f.schema.summary(), "R(SUPPLIER, STYLE, SIZE)");
        assert_eq!(f.tds.len(), 1);
        assert_eq!(f.eids.len(), 1);
        assert_eq!(f.instance.len(), 2);
        let td = &f.tds[0];
        assert_eq!(td.name(), "fig1");
        assert!(td.is_embedded());
        assert_eq!(td.antecedent_count(), 2);
        let eid = &f.eids[0];
        assert_eq!(eid.conclusions().len(), 2);
        // The instance does not satisfy fig1: St. Laurent supplies dresses
        // and supplies size 36, but nobody supplies a dress in size 36.
        assert!(!satisfies(&f.instance, td));
    }

    #[test]
    fn value_interning_is_per_column() {
        let f = parse("schema R(A, B)\nrow (x, x)\nrow (x, y)\n").unwrap();
        assert_eq!(f.instance.len(), 2);
        // `x` in column A and `x` in column B are distinct domains but both
        // intern to id 0 within their column.
        assert_eq!(f.value_names[0]["x"], Value::new(0));
        assert_eq!(f.value_names[1]["x"], Value::new(0));
        assert_eq!(f.value_names[1]["y"], Value::new(1));
    }

    #[test]
    fn eid_shares_existentials_across_conclusions() {
        let f = parse(GARMENT).unwrap();
        let eid = &f.eids[0];
        use crate::ids::AttrId;
        // `x` (column SUPPLIER) is shared between the two conclusion rows.
        assert_eq!(
            eid.conclusions()[0].get(AttrId::new(0)),
            eid.conclusions()[1].get(AttrId::new(0))
        );
        // And is existential: never appears in the antecedents.
        assert!(!eid
            .antecedents()
            .iter()
            .any(|r| r.get(AttrId::new(0)) == eid.conclusions()[0].get(AttrId::new(0))));
    }

    #[test]
    fn errors_are_located() {
        let e = parse("schema R(A)\ntd bad (a) -> (a)\n").unwrap_err();
        assert!(matches!(e, CoreError::Parse { line: 2, .. }), "{e}");
        let e = parse("td x: (a) -> (a)\n").unwrap_err();
        assert!(matches!(e, CoreError::Parse { line: 1, .. }));
        let e = parse("schema R(A)\nbogus keyword\n").unwrap_err();
        assert!(matches!(e, CoreError::Parse { line: 2, .. }));
        let e = parse("schema R(A)\nrow (x, y)\n").unwrap_err();
        assert!(matches!(e, CoreError::Parse { line: 2, .. }));
        let e = parse("schema R(A)\ntd t: (a) -> (a) (a)\n").unwrap_err();
        assert!(matches!(e, CoreError::Parse { line: 2, .. }));
    }

    #[test]
    fn typing_violation_reported_with_line() {
        let e = parse("schema R(A, B)\ntd t: (v, v) -> (v, v)\n").unwrap_err();
        match e {
            CoreError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("typing violation"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let f = parse("# hi\n\nschema R(A) # trailing\n row (v) \n").unwrap();
        assert_eq!(f.instance.len(), 1);
    }

    #[test]
    fn tuple_splitter_edge_cases() {
        assert!(parse_tuples("(a, b) (c, d)", 1).unwrap().len() == 2);
        assert!(parse_tuples("", 1).unwrap().is_empty());
        assert!(parse_tuples("(a,", 1).is_err());
        assert!(parse_tuples("(a,,b)", 1).is_err());
        assert!(parse_tuples("x(a)", 1).is_err());
    }

    #[test]
    fn duplicate_schema_rejected() {
        let e = parse("schema R(A)\nschema R(B)\n").unwrap_err();
        assert!(matches!(e, CoreError::Parse { line: 2, .. }));
    }

    #[test]
    fn duplicate_td_name_rejected_with_position() {
        let e = parse("schema R(A)\ntd t: (a) -> (a)\ntd t: (b) -> (*)\n").unwrap_err();
        match e {
            CoreError::Parse { line, msg } => {
                assert_eq!(line, 3);
                assert!(msg.contains("duplicate dependency name `t`"), "{msg}");
                assert!(msg.contains("line 2"), "{msg}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn duplicate_eid_name_rejected() {
        let e = parse("schema R(A)\neid e: (a) -> (a)\neid e: (a) -> (x)\n").unwrap_err();
        assert!(matches!(e, CoreError::Parse { line: 3, .. }), "{e}");
    }

    #[test]
    fn td_and_eid_share_a_namespace() {
        let e = parse("schema R(A)\ntd d: (a) -> (a)\neid d: (a) -> (x)\n").unwrap_err();
        match e {
            CoreError::Parse { line, msg } => {
                assert_eq!(line, 3);
                assert!(msg.contains("duplicate dependency name `d`"), "{msg}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Distinct names across kinds stay fine.
        let f = parse("schema R(A)\ntd d: (a) -> (a)\neid e: (a) -> (x)\n").unwrap();
        assert_eq!(f.tds.len(), 1);
        assert_eq!(f.eids.len(), 1);
    }

    #[test]
    fn duplicate_rows_are_deduplicated() {
        let f = parse("schema R(A, B)\nrow (x, y)\nrow (x, y)\nrow (x, z)\n").unwrap();
        assert_eq!(f.instance.len(), 2, "set semantics: repeats dropped");
        assert!(f.instance.index_is_consistent());
    }
}
