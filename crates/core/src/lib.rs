//! # td-core — typed template dependencies and the chase
//!
//! This crate implements the database-theoretic core of Gurevich & Lewis,
//! *The Inference Problem for Template Dependencies* (Information and
//! Control 55, 1982; preliminary version in PODS 1982):
//!
//! * **Typed relational instances** over a single relation `R` whose
//!   attribute domains are pairwise disjoint (the paper's *typing
//!   restriction*). Two interchangeable views are provided:
//!   [`instance::Instance`] (explicit value tuples) and
//!   [`eq_instance::EqInstance`] (rows plus one equivalence
//!   relation per attribute — the view used throughout the paper's proofs).
//! * **Template dependencies** ([`td::Td`]): statements of the form
//!   `R(t₁) & … & R(t_k) ⇒ R(t*)`, where the `tᵢ` are rows of typed
//!   variables and the conclusion may contain existentially quantified
//!   components (*embedded* TDs) or not (*full* TDs).
//! * **Diagrams** ([`diagram::Diagram`]): the graphical notation of
//!   Fagin, Maier, Ullman & Yannakakis used by the paper (Fig. 1) — nodes are
//!   tuples, edge labels are attributes on which tuples agree.
//! * **The chase** ([`chase`]): a fair, budgeted, certificate-producing
//!   semi-decision procedure for TD inference, plus a terminating *decision*
//!   procedure for full TDs, and an oblivious variant.
//! * **Inference** ([`inference`]): `D ⊨ D₀` with three honest verdicts —
//!   `Implied` (with a replayable [`chase::ChaseProof`]),
//!   `NotImplied` (with a finite countermodel), or `Unknown` (budget
//!   exhausted — unavoidable, since the paper proves the problem
//!   undecidable).
//! * **EIDs** ([`eid`]): embedded implicational dependencies (Chandra, Lewis
//!   & Makowsky), the more general class the paper strengthens; TDs embed
//!   into EIDs.
//! * **The budget substrate** ([`budget`]): the workspace-wide
//!   [`budget::Cancellation`] / [`budget::Ticker`] pair — cooperative
//!   cancellation, capped spend counters with cadenced polling, and the
//!   cancelled-vs-exhausted distinction shared by the chase, the semigroup
//!   searches and the racing pipeline.
//! * **Canonical forms** ([`canon`]): isomorphism-invariant 128-bit keys
//!   for TDs (equal iff the dependencies coincide up to variable renaming
//!   and row permutation), via color refinement with smallest-orbit
//!   individualization — the foundation of the batch decision cache.
//! * A small **text format** ([`parser`]) and **renderers** ([`render`]) for
//!   dependencies, diagrams and instances.
//!
//! ## Quick start
//!
//! ```
//! use td_core::prelude::*;
//!
//! // The garment database of the paper's introduction.
//! let schema = Schema::new("R", ["SUPPLIER", "STYLE", "SIZE"]).unwrap();
//!
//! // Fig. 1: R(a,b,c) & R(a,b',c') ⇒ ∃a* R(a*,b,c').
//! let fig1 = TdBuilder::new(schema.clone())
//!     .antecedent(["a", "b", "c"]).unwrap()
//!     .antecedent(["a", "b'", "c'"]).unwrap()
//!     .conclusion(["*", "b", "c'"]).unwrap()
//!     .build("fig1")
//!     .unwrap();
//! assert!(fig1.is_embedded());
//!
//! // A database: St. Laurent supplies dresses in size 10 and briefs in 36.
//! let mut db = Instance::new(schema);
//! let [sl, dress, brief, s10, s36] = [0, 0, 1, 0, 1];
//! db.insert_values([sl, dress, s10]).unwrap();
//! db.insert_values([sl, brief, s36]).unwrap();
//!
//! // fig1 demands (for every matching pair, in both orders) a supplier of
//! // dresses in 36 and a supplier of briefs in 10 — neither is present yet.
//! assert!(!satisfies(&db, &fig1));
//! db.insert_values([7, dress, s36]).unwrap();
//! db.insert_values([8, brief, s10]).unwrap();
//! assert!(satisfies(&db, &fig1));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod axioms;
pub mod budget;
pub mod canon;
pub mod chase;
pub mod countermodel;
pub mod diagram;
pub mod eid;
pub mod eq_instance;
pub mod error;
pub mod homomorphism;
pub mod ids;
pub mod inference;
pub mod instance;
pub mod parser;
pub mod product;
pub mod render;
pub mod satisfaction;
pub mod schema;
pub mod td;
pub mod tuple;
pub mod union_find;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::budget::{Cancellation, Meter, Parallelism, StopReason, Ticker};
    pub use crate::canon::{canon_key, system_key, CanonKey};
    pub use crate::chase::{
        ChaseBudget, ChaseEngine, ChaseOutcome, ChasePolicy, ChaseProof, ChaseState, Goal,
    };
    pub use crate::diagram::Diagram;
    pub use crate::eid::Eid;
    pub use crate::eq_instance::EqInstance;
    pub use crate::error::CoreError;
    pub use crate::homomorphism::{match_all, match_first, Binding, MatchStrategy};
    pub use crate::ids::{AttrId, RowId, Value, Var};
    pub use crate::inference::{
        implies, implies_full, implies_with, implies_with_strategy, InferenceVerdict,
    };
    pub use crate::instance::Instance;
    pub use crate::satisfaction::{find_violation, satisfies};
    pub use crate::schema::Schema;
    pub use crate::td::{Td, TdBuilder, TdRow};
    pub use crate::tuple::Tuple;
}

pub use prelude::*;
