//! A classic disjoint-set (union–find) structure with path compression and
//! union by rank.
//!
//! The paper's model constructions manipulate one equivalence relation per
//! attribute ("each type of edge label represents an equivalence relation");
//! [`UnionFind`] is the workhorse behind
//! [`EqInstance`](crate::eq_instance::EqInstance) and the diagram-to-TD
//! conversion.

/// Disjoint-set forest over the integers `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `len` singleton classes.
    pub fn new(len: usize) -> Self {
        Self {
            parent: (0..len as u32).collect(),
            rank: vec![0; len],
        }
    }

    /// Number of elements (not classes).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Appends a fresh singleton element and returns its index.
    pub fn push(&mut self) -> usize {
        let ix = self.parent.len();
        self.parent.push(ix as u32);
        self.rank.push(0);
        ix
    }

    /// Finds the representative of `x`'s class (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Compress the path.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Finds the representative without mutating (no path compression).
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        root
    }

    /// Merges the classes of `a` and `b`. Returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// `true` if `a` and `b` are in the same class.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Immutable variant of [`Self::same`].
    pub fn same_immutable(&self, a: usize, b: usize) -> bool {
        self.find_immutable(a) == self.find_immutable(b)
    }

    /// Number of distinct classes.
    pub fn class_count(&self) -> usize {
        (0..self.len())
            .filter(|&i| self.find_immutable(i) == i)
            .count()
    }

    /// Assigns each element a dense class label in `0..class_count()`, in
    /// order of first appearance. Useful for canonical forms.
    pub fn dense_labels(&self) -> Vec<u32> {
        let mut label_of_root = vec![u32::MAX; self.len()];
        let mut labels = Vec::with_capacity(self.len());
        let mut next = 0u32;
        for i in 0..self.len() {
            let r = self.find_immutable(i);
            if label_of_root[r] == u32::MAX {
                label_of_root[r] = next;
                next += 1;
            }
            labels.push(label_of_root[r]);
        }
        labels
    }

    /// Enumerates the classes as sorted vectors of member indices, ordered by
    /// smallest member.
    pub fn classes(&self) -> Vec<Vec<usize>> {
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..self.len() {
            by_root.entry(self.find_immutable(i)).or_default().push(i);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|c| c[0]);
        out
    }

    /// Size of the class containing `x`.
    pub fn class_size(&self, x: usize) -> usize {
        let r = self.find_immutable(x);
        (0..self.len())
            .filter(|&i| self.find_immutable(i) == r)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.class_count(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.same(0, 1));
        assert!(!uf.same(1, 2));
        assert_eq!(uf.class_count(), 3);
        assert!(uf.union(1, 3));
        assert!(uf.same(0, 2));
        assert_eq!(uf.class_count(), 2);
    }

    #[test]
    fn push_extends() {
        let mut uf = UnionFind::new(1);
        let a = uf.push();
        assert_eq!(a, 1);
        assert_eq!(uf.len(), 2);
        assert!(!uf.same(0, 1));
        uf.union(0, 1);
        assert!(uf.same(0, 1));
    }

    #[test]
    fn dense_labels_are_first_appearance_ordered() {
        let mut uf = UnionFind::new(6);
        uf.union(1, 4);
        uf.union(2, 5);
        let labels = uf.dense_labels();
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[2], 2);
        assert_eq!(labels[3], 3);
        assert_eq!(labels[4], 1);
        assert_eq!(labels[5], 2);
    }

    #[test]
    fn classes_enumeration() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 3);
        let cls = uf.classes();
        assert_eq!(cls, vec![vec![0, 3], vec![1], vec![2]]);
        assert_eq!(uf.class_size(0), 2);
        assert_eq!(uf.class_size(1), 1);
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.class_count(), 0);
        assert!(uf.classes().is_empty());
    }
}
