//! Error types for `td-core`.

use std::fmt;

/// Errors produced while building schemas, dependencies, instances, or while
/// parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A tuple or row had the wrong number of components for its schema.
    ArityMismatch {
        /// Arity demanded by the schema.
        expected: usize,
        /// Arity actually supplied.
        got: usize,
    },
    /// A schema was declared with no attributes.
    EmptySchema,
    /// Two attributes of one schema share a name.
    DuplicateAttribute(String),
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// The paper's typing restriction was violated: one variable name was
    /// used in two different columns (whose domains are disjoint).
    TypingViolation {
        /// The offending variable name.
        name: String,
        /// First column the name appeared in.
        first_column: String,
        /// Second, conflicting column.
        second_column: String,
    },
    /// A template dependency was declared with no antecedent rows.
    EmptyAntecedents,
    /// A template dependency was declared without a conclusion row.
    MissingConclusion,
    /// Two instances or dependencies over different schemas were combined.
    SchemaMismatch {
        /// Schema expected by the operation.
        expected: String,
        /// Schema actually supplied.
        got: String,
    },
    /// A diagram was structurally invalid (bad node id, conclusion out of
    /// range, self-loop edge, …).
    InvalidDiagram(String),
    /// A row id was out of range for the instance it was used with.
    RowOutOfRange {
        /// The offending row index.
        row: usize,
        /// Number of rows in the instance.
        len: usize,
    },
    /// An error found while replaying a chase proof.
    ProofReplay(String),
    /// A parse error in the text format, with 1-based line number.
    Parse {
        /// Line on which the error occurred (1-based).
        line: usize,
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: expected {expected} components, got {got}"
                )
            }
            CoreError::EmptySchema => write!(f, "schema must have at least one attribute"),
            CoreError::DuplicateAttribute(a) => write!(f, "duplicate attribute `{a}`"),
            CoreError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            CoreError::TypingViolation {
                name,
                first_column,
                second_column,
            } => write!(
                f,
                "typing violation: variable `{name}` used in columns `{first_column}` and \
                 `{second_column}` (attribute domains are disjoint)"
            ),
            CoreError::EmptyAntecedents => {
                write!(f, "a template dependency needs at least one antecedent row")
            }
            CoreError::MissingConclusion => {
                write!(f, "a template dependency needs a conclusion row")
            }
            CoreError::SchemaMismatch { expected, got } => {
                write!(f, "schema mismatch: expected `{expected}`, got `{got}`")
            }
            CoreError::InvalidDiagram(msg) => write!(f, "invalid diagram: {msg}"),
            CoreError::RowOutOfRange { row, len } => {
                write!(f, "row {row} out of range (instance has {len} rows)")
            }
            CoreError::ProofReplay(msg) => write!(f, "chase proof replay failed: {msg}"),
            CoreError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenient result alias used throughout the crate.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        let e = CoreError::TypingViolation {
            name: "x".into(),
            first_column: "A".into(),
            second_column: "B".into(),
        };
        let s = e.to_string();
        assert!(s.contains('x') && s.contains('A') && s.contains('B'));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::EmptySchema);
        assert!(!e.to_string().is_empty());
    }
}
