//! Small, copyable identifier types.
//!
//! All four identifiers are dense indices wrapped in newtypes so that the
//! type system keeps rows, attributes, variables and values apart. `Var` and
//! `Value` are *scoped per column*: the paper's typing restriction (attribute
//! domains are pairwise disjoint) is enforced structurally — a `Var` or
//! `Value` carries no column of its own and is only ever interpreted relative
//! to the column it is stored in, so the same numeric id in two different
//! columns denotes two unrelated objects.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $letter:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
        pub struct $name(u32);

        impl $name {
            /// Wraps a dense index.
            #[inline]
            pub const fn new(ix: u32) -> Self {
                Self(ix)
            }

            /// Returns the dense index as a `usize`, for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(ix: u32) -> Self {
                Self(ix)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(ix: usize) -> Self {
                Self(u32::try_from(ix).expect("id index exceeds u32::MAX"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($letter, "{}"), self.0)
            }
        }
    };
}

id_type! {
    /// Index of an attribute (column) within a [`Schema`](crate::schema::Schema).
    AttrId, "col"
}
id_type! {
    /// Index of a row within an [`Instance`](crate::instance::Instance) or
    /// [`EqInstance`](crate::eq_instance::EqInstance).
    RowId, "row"
}
id_type! {
    /// A typed variable of a template dependency, scoped to one column.
    Var, "v"
}
id_type! {
    /// A typed database value (or labelled null), scoped to one column.
    Value, "n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_ordering() {
        let a = AttrId::new(3);
        assert_eq!(a.index(), 3);
        assert_eq!(a.raw(), 3);
        assert_eq!(AttrId::from(3usize), a);
        assert!(AttrId::new(2) < a);
    }

    #[test]
    fn displays_are_distinct() {
        assert_eq!(AttrId::new(1).to_string(), "col1");
        assert_eq!(RowId::new(1).to_string(), "row1");
        assert_eq!(Var::new(1).to_string(), "v1");
        assert_eq!(Value::new(1).to_string(), "n1");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Var::default().index(), 0);
    }
}
