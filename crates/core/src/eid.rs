//! Embedded implicational dependencies (EIDs).
//!
//! "An EID resembles a template dependency, but the conclusion may be a
//! conjunction of atomic formulas rather than a single atomic formula."
//! Chandra, Lewis & Makowsky (1981) proved the inference problem for typed
//! EIDs undecidable; the paper strengthens that result to the special case
//! of template dependencies ("Since EIDs are more general than template
//! dependencies, the results of this paper imply the undecidability results
//! of Chandra et al., but not vice versa").
//!
//! This module provides the baseline class: satisfaction, the TD ↪ EID
//! embedding, and a chase-based semi-decision procedure for EID implication,
//! mirroring [`crate::inference`].

use std::ops::ControlFlow;

use crate::chase::ChaseBudget;
use crate::error::{CoreError, Result};
use crate::homomorphism::{for_each_match, match_first, Binding};
use crate::ids::{AttrId, Value};
use crate::instance::Instance;
use crate::schema::Schema;
use crate::td::{Td, TdRow};
use crate::tuple::Tuple;

/// An embedded implicational dependency: antecedent rows and **one or more**
/// conclusion rows, which may share existentially quantified variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eid {
    schema: Schema,
    name: String,
    antecedents: Vec<TdRow>,
    conclusions: Vec<TdRow>,
}

impl Eid {
    /// Creates an EID, validating arities and non-emptiness.
    ///
    /// # Errors
    ///
    /// Fails when the antecedent or conclusion set is empty, or when any
    /// row's arity differs from the schema's.
    pub fn new(
        schema: Schema,
        antecedents: Vec<TdRow>,
        conclusions: Vec<TdRow>,
        name: impl Into<String>,
    ) -> Result<Self> {
        if antecedents.is_empty() {
            return Err(CoreError::EmptyAntecedents);
        }
        if conclusions.is_empty() {
            return Err(CoreError::MissingConclusion);
        }
        for row in antecedents.iter().chain(conclusions.iter()) {
            if row.arity() != schema.arity() {
                return Err(CoreError::ArityMismatch {
                    expected: schema.arity(),
                    got: row.arity(),
                });
            }
        }
        Ok(Self {
            schema,
            name: name.into(),
            antecedents,
            conclusions,
        })
    }

    /// Embeds a template dependency (an EID with a single conclusion atom).
    pub fn from_td(td: &Td) -> Eid {
        Eid {
            schema: td.schema().clone(),
            name: td.name().to_owned(),
            antecedents: td.antecedents().to_vec(),
            conclusions: vec![td.conclusion().clone()],
        }
    }

    /// Converts back to a TD if there is exactly one conclusion atom.
    pub fn to_td(&self) -> Option<Td> {
        if self.conclusions.len() != 1 {
            return None;
        }
        Td::new(
            self.schema.clone(),
            self.antecedents.clone(),
            self.conclusions[0].clone(),
            self.name.clone(),
        )
        .ok()
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The dependency's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The antecedent rows.
    pub fn antecedents(&self) -> &[TdRow] {
        &self.antecedents
    }

    /// The conclusion rows.
    pub fn conclusions(&self) -> &[TdRow] {
        &self.conclusions
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// `true` if a conclusion variable at `(row, col)` is universally
    /// quantified (appears in some antecedent at that column).
    fn is_universal(&self, row: usize, col: AttrId) -> bool {
        let v = self.conclusions[row].get(col);
        self.antecedents.iter().any(|r| r.get(col) == v)
    }

    /// `true` if every conclusion component is universally quantified.
    pub fn is_full(&self) -> bool {
        (0..self.conclusions.len()).all(|r| self.schema.attr_ids().all(|c| self.is_universal(r, c)))
    }
}

/// `true` if the conclusion conjunction is witnessed in `instance` under
/// `binding`. Existential variables shared between conclusion atoms must be
/// instantiated consistently — this is exactly a homomorphism search seeded
/// with the antecedent binding.
pub fn eid_conclusion_witnessed(instance: &Instance, eid: &Eid, binding: &Binding) -> bool {
    match_first(eid.conclusions(), instance, binding).is_some()
}

/// Finds a violating antecedent match, or `None` if `instance ⊨ eid`.
pub fn eid_find_violation(instance: &Instance, eid: &Eid) -> Option<Binding> {
    let mut violation = None;
    for_each_match(
        eid.antecedents(),
        instance,
        &Binding::new(eid.arity()),
        |b| {
            if eid_conclusion_witnessed(instance, eid, b) {
                ControlFlow::Continue(())
            } else {
                violation = Some(b.clone());
                ControlFlow::Break(())
            }
        },
    );
    violation
}

/// `true` if `instance ⊨ eid`.
pub fn eid_satisfies(instance: &Instance, eid: &Eid) -> bool {
    eid_find_violation(instance, eid).is_none()
}

/// Verdict of [`implies_eid`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EidVerdict {
    /// The implication holds (goal witnessed during the chase).
    Implied,
    /// The chase terminated without witnessing the goal; the terminal state
    /// is a finite countermodel.
    NotImplied(Instance),
    /// Budget exhausted.
    Unknown,
}

/// Semi-decides `d ⊨ d0` for EIDs by chasing `d0`'s frozen antecedent
/// tableau. Firing an EID trigger adds **all** conclusion rows, with shared
/// fresh nulls for shared existential variables.
///
/// # Errors
///
/// Fails when the dependencies disagree on schema, or when the chase
/// state rejects a row insertion (arity mismatch).
pub fn implies_eid(d: &[Eid], d0: &Eid, budget: ChaseBudget) -> Result<EidVerdict> {
    for eid in d {
        d0.schema().expect_same(eid.schema())?;
    }
    // Freeze d0's antecedents.
    let mut state = Instance::new(d0.schema().clone());
    let mut frozen = Binding::new(d0.arity());
    for row in d0.antecedents() {
        let mut vals = Vec::with_capacity(d0.arity());
        for (c, v) in row.components() {
            let val = match frozen.get(c, v) {
                Some(val) => val,
                None => {
                    let val = Value::new(v.raw());
                    frozen.bind(c, v, val);
                    val
                }
            };
            vals.push(val);
        }
        state.insert(Tuple::new(vals))?;
    }

    let goal_met = |state: &Instance| -> bool { eid_conclusion_witnessed(state, d0, &frozen) };

    if goal_met(&state) {
        return Ok(EidVerdict::Implied);
    }

    let mut steps = 0usize;
    for _round in 0..budget.max_rounds {
        // Snapshot active triggers.
        let snapshot = state.clone();
        let mut pending: Vec<(usize, Binding)> = Vec::new();
        for (i, eid) in d.iter().enumerate() {
            for_each_match(
                eid.antecedents(),
                &snapshot,
                &Binding::new(eid.arity()),
                |b| {
                    if !eid_conclusion_witnessed(&snapshot, eid, b) {
                        pending.push((i, b.clone()));
                    }
                    if steps + pending.len() >= budget.max_steps {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            );
        }
        if pending.is_empty() {
            return Ok(EidVerdict::NotImplied(state));
        }
        let mut fired_any = false;
        for (i, binding) in pending {
            if steps >= budget.max_steps || state.len() >= budget.max_rows {
                return Ok(EidVerdict::Unknown);
            }
            let eid = &d[i];
            if eid_conclusion_witnessed(&state, eid, &binding) {
                continue;
            }
            // Fire: add every conclusion row, sharing fresh nulls.
            let mut full = binding.clone();
            let mut added = false;
            for row in eid.conclusions() {
                let mut vals = Vec::with_capacity(eid.arity());
                for (c, v) in row.components() {
                    let val = match full.get(c, v) {
                        Some(val) => val,
                        None => {
                            let fresh = state.fresh_value(c);
                            full.bind(c, v, fresh);
                            fresh
                        }
                    };
                    vals.push(val);
                }
                let (_, new) = state.insert(Tuple::new(vals))?;
                added |= new;
            }
            if added {
                steps += 1;
                fired_any = true;
                if goal_met(&state) {
                    return Ok(EidVerdict::Implied);
                }
            }
        }
        if !fired_any {
            return Ok(EidVerdict::NotImplied(state));
        }
    }
    Ok(EidVerdict::Unknown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::td::TdBuilder;

    fn schema() -> Schema {
        Schema::new("R", ["A", "B", "C"]).unwrap()
    }

    /// The paper's EID example: R(a,b,c) & R(a,b',c') ⇒ R(a*,b,c) & R(a*,b,c')
    /// — "if one supplier supplies a garment b in a size c and also supplies
    /// some garment in size c', then there is a supplier of garment b in
    /// both sizes c and c'."
    fn paper_eid() -> Eid {
        // Build via a helper TD to get consistent variable ids, then attach
        // a second conclusion row sharing the existential supplier.
        let base = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["astar", "b", "c"])
            .unwrap()
            .build("base")
            .unwrap();
        let astar = base.conclusion().get(AttrId::new(0));
        let b = base.antecedents()[0].get(AttrId::new(1));
        let c = base.antecedents()[0].get(AttrId::new(2));
        let c2 = base.antecedents()[1].get(AttrId::new(2));
        let second = TdRow::new([astar, b, c2]);
        Eid::new(
            schema(),
            base.antecedents().to_vec(),
            vec![TdRow::new([astar, b, c]), second],
            "paper-eid",
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            Eid::new(schema(), vec![], vec![TdRow::from_raw([0, 0, 0])], "x"),
            Err(CoreError::EmptyAntecedents)
        ));
        assert!(matches!(
            Eid::new(schema(), vec![TdRow::from_raw([0, 0, 0])], vec![], "x"),
            Err(CoreError::MissingConclusion)
        ));
        assert!(matches!(
            Eid::new(
                schema(),
                vec![TdRow::from_raw([0, 0])],
                vec![TdRow::from_raw([0, 0, 0])],
                "x"
            ),
            Err(CoreError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn paper_eid_satisfaction() {
        let eid = paper_eid();
        assert!(!eid.is_full());
        let mut db = Instance::new(schema());
        // Supplier 0 supplies (style 0, size 0) and (style 1, size 1).
        db.insert_values([0, 0, 0]).unwrap();
        db.insert_values([0, 1, 1]).unwrap();
        // Need one supplier with (style 0, size 0) AND (style 0, size 1).
        assert!(!eid_satisfies(&db, &eid));
        // A supplier covering only one of the two sizes does not help.
        db.insert_values([1, 0, 1]).unwrap();
        assert!(!eid_satisfies(&db, &eid));
        // Supplier 2 covers both sizes of style 0.
        db.insert_values([2, 0, 0]).unwrap();
        db.insert_values([2, 0, 1]).unwrap();
        // Still violated: the swapped antecedent match (style 1, sizes 1
        // and 0) needs its own witness.
        assert!(!eid_satisfies(&db, &eid));
        db.insert_values([3, 1, 1]).unwrap();
        db.insert_values([3, 1, 0]).unwrap();
        assert!(eid_satisfies(&db, &eid));
    }

    #[test]
    fn shared_existentials_must_be_consistent() {
        let eid = paper_eid();
        let mut db = Instance::new(schema());
        db.insert_values([0, 0, 0]).unwrap();
        db.insert_values([0, 1, 1]).unwrap();
        // Two different suppliers each covering one size: still violated,
        // because a* is shared between the conclusion atoms.
        db.insert_values([1, 0, 0]).unwrap();
        db.insert_values([2, 0, 1]).unwrap();
        assert!(!eid_satisfies(&db, &eid));
    }

    #[test]
    fn td_embedding_roundtrip() {
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["*", "b", "c'"])
            .unwrap()
            .build("fig1")
            .unwrap();
        let eid = Eid::from_td(&td);
        assert_eq!(eid.conclusions().len(), 1);
        let back = eid.to_td().unwrap();
        assert!(td.eq_up_to_renaming(&back));
        // Satisfaction agrees on a sample instance.
        let mut db = Instance::new(schema());
        db.insert_values([0, 0, 0]).unwrap();
        db.insert_values([0, 1, 1]).unwrap();
        assert_eq!(
            crate::satisfaction::satisfies(&db, &td),
            eid_satisfies(&db, &eid)
        );
        // Multi-conclusion EIDs do not convert.
        assert!(paper_eid().to_td().is_none());
    }

    #[test]
    fn eid_self_implication() {
        let eid = paper_eid();
        let verdict =
            implies_eid(std::slice::from_ref(&eid), &eid, ChaseBudget::default()).unwrap();
        assert_eq!(verdict, EidVerdict::Implied);
    }

    #[test]
    fn eid_implies_weaker_td() {
        // The paper EID implies the single-atom TD
        // R(a,b,c) & R(a,b',c') => exists a*: R(a*, b, c').
        let eid = paper_eid();
        let weaker = Eid::from_td(
            &TdBuilder::new(schema())
                .antecedent(["a", "b", "c"])
                .unwrap()
                .antecedent(["a", "b'", "c'"])
                .unwrap()
                .conclusion(["*", "b", "c'"])
                .unwrap()
                .build("fig1")
                .unwrap(),
        );
        let verdict =
            implies_eid(std::slice::from_ref(&eid), &weaker, ChaseBudget::default()).unwrap();
        assert_eq!(verdict, EidVerdict::Implied);
    }

    #[test]
    fn eid_non_implication_gives_countermodel() {
        let eid = paper_eid();
        // The reverse direction fails: fig1 does not imply the paper EID.
        let fig1 = Eid::from_td(
            &TdBuilder::new(schema())
                .antecedent(["a", "b", "c"])
                .unwrap()
                .antecedent(["a", "b'", "c'"])
                .unwrap()
                .conclusion(["*", "b", "c'"])
                .unwrap()
                .build("fig1")
                .unwrap(),
        );
        match implies_eid(std::slice::from_ref(&fig1), &eid, ChaseBudget::default()).unwrap() {
            EidVerdict::NotImplied(model) => {
                assert!(eid_satisfies(&model, &fig1));
                assert!(!eid_satisfies(&model, &eid));
            }
            other => panic!("expected NotImplied, got {other:?}"),
        }
    }
}
