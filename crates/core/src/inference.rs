//! The inference problem: `D ⊨ D₀`?
//!
//! "A significant question about any class of dependencies is its inference
//! problem: Given a finite set D of dependencies and a single dependency D₀,
//! to determine whether D₀ is true in every database in which each member of
//! D is true."
//!
//! The paper's Main Theorem: for typed template dependencies this problem is
//! **undecidable**, both over arbitrary and over finite databases (the two
//! relevant sets of pairs are even effectively inseparable). Accordingly,
//! [`implies`] is a *semi*-decision procedure with three honest verdicts:
//!
//! * [`InferenceVerdict::Implied`] — with a replayable [`ChaseProof`];
//! * [`InferenceVerdict::NotImplied`] — with a finite countermodel, found
//!   when the chase terminates (its terminal state is a universal model of
//!   `D` containing `D₀`'s frozen antecedents but no conclusion witness);
//! * [`InferenceVerdict::Unknown`] — budget exhausted.
//!
//! For **full** dependencies the chase never invents values, so it always
//! terminates: [`implies_full`] decides implication outright (the decidable
//! fragment the paper contrasts against).

use crate::budget::Parallelism;
use crate::chase::{
    weakly_acyclic, ChaseBudget, ChaseEngine, ChaseOutcome, ChasePolicy, ChaseProof, Goal,
};
use crate::error::{CoreError, Result};
use crate::homomorphism::{Binding, MatchStrategy};
use crate::ids::Value;
use crate::instance::Instance;
use crate::td::Td;
use crate::tuple::Tuple;

/// Outcome of an implication query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferenceVerdict {
    /// `D ⊨ D₀`, certified by a chase proof over the frozen tableau.
    Implied(ChaseProof),
    /// `D ⊭ D₀`, certified by a finite database satisfying every member of
    /// `D` whose frozen `D₀`-antecedents have no conclusion witness.
    NotImplied(Instance),
    /// The chase budget ran out first. (Unavoidable in general: the problem
    /// is undecidable.)
    Unknown(UnknownReport),
}

impl InferenceVerdict {
    /// `true` for [`InferenceVerdict::Implied`].
    pub fn is_implied(&self) -> bool {
        matches!(self, InferenceVerdict::Implied(_))
    }

    /// `true` for [`InferenceVerdict::NotImplied`].
    pub fn is_not_implied(&self) -> bool {
        matches!(self, InferenceVerdict::NotImplied(_))
    }

    /// `true` for [`InferenceVerdict::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, InferenceVerdict::Unknown(_))
    }
}

/// Statistics reported when a query exhausts its budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownReport {
    /// Triggers fired before giving up.
    pub steps_fired: usize,
    /// Rounds completed before giving up.
    pub rounds_run: usize,
    /// Rows in the chase state when the budget ran out.
    pub state_rows: usize,
}

/// Freezes the antecedent tableau of `d0`: each distinct variable becomes a
/// distinct constant (per column — domains are disjoint). Returns the frozen
/// instance, the freezing binding, and the goal pattern for `d0`'s
/// conclusion (frozen constants on universally quantified columns, wildcards
/// on existentially quantified ones).
///
/// # Errors
///
/// Fails only if a frozen row is rejected by the instance (arity
/// mismatch — impossible for a validated [`Td`]).
pub fn freeze(d0: &Td) -> Result<(Instance, Binding, Goal)> {
    let mut instance = Instance::new(d0.schema().clone());
    let mut binding = Binding::new(d0.arity());
    for row in d0.antecedents() {
        let mut vals = Vec::with_capacity(d0.arity());
        for (c, v) in row.components() {
            let val = match binding.get(c, v) {
                Some(val) => val,
                None => {
                    // Variable ids are reused as value ids: frozen constants.
                    let val = Value::new(v.raw());
                    binding.bind(c, v, val);
                    val
                }
            };
            vals.push(val);
        }
        instance.insert(Tuple::new(vals))?;
    }
    let goal = Goal::new(
        d0.conclusion()
            .components()
            .map(|(c, v)| binding.get(c, v))
            .collect(),
    );
    Ok((instance, binding, goal))
}

/// Semi-decides `d ⊨ d0` by chasing `d0`'s frozen tableau with `d`, using
/// the default [`MatchStrategy::Indexed`] matcher.
///
/// # Errors
///
/// Fails when the dependencies disagree on schema (see
/// [`implies_with_strategy`]).
pub fn implies(d: &[Td], d0: &Td, budget: ChaseBudget) -> Result<InferenceVerdict> {
    implies_with_strategy(d, d0, budget, MatchStrategy::default())
}

/// [`implies`] under an explicit homomorphism [`MatchStrategy`]. The
/// verdict must not depend on the strategy (the differential property
/// tests enforce this); the naive strategy exists as the audit oracle.
///
/// # Errors
///
/// Fails when any member of `d` disagrees with `d0` on schema, or when
/// freezing `d0` or constructing the chase engine fails.
pub fn implies_with_strategy(
    d: &[Td],
    d0: &Td,
    budget: ChaseBudget,
    strategy: MatchStrategy,
) -> Result<InferenceVerdict> {
    implies_with(d, d0, budget, strategy, Parallelism::Off)
}

/// [`implies`] under an explicit [`MatchStrategy`] *and* [`Parallelism`]
/// width for the chase's delta-trigger discovery. The verdict, the proof,
/// and the spent counters must not depend on either knob (the sequential
/// path is the oracle; the differential suites enforce the equality).
///
/// # Errors
///
/// Fails when any member of `d` disagrees with `d0` on schema, or when
/// freezing `d0` or constructing the chase engine fails.
pub fn implies_with(
    d: &[Td],
    d0: &Td,
    budget: ChaseBudget,
    strategy: MatchStrategy,
    parallelism: Parallelism,
) -> Result<InferenceVerdict> {
    for td in d {
        d0.schema().expect_same(td.schema())?;
    }
    let (frozen, _, goal) = freeze(d0)?;
    let mut engine = ChaseEngine::new(d, frozen, ChasePolicy::Restricted, budget)?
        .with_strategy(strategy)
        .with_parallelism(parallelism);
    match engine.run(Some(&goal)) {
        ChaseOutcome::GoalReached => {
            let (_, proof) = engine.into_parts();
            Ok(InferenceVerdict::Implied(proof))
        }
        ChaseOutcome::Terminated => {
            let (state, _) = engine.into_parts();
            Ok(InferenceVerdict::NotImplied(state))
        }
        ChaseOutcome::BudgetExhausted => Ok(InferenceVerdict::Unknown(UnknownReport {
            steps_fired: engine.steps_fired(),
            rounds_run: engine.rounds_run(),
            state_rows: engine.state().len(),
        })),
    }
}

/// Decides `d ⊨ d0` for a set of **full** dependencies `d` (the conclusion
/// of every member of `d` uses only antecedent variables). The chase then
/// never invents values, so the state stays inside the frozen tableau's
/// active domain and the run must terminate.
///
/// `d0` itself may be full or embedded. Returns an error if some member of
/// `d` is embedded.
pub fn implies_full(d: &[Td], d0: &Td) -> Result<bool> {
    for td in d {
        if !td.is_full() {
            return Err(CoreError::ProofReplay(format!(
                "implies_full requires full dependencies, but `{}` is embedded",
                td.name()
            )));
        }
    }
    debug_assert!(weakly_acyclic(d), "full TDs are trivially weakly acyclic");
    match implies(d, d0, ChaseBudget::unlimited())? {
        InferenceVerdict::Implied(_) => Ok(true),
        InferenceVerdict::NotImplied(_) => Ok(false),
        InferenceVerdict::Unknown(_) => {
            unreachable!("the chase with full TDs always terminates")
        }
    }
}

/// Tests whether two dependency sets imply each other (up to the budget).
/// Returns one verdict per member of `d2` for `d1 ⊨ d2[i]`, and vice versa.
///
/// # Errors
///
/// Fails on the first [`implies`] call that errors (schema mismatch
/// between the sets).
pub fn equivalent(
    d1: &[Td],
    d2: &[Td],
    budget: ChaseBudget,
) -> Result<(Vec<InferenceVerdict>, Vec<InferenceVerdict>)> {
    let forward = d2
        .iter()
        .map(|t| implies(d1, t, budget))
        .collect::<Result<Vec<_>>>()?;
    let backward = d1
        .iter()
        .map(|t| implies(d2, t, budget))
        .collect::<Result<Vec<_>>>()?;
    Ok((forward, backward))
}

/// Is `d[index]` redundant, i.e. implied by the rest of the set? (One of the
/// applications the paper lists: "the ability to determine … whether a set
/// of dependencies is redundant".)
///
/// # Errors
///
/// Fails when the set members disagree on schema.
pub fn redundant(d: &[Td], index: usize, budget: ChaseBudget) -> Result<InferenceVerdict> {
    redundant_with(d, index, budget, MatchStrategy::default())
}

/// [`redundant`] under an explicit homomorphism [`MatchStrategy`] (the
/// CLI's `tdq deps --strategy` differential path).
///
/// # Errors
///
/// Fails when the set members disagree on schema.
pub fn redundant_with(
    d: &[Td],
    index: usize,
    budget: ChaseBudget,
    strategy: MatchStrategy,
) -> Result<InferenceVerdict> {
    redundant_with_opts(d, index, budget, strategy, Parallelism::Off)
}

/// [`redundant`] under an explicit [`MatchStrategy`] and [`Parallelism`]
/// width (neither may change the verdict; see [`implies_with`]).
///
/// # Errors
///
/// Fails when the set members disagree on schema.
pub fn redundant_with_opts(
    d: &[Td],
    index: usize,
    budget: ChaseBudget,
    strategy: MatchStrategy,
    parallelism: Parallelism,
) -> Result<InferenceVerdict> {
    let rest: Vec<Td> = d
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != index)
        .map(|(_, t)| t.clone())
        .collect();
    implies_with(&rest, &d[index], budget, strategy, parallelism)
}

/// **Finite implication**, dovetailed: runs the chase (a proof of
/// unrestricted — hence also finite — implication) *and* a bounded
/// exhaustive search for small finite countermodels, returning whichever
/// side succeeds first.
///
/// The paper proves finite implication undecidable too (and Fagin et al.
/// 1981 showed it genuinely differs from unrestricted implication for TDs),
/// so this remains a partial procedure — but unlike [`implies`] it can
/// refute implications whose chase diverges, as long as a countermodel
/// exists within `search`'s bounds.
///
/// # Errors
///
/// Fails when the dependencies disagree on schema (see [`implies`]).
pub fn implies_finite(
    d: &[Td],
    d0: &Td,
    budget: ChaseBudget,
    search: &crate::countermodel::SearchOptions,
) -> Result<InferenceVerdict> {
    match implies(d, d0, budget)? {
        InferenceVerdict::Unknown(report) => {
            // The chase could not settle it; try small models.
            match crate::countermodel::search_countermodel(d, d0, search) {
                crate::countermodel::SearchOutcome::Found(model) => {
                    Ok(InferenceVerdict::NotImplied(model))
                }
                _ => Ok(InferenceVerdict::Unknown(report)),
            }
        }
        settled => Ok(settled),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::satisfaction::{satisfies, satisfies_all};
    use crate::schema::Schema;
    use crate::td::TdBuilder;

    fn schema() -> Schema {
        Schema::new("R", ["A", "B", "C"]).unwrap()
    }

    fn fig1() -> Td {
        TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["*", "b", "c'"])
            .unwrap()
            .build("fig1")
            .unwrap()
    }

    #[test]
    fn freeze_builds_goal_correctly() {
        let (frozen, _, goal) = freeze(&fig1()).unwrap();
        assert_eq!(frozen.len(), 2);
        // Goal: A wildcard (existential), B and C frozen constants.
        assert_eq!(goal.pattern()[0], None);
        assert!(goal.pattern()[1].is_some());
        assert!(goal.pattern()[2].is_some());
    }

    #[test]
    fn every_td_implies_itself() {
        let td = fig1();
        let verdict = implies(std::slice::from_ref(&td), &td, ChaseBudget::default()).unwrap();
        match verdict {
            InferenceVerdict::Implied(proof) => {
                let (frozen, _, goal) = freeze(&td).unwrap();
                proof
                    .verify(&frozen, std::slice::from_ref(&td), Some(&goal))
                    .unwrap();
            }
            other => panic!("expected Implied, got {other:?}"),
        }
    }

    #[test]
    fn trivial_td_implied_by_empty_set() {
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .conclusion(["a", "b", "*"])
            .unwrap()
            .build("triv")
            .unwrap();
        assert!(td.is_trivial());
        let verdict = implies(&[], &td, ChaseBudget::default()).unwrap();
        assert!(verdict.is_implied(), "{verdict:?}");
    }

    #[test]
    fn nontrivial_td_not_implied_by_empty_set() {
        let verdict = implies(&[], &fig1(), ChaseBudget::default()).unwrap();
        match verdict {
            InferenceVerdict::NotImplied(model) => {
                // The countermodel is just the frozen tableau.
                assert_eq!(model.len(), 2);
                assert!(!satisfies(&model, &fig1()));
            }
            other => panic!("expected NotImplied, got {other:?}"),
        }
    }

    #[test]
    fn transitivity_style_inference() {
        // d1: R(a,b,c) & R(a,b',c') => R(a, b, c')   (full: join on A)
        let d1 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["a", "b", "c'"])
            .unwrap()
            .build("d1")
            .unwrap();
        // d0: the weaker fig1 (existential supplier). d1 ⊨ d0.
        let verdict = implies(std::slice::from_ref(&d1), &fig1(), ChaseBudget::default()).unwrap();
        assert!(verdict.is_implied(), "{verdict:?}");
        // And not conversely: fig1 ⊭ d1.
        let verdict = implies(std::slice::from_ref(&fig1()), &d1, ChaseBudget::default()).unwrap();
        match verdict {
            InferenceVerdict::NotImplied(model) => {
                assert!(satisfies(&model, &fig1()));
                assert!(!satisfies(&model, &d1));
            }
            InferenceVerdict::Unknown(_) => {
                // Acceptable only if budget ran out; it should not here.
                panic!("budget should suffice");
            }
            InferenceVerdict::Implied(_) => panic!("fig1 must not imply d1"),
        }
    }

    #[test]
    fn full_decision_procedure() {
        let d1 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["a", "b", "c'"])
            .unwrap()
            .build("d1")
            .unwrap();
        assert!(implies_full(std::slice::from_ref(&d1), &fig1()).unwrap());
        assert!(!implies_full(std::slice::from_ref(&d1), &{
            // R(a,b,c) => R(a',b,c) for a *different* a' — not implied.
            TdBuilder::new(schema())
                .antecedent(["a", "b", "c"])
                .unwrap()
                .antecedent(["a'", "b'", "c'"])
                .unwrap()
                .conclusion(["a'", "b", "c"])
                .unwrap()
                .build("cross")
                .unwrap()
        })
        .unwrap());
        // Rejects embedded premises.
        assert!(implies_full(std::slice::from_ref(&fig1()), &d1).is_err());
    }

    #[test]
    fn unknown_on_divergent_instance() {
        // Two embedded dependencies that feed each other's existential
        // columns with conclusions mixing rows (so the restricted chase
        // really fires): t1 invents C-values for new (A,B) combinations,
        // t2 invents B-values for new (A,C) combinations — the special-edge
        // graph has the cycle B -> C -> B and the chase diverges.
        let t1 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a'", "b'", "c'"])
            .unwrap()
            .conclusion(["a'", "b", "*"])
            .unwrap()
            .build("t1")
            .unwrap();
        let t2 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a'", "b'", "c'"])
            .unwrap()
            .conclusion(["a", "*", "c'"])
            .unwrap()
            .build("t2")
            .unwrap();
        assert!(!crate::chase::weakly_acyclic(&[t1.clone(), t2.clone()]));
        // Goal that the chase can never reach: a full conclusion whose C
        // component must equal a frozen constant, while the chase only ever
        // invents fresh B/C values.
        let d0 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a'", "b'", "c'"])
            .unwrap()
            .conclusion(["a", "b'", "c"])
            .unwrap()
            .build("d0")
            .unwrap();
        let budget = ChaseBudget {
            max_steps: 50,
            max_rows: 100,
            max_rounds: 5,
        };
        let verdict = implies(&[t1, t2], &d0, budget).unwrap();
        match verdict {
            InferenceVerdict::Unknown(report) => {
                assert!(report.steps_fired > 0, "the chase must actually fire");
            }
            other => panic!("expected Unknown on a divergent instance, got {other:?}"),
        }
    }

    #[test]
    fn finite_implication_refutes_where_chase_diverges() {
        // The divergent pair from `unknown_on_divergent_instance`, but with
        // the dovetailed procedure: a 2-row countermodel exists.
        let t1 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a'", "b'", "c'"])
            .unwrap()
            .conclusion(["a'", "b", "*"])
            .unwrap()
            .build("t1")
            .unwrap();
        let t2 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a'", "b'", "c'"])
            .unwrap()
            .conclusion(["a", "*", "c'"])
            .unwrap()
            .build("t2")
            .unwrap();
        let d0 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a'", "b'", "c'"])
            .unwrap()
            .conclusion(["a", "b'", "c"])
            .unwrap()
            .build("d0")
            .unwrap();
        let budget = ChaseBudget {
            max_steps: 50,
            max_rows: 100,
            max_rounds: 5,
        };
        // Plain chase: unknown.
        assert!(implies(&[t1.clone(), t2.clone()], &d0, budget)
            .unwrap()
            .is_unknown());
        // Dovetailed: refuted by a small finite model.
        let search = crate::countermodel::SearchOptions {
            max_rows: 3,
            max_values_per_column: 3,
            max_candidates: 500_000,
        };
        match implies_finite(&[t1.clone(), t2.clone()], &d0, budget, &search).unwrap() {
            InferenceVerdict::NotImplied(model) => {
                assert!(satisfies_all(&model, &[t1, t2]));
                assert!(!satisfies(&model, &d0));
            }
            other => panic!("expected NotImplied, got {other:?}"),
        }
    }

    #[test]
    fn finite_implication_agrees_when_chase_settles() {
        let d1 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["a", "b", "c'"])
            .unwrap()
            .build("d1")
            .unwrap();
        let search = crate::countermodel::SearchOptions::default();
        let v = implies_finite(
            std::slice::from_ref(&d1),
            &fig1(),
            ChaseBudget::default(),
            &search,
        )
        .unwrap();
        assert!(v.is_implied());
    }

    #[test]
    fn redundancy_detection() {
        let d1 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["a", "b", "c'"])
            .unwrap()
            .build("strong")
            .unwrap();
        let set = vec![d1, fig1()];
        // fig1 is implied by `strong`, hence redundant in the set.
        let verdict = redundant(&set, 1, ChaseBudget::default()).unwrap();
        assert!(verdict.is_implied());
        // `strong` is not implied by fig1.
        let verdict = redundant(&set, 0, ChaseBudget::default()).unwrap();
        assert!(verdict.is_not_implied());
    }

    #[test]
    fn equivalence_of_renamed_sets() {
        let a = vec![fig1()];
        let b = vec![fig1().renamed("other-name")];
        let (fwd, bwd) = equivalent(&a, &b, ChaseBudget::default()).unwrap();
        assert!(fwd.iter().all(InferenceVerdict::is_implied));
        assert!(bwd.iter().all(InferenceVerdict::is_implied));
    }

    #[test]
    fn countermodels_satisfy_premises() {
        // Whenever NotImplied is returned, the model must satisfy D and
        // violate D0 — check on a couple of instances.
        let d1 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["a", "b'", "c"])
            .unwrap()
            .build("swap")
            .unwrap();
        let d0 = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a'", "b", "c'"])
            .unwrap()
            .conclusion(["a'", "b", "c"])
            .unwrap()
            .build("join-b")
            .unwrap();
        if let InferenceVerdict::NotImplied(model) =
            implies(std::slice::from_ref(&d1), &d0, ChaseBudget::default()).unwrap()
        {
            assert!(satisfies_all(&model, std::slice::from_ref(&d1)));
            assert!(!satisfies(&model, &d0));
        } else {
            panic!("expected NotImplied");
        }
    }
}
