//! Template dependencies.
//!
//! A *template dependency* (Sadri & Ullman 1980) is a statement
//!
//! ```text
//! R(a, b, …, c) & R(a′, b′, …, c′) & … & R(a″, b″, …, c″)   (the antecedents)
//!     ⇒ R(a*, b*, …, c*)                                      (the conclusion)
//! ```
//!
//! meaning that whenever tuples matching the antecedent pattern are in the
//! database, a tuple matching the conclusion pattern is too. Symbols in the
//! antecedents are universally quantified; conclusion symbols that do not
//! appear in the antecedents are existentially quantified. If every
//! conclusion symbol appears among the antecedents the dependency is *full*,
//! otherwise *embedded*.
//!
//! The paper's **typing restriction** — "since variables in different columns
//! must range over different sets of individuals, no variable can appear in
//! two different columns" — is enforced structurally: a [`Var`] is scoped to
//! the column it sits in, and the name-based [`TdBuilder`] rejects any
//! attempt to reuse one name across columns.

use std::collections::HashMap;

use crate::error::{CoreError, Result};
use crate::ids::{AttrId, Var};
use crate::schema::Schema;

/// One row of a template: a variable per column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TdRow {
    cells: Vec<Var>,
}

impl TdRow {
    /// Creates a row from per-column variables.
    pub fn new(cells: impl IntoIterator<Item = Var>) -> Self {
        Self {
            cells: cells.into_iter().collect(),
        }
    }

    /// Creates a row from raw `u32` variable ids.
    pub fn from_raw(cells: impl IntoIterator<Item = u32>) -> Self {
        Self::new(cells.into_iter().map(Var::new))
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.cells.len()
    }

    /// The variable in column `col`.
    ///
    /// # Panics
    /// Panics if `col` is out of range.
    pub fn get(&self, col: AttrId) -> Var {
        self.cells[col.index()]
    }

    /// Iterates over `(AttrId, Var)` pairs in column order.
    pub fn components(&self) -> impl Iterator<Item = (AttrId, Var)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, &v)| (AttrId::from(i), v))
    }

    /// The underlying variable slice.
    pub fn cells(&self) -> &[Var] {
        &self.cells
    }
}

/// A typed template dependency over a single relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Td {
    schema: Schema,
    name: String,
    antecedents: Vec<TdRow>,
    conclusion: TdRow,
}

impl Td {
    /// Creates a dependency from raw rows, validating arities and
    /// non-emptiness. Typing cannot be violated at this level because
    /// variables are column-scoped.
    ///
    /// # Errors
    ///
    /// Fails when the antecedent set is empty or any row's arity differs
    /// from the schema's.
    pub fn new(
        schema: Schema,
        antecedents: Vec<TdRow>,
        conclusion: TdRow,
        name: impl Into<String>,
    ) -> Result<Self> {
        if antecedents.is_empty() {
            return Err(CoreError::EmptyAntecedents);
        }
        for row in antecedents.iter().chain(std::iter::once(&conclusion)) {
            if row.arity() != schema.arity() {
                return Err(CoreError::ArityMismatch {
                    expected: schema.arity(),
                    got: row.arity(),
                });
            }
        }
        Ok(Self {
            schema,
            name: name.into(),
            antecedents,
            conclusion,
        })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The dependency's name (for display and proofs).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The antecedent rows.
    pub fn antecedents(&self) -> &[TdRow] {
        &self.antecedents
    }

    /// The conclusion row.
    pub fn conclusion(&self) -> &TdRow {
        &self.conclusion
    }

    /// Number of antecedent rows. The paper's reduction produces
    /// dependencies with at most **five** antecedents.
    pub fn antecedent_count(&self) -> usize {
        self.antecedents.len()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// `true` if the conclusion variable in `col` also occurs in some
    /// antecedent (i.e. is universally quantified).
    pub fn is_universal_at(&self, col: AttrId) -> bool {
        let v = self.conclusion.get(col);
        self.antecedents.iter().any(|r| r.get(col) == v)
    }

    /// `true` if the conclusion variable in `col` is existentially
    /// quantified (occurs in no antecedent).
    pub fn is_existential_at(&self, col: AttrId) -> bool {
        !self.is_universal_at(col)
    }

    /// Columns in which the conclusion is existentially quantified.
    pub fn existential_columns(&self) -> Vec<AttrId> {
        self.schema
            .attr_ids()
            .filter(|&c| self.is_existential_at(c))
            .collect()
    }

    /// `true` if every conclusion component appears among the antecedents
    /// ("if a*, b*, …, c* all appear among the antecedents, then the
    /// dependency is said to be full").
    pub fn is_full(&self) -> bool {
        self.schema.attr_ids().all(|c| self.is_universal_at(c))
    }

    /// `true` if the dependency is embedded (not full).
    pub fn is_embedded(&self) -> bool {
        !self.is_full()
    }

    /// `true` if the dependency holds in *every* database: some antecedent
    /// row already witnesses the conclusion (it agrees with the conclusion
    /// on every universally quantified column).
    pub fn is_trivial(&self) -> bool {
        self.antecedents.iter().any(|row| {
            self.schema
                .attr_ids()
                .all(|c| self.is_existential_at(c) || row.get(c) == self.conclusion.get(c))
        })
    }

    /// Renames variables to a canonical form: per column, variables are
    /// renumbered densely in order of first occurrence (antecedent rows
    /// first, then the conclusion). Two dependencies with identical row
    /// structure compare equal after normalization.
    pub fn normalized(&self) -> Td {
        let arity = self.arity();
        let mut rename: Vec<HashMap<Var, Var>> = vec![HashMap::new(); arity];
        let mut next: Vec<u32> = vec![0; arity];
        let map_row = |row: &TdRow, rename: &mut Vec<HashMap<Var, Var>>, next: &mut Vec<u32>| {
            TdRow::new(row.components().map(|(c, v)| {
                *rename[c.index()].entry(v).or_insert_with(|| {
                    let nv = Var::new(next[c.index()]);
                    next[c.index()] += 1;
                    nv
                })
            }))
        };
        let antecedents: Vec<TdRow> = self
            .antecedents
            .iter()
            .map(|r| map_row(r, &mut rename, &mut next))
            .collect();
        let conclusion = map_row(&self.conclusion, &mut rename, &mut next);
        Td {
            schema: self.schema.clone(),
            name: self.name.clone(),
            antecedents,
            conclusion,
        }
    }

    /// `true` if `self` and `other` are identical up to a per-column
    /// renaming of variables (with rows in the same order).
    pub fn eq_up_to_renaming(&self, other: &Td) -> bool {
        if self.schema != other.schema {
            return false;
        }
        let a = self.normalized();
        let b = other.normalized();
        a.antecedents == b.antecedents && a.conclusion == b.conclusion
    }

    /// Returns a copy with a different name.
    pub fn renamed(&self, name: impl Into<String>) -> Td {
        let mut td = self.clone();
        td.name = name.into();
        td
    }

    /// Largest variable id used per column, if any. Useful when generating
    /// fresh variables for transformations.
    pub fn max_var_per_column(&self) -> Vec<Option<Var>> {
        let mut out: Vec<Option<Var>> = vec![None; self.arity()];
        for row in self
            .antecedents
            .iter()
            .chain(std::iter::once(&self.conclusion))
        {
            for (c, v) in row.components() {
                let slot = &mut out[c.index()];
                *slot = Some(match *slot {
                    Some(m) if m >= v => m,
                    _ => v,
                });
            }
        }
        out
    }
}

/// Builds a [`Td`] from **named** variables, enforcing the paper's typing
/// restriction by name.
///
/// The names `"*"` and `"_"` are anonymous: each occurrence denotes a fresh
/// variable (in the conclusion this yields an existentially quantified
/// component).
///
/// ```
/// use td_core::prelude::*;
/// let schema = Schema::new("R", ["A", "B", "C"]).unwrap();
/// let td = TdBuilder::new(schema)
///     .antecedent(["a", "b", "c"]).unwrap()
///     .antecedent(["a", "b'", "c'"]).unwrap()
///     .conclusion(["*", "b", "c'"]).unwrap()
///     .build("fig1").unwrap();
/// assert_eq!(td.antecedent_count(), 2);
/// assert!(td.is_embedded());
/// ```
#[derive(Debug, Clone)]
pub struct TdBuilder {
    schema: Schema,
    /// name -> (column, var); typing restriction bans cross-column reuse.
    names: HashMap<String, (AttrId, Var)>,
    next_var: Vec<u32>,
    antecedents: Vec<TdRow>,
    conclusion: Option<TdRow>,
}

impl TdBuilder {
    /// Starts building a dependency over `schema`.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        Self {
            schema,
            names: HashMap::new(),
            next_var: vec![0; arity],
            antecedents: Vec::new(),
            conclusion: None,
        }
    }

    fn fresh_var(&mut self, col: AttrId) -> Var {
        let v = Var::new(self.next_var[col.index()]);
        self.next_var[col.index()] += 1;
        v
    }

    fn resolve(&mut self, col: AttrId, name: &str) -> Result<Var> {
        if name == "*" || name == "_" {
            return Ok(self.fresh_var(col));
        }
        if let Some(&(owner, var)) = self.names.get(name) {
            if owner != col {
                return Err(CoreError::TypingViolation {
                    name: name.to_owned(),
                    first_column: self.schema.attr_name(owner).to_owned(),
                    second_column: self.schema.attr_name(col).to_owned(),
                });
            }
            return Ok(var);
        }
        let var = self.fresh_var(col);
        self.names.insert(name.to_owned(), (col, var));
        Ok(var)
    }

    fn resolve_row<I, S>(&mut self, cells: I) -> Result<TdRow>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut vars = Vec::with_capacity(self.schema.arity());
        for (i, cell) in cells.into_iter().enumerate() {
            if i >= self.schema.arity() {
                return Err(CoreError::ArityMismatch {
                    expected: self.schema.arity(),
                    got: i + 1,
                });
            }
            vars.push(self.resolve(AttrId::from(i), cell.as_ref())?);
        }
        if vars.len() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                expected: self.schema.arity(),
                got: vars.len(),
            });
        }
        Ok(TdRow::new(vars))
    }

    /// Adds an antecedent row of named variables.
    ///
    /// # Errors
    ///
    /// Fails when the row has the wrong number of cells for the schema.
    pub fn antecedent<I, S>(mut self, cells: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let row = self.resolve_row(cells)?;
        self.antecedents.push(row);
        Ok(self)
    }

    /// Sets the conclusion row of named variables. Names not used in any
    /// antecedent become existentially quantified.
    ///
    /// # Errors
    ///
    /// Fails when the row has the wrong number of cells for the schema.
    pub fn conclusion<I, S>(mut self, cells: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let row = self.resolve_row(cells)?;
        self.conclusion = Some(row);
        Ok(self)
    }

    /// Finishes, validating the dependency.
    ///
    /// # Errors
    ///
    /// Fails when no conclusion was set, or when [`Td::new`] rejects the
    /// assembled dependency.
    pub fn build(self, name: impl Into<String>) -> Result<Td> {
        let conclusion = self.conclusion.ok_or(CoreError::MissingConclusion)?;
        Td::new(self.schema, self.antecedents, conclusion, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new("R", ["A", "B", "C"]).unwrap()
    }

    fn fig1() -> Td {
        TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["*", "b", "c'"])
            .unwrap()
            .build("fig1")
            .unwrap()
    }

    #[test]
    fn fig1_shape() {
        let td = fig1();
        assert_eq!(td.antecedent_count(), 2);
        assert_eq!(td.arity(), 3);
        assert!(td.is_embedded());
        assert!(!td.is_full());
        assert_eq!(td.existential_columns(), vec![AttrId::new(0)]);
        assert!(td.is_universal_at(AttrId::new(1)));
        assert!(td.is_universal_at(AttrId::new(2)));
        assert!(!td.is_trivial());
    }

    #[test]
    fn shared_vars_are_shared() {
        let td = fig1();
        // Both antecedents share the A-variable.
        let a0 = td.antecedents()[0].get(AttrId::new(0));
        let a1 = td.antecedents()[1].get(AttrId::new(0));
        assert_eq!(a0, a1);
        // Conclusion's B-variable equals row 0's.
        assert_eq!(
            td.conclusion().get(AttrId::new(1)),
            td.antecedents()[0].get(AttrId::new(1))
        );
        // Conclusion's C-variable equals row 1's.
        assert_eq!(
            td.conclusion().get(AttrId::new(2)),
            td.antecedents()[1].get(AttrId::new(2))
        );
    }

    #[test]
    fn typing_violation_detected() {
        let err = TdBuilder::new(schema())
            .antecedent(["x", "x", "c"]) // `x` reused across columns A and B
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::TypingViolation {
                name: "x".into(),
                first_column: "A".into(),
                second_column: "B".into(),
            }
        );
    }

    #[test]
    fn full_dependency() {
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a'", "b", "c'"])
            .unwrap()
            .conclusion(["a", "b", "c'"])
            .unwrap()
            .build("full")
            .unwrap();
        assert!(td.is_full());
        assert!(td.existential_columns().is_empty());
        assert!(!td.is_trivial());
    }

    #[test]
    fn trivial_dependency_detected() {
        // Conclusion repeats the first antecedent exactly.
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["a", "b", "c"])
            .unwrap()
            .build("triv")
            .unwrap();
        assert!(td.is_trivial());

        // Conclusion agrees with antecedent 0 on universals, existential in A.
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .conclusion(["*", "b", "c"])
            .unwrap()
            .build("triv2")
            .unwrap();
        assert!(td.is_trivial());

        assert!(!fig1().is_trivial());
    }

    #[test]
    fn anonymous_vars_are_fresh_each_time() {
        let td = TdBuilder::new(schema())
            .antecedent(["_", "b", "_"])
            .unwrap()
            .conclusion(["_", "b", "_"])
            .unwrap()
            .build("anon")
            .unwrap();
        // Anonymous antecedent cells are distinct from anonymous conclusion
        // cells, so A and C are existential in the conclusion.
        assert_eq!(
            td.existential_columns(),
            vec![AttrId::new(0), AttrId::new(2)]
        );
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = TdBuilder::new(schema()).antecedent(["a", "b"]).unwrap_err();
        assert_eq!(
            err,
            CoreError::ArityMismatch {
                expected: 3,
                got: 2
            }
        );
        let err = TdBuilder::new(schema())
            .antecedent(["a", "b", "c", "d"])
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::ArityMismatch {
                expected: 3,
                got: 4
            }
        );
    }

    #[test]
    fn missing_pieces_rejected() {
        let err = TdBuilder::new(schema()).build("x").unwrap_err();
        assert_eq!(err, CoreError::MissingConclusion);
        let err = TdBuilder::new(schema())
            .conclusion(["a", "b", "c"])
            .unwrap()
            .build("x")
            .unwrap_err();
        assert_eq!(err, CoreError::EmptyAntecedents);
    }

    #[test]
    fn normalization_and_renaming_equality() {
        let td1 = fig1();
        // Same dependency, different variable names.
        let td2 = TdBuilder::new(schema())
            .antecedent(["s", "t", "u"])
            .unwrap()
            .antecedent(["s", "t2", "u2"])
            .unwrap()
            .conclusion(["*", "t", "u2"])
            .unwrap()
            .build("fig1-renamed")
            .unwrap();
        assert!(td1.eq_up_to_renaming(&td2));

        // A genuinely different dependency.
        let td3 = TdBuilder::new(schema())
            .antecedent(["s", "t", "u"])
            .unwrap()
            .antecedent(["s2", "t2", "u2"]) // A no longer shared
            .unwrap()
            .conclusion(["*", "t", "u2"])
            .unwrap()
            .build("other")
            .unwrap();
        assert!(!td1.eq_up_to_renaming(&td3));
    }

    #[test]
    fn max_var_per_column() {
        let td = fig1();
        let maxes = td.max_var_per_column();
        assert_eq!(maxes.len(), 3);
        // Column A: vars a and * (2 vars -> max id 1).
        assert_eq!(maxes[0], Some(Var::new(1)));
        // Columns B, C: two named vars each.
        assert_eq!(maxes[1], Some(Var::new(1)));
        assert_eq!(maxes[2], Some(Var::new(1)));
    }

    #[test]
    fn renamed_keeps_structure() {
        let td = fig1().renamed("copy");
        assert_eq!(td.name(), "copy");
        assert!(td.eq_up_to_renaming(&fig1()));
    }
}
