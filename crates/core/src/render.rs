//! Human-readable and Graphviz renderings of dependencies and diagrams.
//!
//! * [`td_to_string`] / `impl Display for Td` — the schematic notation of
//!   the paper: `R(a, b, c) & R(a, b', c') => R(a*, b, c')`.
//! * [`diagram_to_dot`] — Graphviz source for a [`Diagram`] (Fig. 1 style).
//! * [`diagram_to_ascii`] — a terminal-friendly adjacency listing.

use std::fmt::Write as _;

use crate::diagram::Diagram;
use crate::ids::{AttrId, Var};
use crate::td::{Td, TdRow};

/// A short lowercase stem for an attribute name, used to render variables:
/// `SUPPLIER` → `supplier`, `A0'` → `a0p` (primes become `p`).
fn attr_stem(name: &str) -> String {
    let mut s = String::with_capacity(name.len());
    for ch in name.chars() {
        match ch {
            '\'' => s.push('p'),
            c if c.is_alphanumeric() => s.push(c.to_ascii_lowercase()),
            _ => {}
        }
    }
    if s.is_empty() {
        s.push('x');
    }
    s
}

/// Renders one variable: stem of its column plus the variable index, with a
/// `*` suffix when `existential`.
fn var_name(td: &Td, col: AttrId, var: Var, existential: bool) -> String {
    let stem = attr_stem(td.schema().attr_name(col));
    if existential {
        format!("{stem}{}*", var.raw())
    } else {
        format!("{stem}{}", var.raw())
    }
}

fn render_row(td: &Td, row: &TdRow, is_conclusion: bool, out: &mut String) {
    out.push_str(td.schema().relation());
    out.push('(');
    for (i, (col, var)) in row.components().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let existential = is_conclusion && td.is_existential_at(col);
        out.push_str(&var_name(td, col, var, existential));
    }
    out.push(')');
}

/// The paper's schematic notation for a dependency.
pub fn td_to_string(td: &Td) -> String {
    let mut out = String::new();
    for (i, row) in td.antecedents().iter().enumerate() {
        if i > 0 {
            out.push_str(" & ");
        }
        render_row(td, row, false, &mut out);
    }
    out.push_str(" => ");
    render_row(td, td.conclusion(), true, &mut out);
    out
}

impl std::fmt::Display for Td {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.name(), td_to_string(self))
    }
}

/// Graphviz (`dot`) source for a diagram. Antecedent nodes are numbered
/// from 1 as in the paper; the conclusion is `*`. Parallel edges carry the
/// attribute name as label.
pub fn diagram_to_dot(d: &Diagram, graph_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{graph_name}\" {{");
    let _ = writeln!(out, "  layout=neato;");
    let _ = writeln!(out, "  node [shape=circle, fontsize=11];");
    let mut antecedent_no = 0usize;
    for n in 0..d.node_count() {
        if n == d.conclusion_node() {
            let _ = writeln!(out, "  n{n} [label=\"*\", shape=doublecircle];");
        } else {
            antecedent_no += 1;
            let _ = writeln!(out, "  n{n} [label=\"{antecedent_no}\"];");
        }
    }
    for (a, b, attr) in d.edges() {
        let label = d.schema().attr_name(attr);
        let _ = writeln!(out, "  n{a} -- n{b} [label=\"{label}\"];");
    }
    out.push_str("}\n");
    out
}

/// Renders a violation of `td` (an antecedent binding with no conclusion
/// witness, as produced by
/// [`find_violation`](crate::satisfaction::find_violation)) as a
/// human-readable report: the matched tuples and the missing one.
pub fn render_violation(td: &Td, binding: &crate::homomorphism::Binding) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "violation of {}:", td.name());
    for (i, row) in td.antecedents().iter().enumerate() {
        let vals: Vec<String> = row
            .components()
            .map(|(c, v)| match binding.get(c, v) {
                Some(val) => val.raw().to_string(),
                None => "?".to_owned(),
            })
            .collect();
        let _ = writeln!(
            out,
            "  matched antecedent {}: {}({})",
            i + 1,
            td.schema().relation(),
            vals.join(", ")
        );
    }
    let vals: Vec<String> = td
        .conclusion()
        .components()
        .map(|(c, v)| match binding.get(c, v) {
            Some(val) => val.raw().to_string(),
            None => "*".to_owned(),
        })
        .collect();
    let _ = writeln!(
        out,
        "  missing conclusion:   {}({})   (* = any value)",
        td.schema().relation(),
        vals.join(", ")
    );
    out
}

/// A terminal-friendly rendering of a diagram: one line per edge, grouped
/// by attribute.
pub fn diagram_to_ascii(d: &Diagram) -> String {
    let mut out = String::new();
    let name_of = |n: usize| {
        if n == d.conclusion_node() {
            "*".to_owned()
        } else {
            // Antecedents are numbered from 1 in the paper's figures.
            let no = if n < d.conclusion_node() { n + 1 } else { n };
            no.to_string()
        }
    };
    let _ = writeln!(
        out,
        "diagram over {} ({} nodes, conclusion *)",
        d.schema().summary(),
        d.node_count()
    );
    for (attr, attr_name) in d.schema().attrs() {
        let edges: Vec<(usize, usize)> = d
            .edges()
            .filter(|&(_, _, a)| a == attr)
            .map(|(x, y, _)| (x, y))
            .collect();
        if edges.is_empty() {
            continue;
        }
        let _ = write!(out, "  {attr_name}: ");
        for (i, (x, y)) in edges.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ", ");
            }
            let _ = write!(out, "{}–{}", name_of(*x), name_of(*y));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::td::TdBuilder;

    fn fig1() -> Td {
        let schema = Schema::new("R", ["A", "B", "C"]).unwrap();
        TdBuilder::new(schema)
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["*", "b", "c'"])
            .unwrap()
            .build("fig1")
            .unwrap()
    }

    #[test]
    fn attr_stems() {
        assert_eq!(attr_stem("SUPPLIER"), "supplier");
        assert_eq!(attr_stem("A0'"), "a0p");
        assert_eq!(attr_stem("E'"), "ep");
        assert_eq!(attr_stem("''"), "pp");
        assert_eq!(attr_stem("--"), "x");
    }

    #[test]
    fn td_rendering_matches_paper_style() {
        let s = td_to_string(&fig1());
        assert_eq!(s, "R(a0, b0, c0) & R(a0, b1, c1) => R(a1*, b0, c1)");
        let display = fig1().to_string();
        assert!(display.starts_with("fig1: "));
    }

    #[test]
    fn full_td_has_no_star() {
        let schema = Schema::new("R", ["A", "B"]).unwrap();
        let td = TdBuilder::new(schema)
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b"])
            .unwrap()
            .conclusion(["a'", "b"])
            .unwrap()
            .build("full")
            .unwrap();
        assert!(!td_to_string(&td).contains('*'));
    }

    #[test]
    fn violation_reports_are_readable() {
        use crate::instance::Instance;
        use crate::satisfaction::find_violation;
        let td = fig1();
        let mut db = Instance::new(td.schema().clone());
        db.insert_values([0, 0, 0]).unwrap();
        db.insert_values([0, 1, 1]).unwrap();
        let v = find_violation(&db, &td).unwrap();
        let report = render_violation(&td, &v);
        assert!(report.contains("violation of fig1"));
        assert!(report.contains("matched antecedent 1"));
        assert!(report.contains("matched antecedent 2"));
        // The missing conclusion has a wildcard in the existential column.
        assert!(report.contains("missing conclusion:   R(*,"));
    }

    #[test]
    fn dot_output_contains_nodes_and_labels() {
        let d = Diagram::from_td(&fig1());
        let dot = diagram_to_dot(&d, "fig1");
        assert!(dot.contains("graph \"fig1\""));
        assert!(dot.contains("label=\"*\""));
        assert!(dot.contains("label=\"A\""));
        assert!(dot.contains("n0 -- n1"));
        assert_eq!(dot.matches(" -- ").count(), 3);
    }

    #[test]
    fn ascii_output_groups_by_attribute() {
        let d = Diagram::from_td(&fig1());
        let s = diagram_to_ascii(&d);
        assert!(s.contains("A: 1–2"));
        assert!(s.contains("B: 1–*"));
        assert!(s.contains("C: 2–*"));
    }
}
