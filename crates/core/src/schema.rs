//! Relation schemas.
//!
//! The paper fixes a single relation `R` "with a fixed number of columns or
//! attributes A, B, …, C" and a *typing restriction*: "the domains of the
//! various attributes are disjoint". A [`Schema`] records the relation name
//! and the ordered attribute list; disjointness of domains is enforced
//! structurally throughout the crate (values and variables are scoped per
//! column; see [`crate::ids`]).

use crate::error::{CoreError, Result};
use crate::ids::AttrId;

/// The schema of the single relation: a name and an ordered list of
/// attribute names.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    relation: String,
    attrs: Vec<String>,
}

impl Schema {
    /// Creates a schema. Fails on an empty attribute list or duplicate
    /// attribute names.
    pub fn new<R, I, A>(relation: R, attrs: I) -> Result<Self>
    where
        R: Into<String>,
        I: IntoIterator<Item = A>,
        A: Into<String>,
    {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        if attrs.is_empty() {
            return Err(CoreError::EmptySchema);
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(CoreError::DuplicateAttribute(a.clone()));
            }
        }
        Ok(Self {
            relation: relation.into(),
            attrs,
        })
    }

    /// The relation name.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Number of attributes (columns).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The attribute id for `name`, if present.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attrs.iter().position(|a| a == name).map(AttrId::from)
    }

    /// The attribute id for `name`, as a `Result`.
    ///
    /// # Errors
    ///
    /// Fails with [`CoreError::UnknownAttribute`] when the schema has no
    /// attribute named `name`.
    pub fn require_attr(&self, name: &str) -> Result<AttrId> {
        self.attr_id(name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_owned()))
    }

    /// The name of attribute `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attrs[id.index()]
    }

    /// Iterates over `(AttrId, name)` pairs in column order.
    pub fn attrs(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId::from(i), a.as_str()))
    }

    /// All attribute ids in column order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> {
        (0..self.arity()).map(AttrId::from)
    }

    /// Checks that `other` is the same schema; returns a
    /// [`CoreError::SchemaMismatch`] otherwise.
    pub fn expect_same(&self, other: &Schema) -> Result<()> {
        if self == other {
            Ok(())
        } else {
            Err(CoreError::SchemaMismatch {
                expected: self.summary(),
                got: other.summary(),
            })
        }
    }

    /// A one-line human-readable summary, e.g. `R(SUPPLIER, STYLE, SIZE)`.
    pub fn summary(&self) -> String {
        format!("{}({})", self.relation, self.attrs.join(", "))
    }
}

impl std::fmt::Display for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn garment() -> Schema {
        Schema::new("R", ["SUPPLIER", "STYLE", "SIZE"]).unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let s = garment();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.relation(), "R");
        assert_eq!(s.attr_id("STYLE"), Some(AttrId::new(1)));
        assert_eq!(s.attr_id("COLOR"), None);
        assert_eq!(s.attr_name(AttrId::new(2)), "SIZE");
        assert_eq!(s.summary(), "R(SUPPLIER, STYLE, SIZE)");
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        assert_eq!(
            Schema::new("R", Vec::<String>::new()).unwrap_err(),
            CoreError::EmptySchema
        );
        assert_eq!(
            Schema::new("R", ["A", "B", "A"]).unwrap_err(),
            CoreError::DuplicateAttribute("A".into())
        );
    }

    #[test]
    fn require_attr_errors() {
        let s = garment();
        assert!(s.require_attr("SIZE").is_ok());
        assert_eq!(
            s.require_attr("X").unwrap_err(),
            CoreError::UnknownAttribute("X".into())
        );
    }

    #[test]
    fn expect_same_detects_mismatch() {
        let s = garment();
        let t = Schema::new("R", ["A", "B"]).unwrap();
        assert!(s.expect_same(&s.clone()).is_ok());
        assert!(matches!(
            s.expect_same(&t),
            Err(CoreError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn attr_iteration_order() {
        let s = garment();
        let names: Vec<&str> = s.attrs().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["SUPPLIER", "STYLE", "SIZE"]);
        let ids: Vec<usize> = s.attr_ids().map(|a| a.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
