//! Replayable chase proofs.
//!
//! A positive inference answer ("`D ⊨ D₀`") is only as trustworthy as the
//! engine that produced it, unless it ships a certificate. A [`ChaseProof`]
//! records every fired trigger — which dependency, under which variable
//! binding, producing which row — and [`ChaseProof::verify`] replays it
//! against the initial tableau using nothing but the satisfaction machinery,
//! failing loudly on any discrepancy.

use crate::error::{CoreError, Result};
use crate::homomorphism::Binding;
use crate::ids::{AttrId, Value, Var};
use crate::instance::Instance;
use crate::td::Td;
use crate::tuple::Tuple;

use super::Goal;

/// One fired trigger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaseStep {
    /// Index of the dependency in the dependency set.
    pub td_index: usize,
    /// Name of the dependency (redundant, for readability of proofs).
    pub td_name: String,
    /// The full binding used (universal and existential variables).
    pub binding: Vec<(AttrId, Var, Value)>,
    /// The row added by this step.
    pub new_row: Tuple,
}

/// A replayable certificate that a chase run reached its goal (or simply a
/// log of the run, when no goal was given).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaseProof {
    /// Fired triggers, in order.
    pub steps: Vec<ChaseStep>,
    /// The goal-matching tuple, if a goal was reached.
    pub goal_row: Option<Tuple>,
}

impl ChaseProof {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Replays the proof: starting from `initial`, re-fires every step,
    /// checking that (a) the recorded binding really maps the dependency's
    /// antecedents into the current state, (b) the recorded row is exactly
    /// the conclusion under that binding, and (c) if a goal is recorded, the
    /// final state contains it. Returns the final state.
    ///
    /// # Errors
    ///
    /// Fails with [`CoreError::ProofReplay`] when any step's dependency
    /// index, binding, antecedents, or recorded row fails to re-check, or
    /// when the recorded goal row is absent or mismatched.
    pub fn verify(&self, initial: &Instance, tds: &[Td], goal: Option<&Goal>) -> Result<Instance> {
        let mut state = initial.clone();
        // td-lint: allow(budget-poll) replay of a finite, already-materialized certificate:
        // bounded by the recorded step count, not by any search.
        for (i, step) in self.steps.iter().enumerate() {
            let td = tds.get(step.td_index).ok_or_else(|| {
                CoreError::ProofReplay(format!(
                    "step {i}: dependency index {} out of range",
                    step.td_index
                ))
            })?;
            let binding = Binding::from_entries(td.arity(), step.binding.iter().copied())
                .ok_or_else(|| CoreError::ProofReplay(format!("step {i}: inconsistent binding")))?;
            // (a) every antecedent row must be present under the binding.
            // td-lint: allow(budget-poll) bounded by the TD's antecedent count × arity.
            for (r, row) in td.antecedents().iter().enumerate() {
                let mut vals = Vec::with_capacity(td.arity());
                for (c, v) in row.components() {
                    let val = binding.get(c, v).ok_or_else(|| {
                        CoreError::ProofReplay(format!(
                            "step {i}: antecedent {r} has unbound variable {v} in column {c}"
                        ))
                    })?;
                    vals.push(val);
                }
                let t = Tuple::new(vals);
                if !state.contains(&t) {
                    return Err(CoreError::ProofReplay(format!(
                        "step {i}: antecedent {r} tuple {t} not present in state"
                    )));
                }
            }
            // (b) the new row must be the bound conclusion.
            let mut vals = Vec::with_capacity(td.arity());
            for (c, v) in td.conclusion().components() {
                let val = binding.get(c, v).ok_or_else(|| {
                    CoreError::ProofReplay(format!(
                        "step {i}: conclusion variable {v} in column {c} unbound \
                         (proofs must record existential choices)"
                    ))
                })?;
                vals.push(val);
            }
            let conclusion = Tuple::new(vals);
            if conclusion != step.new_row {
                return Err(CoreError::ProofReplay(format!(
                    "step {i}: recorded row {} differs from bound conclusion {}",
                    step.new_row, conclusion
                )));
            }
            state.insert(conclusion)?;
        }
        if let Some(goal_row) = &self.goal_row {
            if !state.contains(goal_row) {
                return Err(CoreError::ProofReplay(format!(
                    "goal row {goal_row} not present after replay"
                )));
            }
            if let Some(g) = goal {
                if !g.met_by(goal_row) {
                    return Err(CoreError::ProofReplay(format!(
                        "recorded goal row {goal_row} does not match the goal pattern"
                    )));
                }
            }
        } else if goal.is_some() {
            return Err(CoreError::ProofReplay(
                "goal supplied but proof records no goal row".into(),
            ));
        }
        Ok(state)
    }
}

impl ChaseProof {
    /// Greedily minimizes the proof: repeatedly tries to drop steps (from
    /// the last to the first) while the proof still verifies against
    /// `initial`, `tds` and `goal`. The result is a *1-minimal* proof —
    /// no single remaining step can be removed — though not necessarily a
    /// globally smallest one.
    ///
    /// Useful for turning the fair chase's exploratory proofs into concise
    /// certificates (the guided part (A) proofs are already minimal-ish).
    ///
    /// # Errors
    ///
    /// Fails when the input proof does not verify in the first place.
    pub fn minimized(
        &self,
        initial: &Instance,
        tds: &[Td],
        goal: Option<&Goal>,
    ) -> Result<ChaseProof> {
        // The input must verify to begin with.
        self.verify(initial, tds, goal)?;
        let mut current = self.clone();
        // td-lint: allow(budget-poll) greedy 1-minimization over a finite certificate: every
        // outer round removes at least one step or terminates, so the whole loop is bounded
        // by (proof length)² verify calls — an offline tool, not a serve-path search.
        loop {
            let mut changed = false;
            let mut i = current.steps.len();
            // td-lint: allow(budget-poll) bounded descending index over the current proof.
            while i > 0 {
                i -= 1;
                let mut candidate = current.clone();
                candidate.steps.remove(i);
                if candidate.verify(initial, tds, goal).is_ok() {
                    current = candidate;
                    changed = true;
                }
            }
            if !changed {
                return Ok(current);
            }
        }
    }
}

impl std::fmt::Display for ChaseProof {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "chase proof: {} step(s)", self.steps.len())?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  {i}: fire {} -> {}", s.td_name, s.new_row)?;
        }
        if let Some(g) = &self.goal_row {
            writeln!(f, "  goal row: {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{ChaseBudget, ChaseEngine, ChaseOutcome, ChasePolicy};
    use crate::schema::Schema;
    use crate::td::TdBuilder;

    fn schema() -> Schema {
        Schema::new("R", ["A", "B"]).unwrap()
    }

    /// Run the engine on the full "product" dependency (which genuinely
    /// fires in the restricted chase) and verify the resulting proof.
    #[test]
    fn engine_proofs_replay() {
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("product")
            .unwrap();
        let mut initial = Instance::new(schema());
        initial.insert_values([0, 5]).unwrap();
        initial.insert_values([1, 6]).unwrap();
        let tds = vec![td];
        let mut engine = ChaseEngine::new(
            &tds,
            initial.clone(),
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        let outcome = engine.run(None);
        assert_eq!(outcome, ChaseOutcome::Terminated);
        let (final_state, proof) = engine.into_parts();
        assert!(!proof.is_empty(), "the product TD must fire");
        let replayed = proof.verify(&initial, &tds, None).unwrap();
        assert_eq!(replayed.len(), final_state.len());
        for t in final_state.row_slices() {
            assert!(replayed.contains_slice(t));
        }
    }

    #[test]
    fn tampered_proofs_rejected() {
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("product")
            .unwrap();
        let mut initial = Instance::new(schema());
        initial.insert_values([0, 0]).unwrap();
        initial.insert_values([1, 1]).unwrap();
        let tds = vec![td];
        let mut engine = ChaseEngine::new(
            &tds,
            initial.clone(),
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        engine.run(None);
        let (_, mut proof) = engine.into_parts();
        assert!(!proof.is_empty());
        // Tamper with the recorded row.
        proof.steps[0].new_row = Tuple::from_raw([9, 9]);
        let err = proof.verify(&initial, &tds, None).unwrap_err();
        assert!(matches!(err, CoreError::ProofReplay(_)));
    }

    #[test]
    fn minimization_prunes_useless_steps() {
        use crate::chase::Goal;
        use crate::ids::Value;
        // Product TD over {(0,0),(1,1)}: the full chase adds (0,1) and
        // (1,0); if the goal is only (0,1), the (1,0) step is prunable.
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("product")
            .unwrap();
        let tds = vec![td];
        let mut initial = Instance::new(schema());
        initial.insert_values([0, 0]).unwrap();
        initial.insert_values([1, 1]).unwrap();
        let goal = Goal::new(vec![Some(Value::new(0)), Some(Value::new(1))]);
        let mut engine = ChaseEngine::new(
            &tds,
            initial.clone(),
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        // Run WITHOUT the goal so the engine saturates fully, then attach
        // the goal row manually.
        assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        let (state, mut proof) = engine.into_parts();
        let row = goal.find_in(&state).expect("product contains (0,1)");
        proof.goal_row = Some(Tuple::from_slice(state.get(row).unwrap()));
        assert_eq!(proof.len(), 2, "both cross tuples were added");
        let min = proof.minimized(&initial, &tds, Some(&goal)).unwrap();
        assert_eq!(min.len(), 1, "only the (0,1) step is needed");
        min.verify(&initial, &tds, Some(&goal)).unwrap();
    }

    #[test]
    fn minimization_requires_valid_input() {
        let proof = ChaseProof {
            steps: vec![ChaseStep {
                td_index: 7,
                td_name: "ghost".into(),
                binding: vec![],
                new_row: Tuple::from_raw([0, 0]),
            }],
            goal_row: None,
        };
        let initial = Instance::new(schema());
        assert!(proof.minimized(&initial, &[], None).is_err());
    }

    #[test]
    fn missing_goal_row_rejected() {
        let proof = ChaseProof::default();
        let goal = Goal::new(vec![None, None]);
        let initial = Instance::new(schema());
        let err = proof.verify(&initial, &[], Some(&goal)).unwrap_err();
        assert!(matches!(err, CoreError::ProofReplay(_)));
    }

    #[test]
    fn display_lists_steps() {
        let proof = ChaseProof {
            steps: vec![ChaseStep {
                td_index: 0,
                td_name: "d1".into(),
                binding: vec![],
                new_row: Tuple::from_raw([1, 2]),
            }],
            goal_row: Some(Tuple::from_raw([1, 2])),
        };
        let s = proof.to_string();
        assert!(s.contains("fire d1"));
        assert!(s.contains("goal row"));
    }
}
