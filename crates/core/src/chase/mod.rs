//! The chase: a fair, budgeted, certificate-producing procedure for
//! reasoning with template dependencies.
//!
//! The chase repeatedly finds a *trigger* — a homomorphism of some
//! dependency's antecedents into the current tableau whose conclusion is not
//! yet witnessed — and *fires* it, adding the conclusion row with fresh
//! labelled nulls in the existentially quantified columns.
//!
//! For template dependencies the chase is the canonical semi-decision
//! procedure for implication: `D ⊨ D₀` iff chasing the frozen antecedent
//! tableau of `D₀` with `D` eventually produces a tuple matching `D₀`'s
//! conclusion. Gurevich & Lewis prove there is **no** terminating decision
//! procedure, so the engine takes explicit budgets and reports honestly when
//! they are exhausted.
//!
//! * [`ChaseEngine`] — round-based (fair) restricted or oblivious chase.
//! * [`ChaseProof`] — a replayable certificate for positive answers.
//! * [`Goal`] — the frozen-conclusion pattern checked after every step.
//! * [`weakly_acyclic`] — a standard sufficient condition for termination.

mod engine;
mod proof;

pub use engine::{ChaseBudget, ChaseEngine, ChaseOutcome, ChasePolicy, ChaseState};
pub use proof::{ChaseProof, ChaseStep};

use crate::ids::{RowId, Value};
use crate::instance::Instance;
use crate::td::Td;
use crate::tuple::Tuple;

/// A goal pattern: one optional value per column. `None` is a wildcard
/// (used for existentially quantified conclusion components).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Goal {
    pattern: Vec<Option<Value>>,
}

impl Goal {
    /// Creates a goal from per-column constraints.
    pub fn new(pattern: Vec<Option<Value>>) -> Self {
        Self { pattern }
    }

    /// The per-column constraints.
    pub fn pattern(&self) -> &[Option<Value>] {
        &self.pattern
    }

    /// `true` if the row slice matches the goal.
    pub fn met_by_slice(&self, values: &[Value]) -> bool {
        values.len() == self.pattern.len()
            && self
                .pattern
                .iter()
                .zip(values)
                .all(|(want, &got)| want.is_none_or(|w| w == got))
    }

    /// `true` if `tuple` matches the goal.
    pub fn met_by(&self, tuple: &Tuple) -> bool {
        self.met_by_slice(tuple.values())
    }

    /// The first row of `instance` matching the goal, if any — a linear
    /// scan over the arena.
    pub fn find_in(&self, instance: &Instance) -> Option<RowId> {
        instance
            .rows()
            .find(|(_, t)| self.met_by_slice(t))
            .map(|(r, _)| r)
    }
}

/// A standard sufficient condition for chase termination (weak acyclicity,
/// Fagin–Kolaitis–Miller–Popa), specialized to typed TDs over one relation.
///
/// Because variables are typed, a variable occurs in exactly one column, so
/// the only *regular* edges of the position-dependency graph are harmless
/// self-loops. The chase is therefore guaranteed to terminate iff the
/// *special-edge* digraph — an edge `c → c′` whenever some dependency has a
/// universally quantified conclusion column `c` and an existentially
/// quantified conclusion column `c′` — is acyclic.
///
/// Full TDs produce no special edges at all, which is the structural reason
/// the full-TD inference problem is decidable ([`crate::inference::implies_full`]).
pub fn weakly_acyclic(tds: &[Td]) -> bool {
    let Some(first) = tds.first() else {
        return true;
    };
    let n = first.arity();
    // adj[c] = columns c' with a special edge c -> c'.
    let mut adj = vec![vec![false; n]; n];
    // td-lint: allow(budget-poll) one-shot preprocessing bounded by |Σ| × arity², runs before
    // any chase starts; there is no budget to poll yet.
    for td in tds {
        let existential = td.existential_columns();
        if existential.is_empty() {
            continue;
        }
        // td-lint: allow(budget-poll) bounded by the schema arity (see the enclosing allow).
        for c in td.schema().attr_ids() {
            if td.is_universal_at(c) {
                for &e in &existential {
                    adj[c.index()][e.index()] = true;
                }
            }
        }
    }
    // Cycle detection by DFS (colors: 0 white, 1 gray, 2 black).
    fn dfs(u: usize, adj: &[Vec<bool>], color: &mut [u8]) -> bool {
        color[u] = 1;
        for (v, &edge) in adj[u].iter().enumerate() {
            if edge {
                if color[v] == 1 {
                    return false;
                }
                if color[v] == 0 && !dfs(v, adj, color) {
                    return false;
                }
            }
        }
        color[u] = 2;
        true
    }
    let mut color = vec![0u8; n];
    (0..n).all(|u| color[u] != 0 || dfs(u, &adj, &mut color))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::td::TdBuilder;

    #[test]
    fn goal_matching() {
        let g = Goal::new(vec![Some(Value::new(1)), None, Some(Value::new(3))]);
        assert!(g.met_by(&Tuple::from_raw([1, 99, 3])));
        assert!(!g.met_by(&Tuple::from_raw([1, 99, 4])));
        assert!(!g.met_by(&Tuple::from_raw([1, 99])));
        let schema = Schema::new("R", ["A", "B", "C"]).unwrap();
        let mut inst = Instance::new(schema);
        inst.insert_values([0, 0, 0]).unwrap();
        assert_eq!(g.find_in(&inst), None);
        inst.insert_values([1, 5, 3]).unwrap();
        assert_eq!(g.find_in(&inst), Some(RowId::new(1)));
    }

    #[test]
    fn full_tds_are_weakly_acyclic() {
        let schema = Schema::new("R", ["A", "B"]).unwrap();
        let td = TdBuilder::new(schema)
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b"])
            .unwrap()
            .conclusion(["a", "b"])
            .unwrap()
            .build("full")
            .unwrap();
        assert!(weakly_acyclic(&[td]));
        assert!(weakly_acyclic(&[]));
    }

    #[test]
    fn mutual_existential_feeding_is_cyclic() {
        let schema = Schema::new("R", ["A", "B"]).unwrap();
        // Universal in A, existential in B.
        let t1 = TdBuilder::new(schema.clone())
            .antecedent(["a", "b"])
            .unwrap()
            .conclusion(["a", "*"])
            .unwrap()
            .build("t1")
            .unwrap();
        // Universal in B, existential in A.
        let t2 = TdBuilder::new(schema)
            .antecedent(["a", "b"])
            .unwrap()
            .conclusion(["*", "b"])
            .unwrap()
            .build("t2")
            .unwrap();
        assert!(!weakly_acyclic(&[t1.clone(), t2]));
        // A single one-directional dependency is fine.
        assert!(weakly_acyclic(&[t1]));
    }

    #[test]
    fn self_feeding_is_cyclic() {
        let schema = Schema::new("R", ["A", "B"]).unwrap();
        // Universal in A... and existential in B, but B's null feeds a new
        // universal-A row only through another td. A td that is universal in
        // B and existential in B cannot exist (one conclusion cell per col),
        // so build the 2-cycle through one td with both directions: that is
        // impossible; instead universal col == existential col across tds.
        let t = TdBuilder::new(schema)
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a", "b'"])
            .unwrap()
            .conclusion(["a", "*"])
            .unwrap()
            .build("t")
            .unwrap();
        // Special edges: A -> B only. Acyclic.
        assert!(weakly_acyclic(&[t]));
    }
}
