//! The chase engine.
//!
//! Trigger discovery is **semi-naive**: the first round matches every
//! dependency against the whole initial tableau, and each later round only
//! looks for triggers that use at least one row derived since the previous
//! discovery pass (the *delta*). This is sound for the restricted chase
//! because both firing and witnessing are monotone — a trigger whose rows
//! all predate the delta was already discovered, and if it was inactive
//! (conclusion witnessed) then it stays inactive forever, since rows are
//! never removed. Matching itself goes through the
//! [`MatchStrategy`](crate::homomorphism::MatchStrategy) planner, indexed
//! by default.

use std::collections::HashSet;
use std::ops::ControlFlow;

use crate::budget::{Cancellation, Parallelism};
use crate::error::{CoreError, Result};
use crate::homomorphism::{for_each_match_capped, for_each_match_with, Binding, MatchStrategy};
use crate::ids::{AttrId, RowId, Value, Var};
use crate::instance::Instance;
use crate::satisfaction::conclusion_witnessed_with;
use crate::td::{Td, TdRow};
use crate::tuple::Tuple;

use super::proof::{ChaseProof, ChaseStep};
use super::Goal;

/// The dedup key of a discovered trigger: its binding in canonical
/// (column, variable, value) order — what [`Binding::to_sorted_vec`]
/// produces. Delta discovery deduplicates on `(td_index, TriggerKey)`.
type TriggerKey = Vec<(AttrId, Var, Value)>;

/// What one discovery worker brings back from its slice of the delta:
/// for each `(td, pivot)` unit, the locally-deduplicated active triggers
/// found in the worker's row range, in row-id order, each paired with its
/// dedup key so the merge never recomputes it.
struct WorkerFindings {
    /// Indexed like the shared unit list: `per_unit[u]` holds this
    /// worker's candidates for unit `u`.
    per_unit: Vec<Vec<(Binding, TriggerKey)>>,
    /// The worker stopped early after collecting its candidate quota.
    hit_cap: bool,
    /// The worker observed the cancellation token and stopped scanning.
    cancelled: bool,
}

/// One `(td_index, td, pivot_position, rest_pattern)` discovery unit of
/// the duplicate-free semi-naive decomposition, prepared once and shared
/// read-only by every discovery worker.
type DeltaUnit<'t> = (usize, &'t Td, usize, Vec<(&'t TdRow, usize)>);

/// Which triggers fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChasePolicy {
    /// Fire a trigger only if its conclusion is not already witnessed
    /// (the *standard* / restricted chase). This is the variant whose
    /// success is equivalent to implication.
    #[default]
    Restricted,
    /// Fire every trigger once, witnessed or not (the oblivious chase).
    /// Simpler theory, but diverges more often; kept for experiments on
    /// termination behaviour.
    Oblivious,
}

/// Resource limits for a chase run. The inference problem is undecidable
/// (the paper's main theorem), so budgets are load-bearing, not cosmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaseBudget {
    /// Maximum number of fired triggers.
    pub max_steps: usize,
    /// Maximum number of rows in the chase state.
    pub max_rows: usize,
    /// Maximum number of fair rounds.
    pub max_rounds: usize,
}

impl Default for ChaseBudget {
    fn default() -> Self {
        Self {
            max_steps: 10_000,
            max_rows: 10_000,
            max_rounds: 1_000,
        }
    }
}

impl ChaseBudget {
    /// A tiny budget, handy in tests.
    pub fn small() -> Self {
        Self {
            max_steps: 100,
            max_rows: 200,
            max_rounds: 50,
        }
    }

    /// An effectively unlimited budget (use only when termination is
    /// guaranteed, e.g. for full TDs).
    pub fn unlimited() -> Self {
        Self {
            max_steps: usize::MAX,
            max_rows: usize::MAX,
            max_rounds: usize::MAX,
        }
    }
}

/// Why a chase run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// The goal pattern appeared in the state.
    GoalReached,
    /// No active trigger remains: the state is a *universal model* of the
    /// dependencies (and, when chasing a frozen tableau, a finite
    /// countermodel of the goal dependency).
    Terminated,
    /// A budget limit was hit before either of the above.
    BudgetExhausted,
}

/// The ownable, snapshottable state of a chase: the arena [`Instance`]
/// fixpoint plus the semi-naive bookkeeping ([`ChaseState`] is what a
/// suspended [`ChaseEngine`] leaves behind and what a resumed one picks
/// up).
///
/// A `ChaseState` is a plain value: [`Clone`] is a deep copy of the arena
/// and its indexes (one `memcpy`-style pass, no pointer chasing), so a
/// service can snapshot a fixpoint, hand the clone to one request, and
/// keep the original for the next. Resuming is what makes the value
/// interesting — when the dependency set *grows*, a suspended fixpoint
/// does not have to be re-chased from scratch:
///
/// * `frontier` remembers how many rows have been through trigger
///   discovery, so a resumed run only matches the delta;
/// * `integrated` remembers how many leading dependencies the discovery
///   passes have seen, so dependencies appended after suspension get
///   exactly one full pass over the pre-frontier rows and then join the
///   regular delta scheme.
///
/// The resume contract: [`ChaseEngine::resume`] must be given a slice
/// whose first `integrated` dependencies are the ones this state was
/// chased with (appending is fine, reordering or editing the prefix is
/// not). Removing a dependency invalidates the state — re-chase from
/// scratch; the chase is monotone, rows are never retracted.
///
/// Exactness: for the **restricted** policy a suspend/resume sequence
/// reaches the same fixpoint as one monolithic run (re-discovered
/// triggers are skipped because their fired conclusion already witnesses
/// them). Under the **oblivious** policy a trigger interrupted mid-round
/// may fire again on resume, drawing fresh nulls — sound for the
/// termination experiments that policy exists for, but not row-for-row
/// identical.
#[derive(Debug, Clone)]
pub struct ChaseState {
    /// The chase state proper (the arena instance).
    state: Instance,
    /// Semi-naive frontier: rows below this index have already been
    /// through trigger discovery; rows at or above it form the next
    /// round's delta.
    frontier: usize,
    /// Number of leading dependencies that have seen every row below
    /// `frontier`. Dependencies at or past this index were appended after
    /// the last completed discovery pass and still owe a full pass.
    integrated: usize,
    /// Triggers fired so far (cumulative across resumes).
    steps_fired: usize,
    /// Rounds completed so far (cumulative across resumes).
    rounds_run: usize,
    /// The proof log (cumulative across resumes).
    proof: ChaseProof,
}

impl ChaseState {
    /// A fresh state over `initial`: nothing discovered, nothing fired.
    pub fn new(initial: Instance) -> Self {
        Self {
            state: initial,
            frontier: 0,
            integrated: 0,
            steps_fired: 0,
            rounds_run: 0,
            proof: ChaseProof::default(),
        }
    }

    /// The current instance.
    pub fn instance(&self) -> &Instance {
        &self.state
    }

    /// Number of rows in the state.
    pub fn rows(&self) -> usize {
        self.state.len()
    }

    /// Triggers fired so far, cumulative across suspends and resumes.
    pub fn steps_fired(&self) -> usize {
        self.steps_fired
    }

    /// Rounds completed so far, cumulative across suspends and resumes.
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    /// Number of leading dependencies integrated into the fixpoint so
    /// far (see the type docs for the resume contract).
    pub fn integrated(&self) -> usize {
        self.integrated
    }

    /// `true` when every stored row has been through trigger discovery —
    /// i.e. the state was suspended at a clean round boundary, not by a
    /// truncated discovery pass.
    pub fn is_saturated(&self) -> bool {
        self.frontier == self.state.len()
    }

    /// The accumulated proof log.
    pub fn proof(&self) -> &ChaseProof {
        &self.proof
    }

    /// Consumes the state, returning the instance and the proof log.
    pub fn into_parts(self) -> (Instance, ChaseProof) {
        (self.state, self.proof)
    }

    /// Releases spare arena capacity. Useful before parking a suspended
    /// state in a long-lived cache: the chase grows the arena and its
    /// indexes geometrically, and a parked snapshot should not pin the
    /// growth slack.
    pub fn shrink_to_fit(&mut self) {
        self.state.shrink_to_fit();
    }
}

/// A round-based (fair) chase engine.
///
/// Each *round* snapshots the active triggers against the current state and
/// fires them in deterministic order (re-checking activeness just before
/// firing, since earlier firings in the round may have witnessed a later
/// trigger's conclusion). Round-based scheduling is fair: every trigger that
/// stays active is eventually fired, which is what makes the engine a
/// *complete* semi-decision procedure for implication.
///
/// The engine is a borrowing *view* over an owned [`ChaseState`]: start
/// fresh with [`ChaseEngine::new`], or pick a suspended state back up with
/// [`ChaseEngine::resume`] after the dependency set has grown, and take
/// the state out again with [`ChaseEngine::suspend`].
#[derive(Debug)]
pub struct ChaseEngine<'a> {
    tds: &'a [Td],
    st: ChaseState,
    policy: ChasePolicy,
    budget: ChaseBudget,
    strategy: MatchStrategy,
    /// Optional cooperative-cancellation token (the shared
    /// [`crate::budget`] substrate), polled between rounds and before each
    /// firing. Cancellation surfaces as [`ChaseOutcome::BudgetExhausted`]
    /// with [`ChaseEngine::was_cancelled`] set — the same
    /// cancelled-vs-exhausted split the tracked searches report.
    cancel: Option<&'a Cancellation>,
    cancelled: bool,
    /// Worker-team width for delta-trigger discovery. Off by default;
    /// verdicts, proofs, and spend are identical for every setting (the
    /// parallel pass merges worker output back into sequential order).
    parallelism: Parallelism,
}

impl<'a> ChaseEngine<'a> {
    /// Creates an engine over `tds` starting from `initial`, matching with
    /// the default [`MatchStrategy::Indexed`].
    ///
    /// # Errors
    ///
    /// Fails when any dependency disagrees with `initial` on schema.
    pub fn new(
        tds: &'a [Td],
        initial: Instance,
        policy: ChasePolicy,
        budget: ChaseBudget,
    ) -> Result<Self> {
        Self::resume(tds, ChaseState::new(initial), policy, budget)
    }

    /// Picks a suspended [`ChaseState`] back up over a (possibly extended)
    /// dependency slice. The first `state.integrated()` entries of `tds`
    /// must be the dependencies the state was chased with, in the same
    /// order (see the [`ChaseState`] docs); dependencies appended past
    /// that prefix get a full discovery pass on the next
    /// [`ChaseEngine::run`], so only the *delta* work is redone.
    ///
    /// # Errors
    ///
    /// Fails when a dependency disagrees with the state on schema, or
    /// when `tds` is shorter than the state's integrated prefix (a
    /// removal, which requires a from-scratch re-chase).
    pub fn resume(
        tds: &'a [Td],
        state: ChaseState,
        policy: ChasePolicy,
        budget: ChaseBudget,
    ) -> Result<Self> {
        for td in tds {
            state.state.schema().expect_same(td.schema())?;
        }
        if state.integrated > tds.len() {
            return Err(CoreError::ProofReplay(format!(
                "resumed chase state integrated {} dependencies but only {} were supplied \
                 (removal requires a from-scratch re-chase)",
                state.integrated,
                tds.len()
            )));
        }
        Ok(Self {
            tds,
            st: state,
            policy,
            budget,
            strategy: MatchStrategy::default(),
            cancel: None,
            cancelled: false,
            parallelism: Parallelism::Off,
        })
    }

    /// Suspends the engine, returning the owned [`ChaseState`] so it can be
    /// parked, cloned, and later handed back to [`ChaseEngine::resume`].
    pub fn suspend(self) -> ChaseState {
        self.st
    }

    /// Selects the homomorphism-matching strategy (builder style). The
    /// naive strategy is the differential-testing oracle; verdicts must not
    /// depend on this choice.
    pub fn with_strategy(mut self, strategy: MatchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The matching strategy in use.
    pub fn strategy(&self) -> MatchStrategy {
        self.strategy
    }

    /// Selects the worker-team width for semi-naive delta discovery
    /// (builder style). Parallel discovery partitions the delta row range
    /// across a scoped thread team over the immutable arena and merges the
    /// per-worker candidates back in row-id order, so every observable —
    /// verdict, proof shape, spent counters, truncation — is identical to
    /// [`Parallelism::Off`]. The sequential path stays the oracle.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The discovery parallelism in use.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Attaches a cooperative-cancellation token (builder style). The
    /// engine polls it at every round boundary and before every firing; a
    /// cancelled run stops with [`ChaseOutcome::BudgetExhausted`] and
    /// reports the distinction through [`ChaseEngine::was_cancelled`].
    pub fn with_cancellation(mut self, cancel: &'a Cancellation) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// `true` when the last [`ChaseEngine::run`] stopped because the
    /// attached [`Cancellation`] token fired (as opposed to exhausting its
    /// own [`ChaseBudget`]). The spent counters are then lower bounds.
    pub fn was_cancelled(&self) -> bool {
        self.cancelled
    }

    /// Polls the attached cancellation token, recording an observation.
    fn poll_cancelled(&mut self) -> bool {
        if self.cancel.is_some_and(Cancellation::is_cancelled) {
            self.cancelled = true;
        }
        self.cancelled
    }

    /// The current chase state.
    pub fn state(&self) -> &Instance {
        &self.st.state
    }

    /// Number of triggers fired so far (cumulative across resumes).
    pub fn steps_fired(&self) -> usize {
        self.st.steps_fired
    }

    /// Number of completed rounds (cumulative across resumes).
    pub fn rounds_run(&self) -> usize {
        self.st.rounds_run
    }

    /// Consumes the engine, returning the final state and the proof log.
    pub fn into_parts(self) -> (Instance, ChaseProof) {
        self.st.into_parts()
    }

    /// Fires one trigger: `binding` must map the antecedents of
    /// `tds[td_index]` into the current state (this is *checked*). Fresh
    /// nulls are drawn for unbound existential conclusion variables. Returns
    /// the conclusion tuple and whether it was newly added (`false` means
    /// it was already present — possible for full TDs).
    ///
    /// This is the manual interface used by guided chases (e.g. the
    /// reduction's part (A) replay); [`ChaseEngine::run`] uses it too.
    ///
    /// # Errors
    ///
    /// Fails with [`CoreError::ProofReplay`] when `td_index` is out of
    /// range, the binding leaves an antecedent variable unbound, or an
    /// antecedent row is absent from the current state — i.e. when the
    /// claimed trigger is not real.
    pub fn fire(&mut self, td_index: usize, binding: &Binding) -> Result<(Tuple, bool)> {
        let td = self.tds.get(td_index).ok_or_else(|| {
            CoreError::ProofReplay(format!("dependency index {td_index} out of range"))
        })?;
        // Check the trigger is real.
        // td-lint: allow(budget-poll) bounded by the TD's antecedent count × arity (both fixed
        // per dependency), not by the instance; one firing is a budget *step*, polled by run().
        for (r, row) in td.antecedents().iter().enumerate() {
            let mut vals = Vec::with_capacity(td.arity());
            for (c, v) in row.components() {
                let val = binding.get(c, v).ok_or_else(|| {
                    CoreError::ProofReplay(format!(
                        "antecedent {r} of `{}` has unbound variable {v} in column {c}",
                        td.name()
                    ))
                })?;
                vals.push(val);
            }
            if !self.st.state.contains_slice(&vals) {
                return Err(CoreError::ProofReplay(format!(
                    "antecedent {r} of `{}` not matched: {} absent",
                    td.name(),
                    Tuple::new(vals)
                )));
            }
        }
        // Build the conclusion, drawing nulls for unbound existentials.
        let mut full_binding = binding.clone();
        let mut vals = Vec::with_capacity(td.arity());
        for (c, v) in td.conclusion().components() {
            let val = match full_binding.get(c, v) {
                Some(val) => val,
                None => {
                    let fresh = self.st.state.fresh_value(c);
                    full_binding.bind(c, v, fresh);
                    fresh
                }
            };
            vals.push(val);
        }
        let (_, added) = self.st.state.insert_slice(&vals)?;
        let tuple = Tuple::new(vals);
        if !added {
            return Ok((tuple, false));
        }
        self.st.steps_fired += 1;
        self.st.proof.steps.push(ChaseStep {
            td_index,
            td_name: td.name().to_owned(),
            binding: full_binding.to_sorted_vec(),
            new_row: tuple.clone(),
        });
        Ok((tuple, true))
    }

    /// Records the goal row in the proof (used after a goal check succeeds).
    fn record_goal(&mut self, goal: &Goal) {
        if let Some(row) = goal.find_in(&self.st.state) {
            self.st.proof.goal_row = self.st.state.get(row).ok().map(Tuple::from_slice);
        }
    }

    /// Whether a discovered trigger should fire under the engine's policy:
    /// restricted triggers are active only while their conclusion is not
    /// yet witnessed in the current state; oblivious triggers always are.
    fn is_active(&self, td: &Td, binding: &Binding) -> bool {
        match self.policy {
            ChasePolicy::Restricted => {
                !conclusion_witnessed_with(self.strategy, &self.st.state, td, binding)
            }
            ChasePolicy::Oblivious => true,
        }
    }

    /// Collects the active triggers of `tds[from_td..]` whose antecedents
    /// all lie in the current state (full pass — used for the first
    /// discovery round, and for dependencies appended after a resume, which
    /// owe one full pass before joining the delta scheme). Returns `true`
    /// if collection was cut short by the step budget.
    fn discover_full(
        &self,
        from_td: usize,
        cap: usize,
        pending: &mut Vec<(usize, Binding)>,
    ) -> bool {
        let mut truncated = false;
        for (i, td) in self.tds.iter().enumerate().skip(from_td) {
            let seed = Binding::new(td.arity());
            for_each_match_with(
                self.strategy,
                td.antecedents(),
                &self.st.state,
                &seed,
                |b| {
                    if self.is_active(td, b) {
                        pending.push((i, b.clone()));
                    }
                    if pending.len() >= cap {
                        truncated = true;
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            );
            if truncated {
                break;
            }
        }
        truncated
    }

    /// Semi-naive discovery over `tds[..upto_td]`: collects the active
    /// triggers that use at least one row of the delta
    /// `delta_start..delta_end`. The decomposition is the standard
    /// duplicate-free one — for pivot position `j`, row `j` maps to a delta
    /// tuple, rows before `j` are capped to the pre-delta prefix, and rows
    /// after `j` are unrestricted — so every qualifying row assignment is
    /// enumerated exactly once. (Distinct assignments can still collapse to
    /// the same *binding*; those are deduplicated.) Dependencies at or past
    /// `upto_td` are excluded because they get a concurrent full pass via
    /// [`ChaseEngine::discover_full`] — the index sets are disjoint, so no
    /// trigger is enumerated twice. Returns `true` if collection was cut
    /// short by the step budget.
    fn discover_delta(
        &self,
        upto_td: usize,
        delta_start: usize,
        delta_end: usize,
        cap: usize,
        pending: &mut Vec<(usize, Binding)>,
    ) -> bool {
        if self.parallelism.is_parallel() {
            if let Some(truncated) =
                self.discover_delta_parallel(upto_td, delta_start, delta_end, cap, pending)
            {
                return truncated;
            }
        }
        self.discover_delta_seq(upto_td, delta_start, delta_end, cap, pending)
    }

    /// The sequential delta pass — and the semantics oracle the parallel
    /// pass below must reproduce byte for byte.
    fn discover_delta_seq(
        &self,
        upto_td: usize,
        delta_start: usize,
        delta_end: usize,
        cap: usize,
        pending: &mut Vec<(usize, Binding)>,
    ) -> bool {
        let mut truncated = false;
        let mut seen: HashSet<(usize, TriggerKey)> = HashSet::new();
        'tds: for (i, td) in self.tds.iter().enumerate().take(upto_td) {
            for j in 0..td.antecedent_count() {
                let pivot = &td.antecedents()[j];
                let rest: Vec<(&TdRow, usize)> = td
                    .antecedents()
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != j)
                    .map(|(k, r)| (r, if k < j { delta_start } else { usize::MAX }))
                    .collect();
                for rid in delta_start..delta_end {
                    // Delta passes scale with |Σ| × antecedents × delta
                    // rows; poll cancellation here so a shutdown is
                    // observed mid-discovery, not only at round
                    // boundaries. Truncating keeps the frontier where it
                    // is, so a resume rediscovers exactly the skipped
                    // work.
                    if self.cancel.is_some_and(Cancellation::is_cancelled) {
                        truncated = true;
                        break 'tds;
                    }
                    let tuple = self.st.state.row(RowId::from(rid));
                    let mut seed = Binding::new(td.arity());
                    if !seed.bind_row(pivot, tuple) {
                        continue; // pivot row self-conflicts on this tuple
                    }
                    for_each_match_capped(self.strategy, &rest, &self.st.state, &seed, |b| {
                        if self.is_active(td, b) && seen.insert((i, b.to_sorted_vec())) {
                            pending.push((i, b.clone()));
                        }
                        if pending.len() >= cap {
                            truncated = true;
                            ControlFlow::Break(())
                        } else {
                            ControlFlow::Continue(())
                        }
                    });
                    if truncated {
                        break 'tds;
                    }
                }
            }
        }
        truncated
    }

    /// The parallel delta pass: partitions `delta_start..delta_end` into
    /// one contiguous chunk per worker and scans every `(td, pivot)` unit
    /// over each chunk on a scoped thread team. The arena is immutable
    /// during discovery, so workers share `&self`; each owns its dense
    /// [`Binding`] seeds, its local dedup set, and its candidate quota.
    /// The merge then replays the candidates in sequential order —
    /// unit-major, then row id (chunks are contiguous and ordered) —
    /// through one global dedup set, so `pending` ends up byte-identical
    /// to [`ChaseEngine::discover_delta_seq`], including where truncation
    /// lands. Returns `None` to fall back to the sequential oracle: when
    /// the team or the delta is too small to split, when the cap is
    /// already spent, or in the (provably unreachable, but defended)
    /// corner where a worker hit its quota yet cross-worker dedup left
    /// the merge short of the cap.
    fn discover_delta_parallel(
        &self,
        upto_td: usize,
        delta_start: usize,
        delta_end: usize,
        cap: usize,
        pending: &mut Vec<(usize, Binding)>,
    ) -> Option<bool> {
        let rows = delta_end.saturating_sub(delta_start);
        let workers = self.parallelism.workers().min(rows);
        // `cap` bounds the whole pending vector, and the full pass that
        // ran before this one may already have filled part of it.
        let quota = cap.saturating_sub(pending.len());
        if workers < 2 || quota == 0 {
            return None;
        }
        // The same duplicate-free decomposition the sequential pass
        // walks, hoisted so every worker shares the prepared patterns.
        let units: Vec<DeltaUnit<'_>> = self
            .tds
            .iter()
            .enumerate()
            .take(upto_td)
            .flat_map(|(i, td)| {
                (0..td.antecedent_count()).map(move |j| {
                    let rest: Vec<(&TdRow, usize)> = td
                        .antecedents()
                        .iter()
                        .enumerate()
                        .filter(|&(k, _)| k != j)
                        .map(|(k, r)| (r, if k < j { delta_start } else { usize::MAX }))
                        .collect();
                    (i, td, j, rest)
                })
            })
            .collect();
        if units.is_empty() {
            return Some(false);
        }
        // Contiguous balanced row chunks; chunk order == row-id order.
        let base = rows / workers;
        let extra = rows % workers;
        let mut chunks = Vec::with_capacity(workers);
        let mut next = delta_start;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            chunks.push((next, next + len));
            next += len;
        }
        let findings: Vec<WorkerFindings> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|&(lo, hi)| {
                    let units = &units;
                    s.spawn(move || self.scan_delta_chunk(units, lo, hi, quota))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("delta discovery worker panicked"))
                .collect()
        });
        if findings.iter().any(|f| f.cancelled) {
            // Same observable as a sequential pass interrupted by the
            // token: report truncation; run() polls the (sticky) token
            // next, rolls the frontier back, and discards `pending`.
            return Some(true);
        }
        // Merge in sequential order: units outer, chunks inner, one
        // global dedup set. Candidates go to a staging vector so the
        // sequential fallback never sees a half-merged `pending`.
        let hit_cap = findings.iter().any(|f| f.hit_cap);
        let mut seen: HashSet<(usize, &TriggerKey)> = HashSet::new();
        let mut merged: Vec<(usize, &Binding)> = Vec::new();
        let mut truncated = false;
        // td-lint: allow(budget-poll) in-memory merge of already-discovered
        // candidates, bounded by the cap break below; the workers polled the
        // cancellation token during the scan itself
        'merge: for (u, &(i, ..)) in units.iter().enumerate() {
            // td-lint: allow(budget-poll) same bounded merge — inner walk over
            // the fixed worker findings, capped by the 'merge break
            for f in &findings {
                for (b, key) in &f.per_unit[u] {
                    if seen.insert((i, key)) {
                        merged.push((i, b));
                        if pending.len() + merged.len() >= cap {
                            truncated = true;
                            break 'merge;
                        }
                    }
                }
            }
        }
        if !truncated && hit_cap {
            // A worker stopped at its quota but the merge came up short
            // of the cap, so the tail of that worker's chunk was never
            // scanned. The quota accounting makes this unreachable
            // (every locally-deduped candidate either merges or matches
            // an earlier-merged key, so exhausting a worker's quota
            // forces the merge to the cap), but fall back to the oracle
            // rather than lean on that argument.
            return None;
        }
        pending.extend(merged.into_iter().map(|(i, b)| (i, b.clone())));
        Some(truncated)
    }

    /// One worker's scan: every unit over rows `lo..hi` of the delta,
    /// with a local dedup set spanning all units (a key rejected here
    /// would also be rejected by the merge — its earlier occurrence
    /// precedes it in merge order too) and a quota of deduplicated
    /// active candidates, past which the merge provably reaches the cap
    /// without this worker's tail.
    fn scan_delta_chunk(
        &self,
        units: &[DeltaUnit<'_>],
        lo: usize,
        hi: usize,
        quota: usize,
    ) -> WorkerFindings {
        let mut out = WorkerFindings {
            per_unit: units.iter().map(|_| Vec::new()).collect(),
            hit_cap: false,
            cancelled: false,
        };
        let mut local_seen: HashSet<(usize, TriggerKey)> = HashSet::new();
        let mut collected = 0usize;
        'units: for (u, &(i, td, j, ref rest)) in units.iter().enumerate() {
            let pivot = &td.antecedents()[j];
            for rid in lo..hi {
                // Same per-row cancellation cadence as the sequential
                // pass, so a shutdown is observed mid-discovery.
                if self.cancel.is_some_and(Cancellation::is_cancelled) {
                    out.cancelled = true;
                    break 'units;
                }
                let tuple = self.st.state.row(RowId::from(rid));
                let mut seed = Binding::new(td.arity());
                if !seed.bind_row(pivot, tuple) {
                    continue; // pivot row self-conflicts on this tuple
                }
                for_each_match_capped(self.strategy, rest, &self.st.state, &seed, |b| {
                    if self.is_active(td, b) {
                        let key = b.to_sorted_vec();
                        if local_seen.insert((i, key.clone())) {
                            out.per_unit[u].push((b.clone(), key));
                            collected += 1;
                        }
                    }
                    if collected >= quota {
                        out.hit_cap = true;
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                });
                if out.hit_cap {
                    break 'units;
                }
            }
        }
        out
    }

    /// Runs the chase to completion, goal, or budget exhaustion.
    ///
    /// Discovery is semi-naive (see the module docs): round 1 matches
    /// against the whole state, later rounds only against triggers touching
    /// the rows derived since the previous discovery pass.
    pub fn run(&mut self, goal: Option<&Goal>) -> ChaseOutcome {
        if let Some(g) = goal {
            if g.find_in(&self.st.state).is_some() {
                self.record_goal(g);
                return ChaseOutcome::GoalReached;
            }
        }
        loop {
            if self.poll_cancelled() || self.st.rounds_run >= self.budget.max_rounds {
                return ChaseOutcome::BudgetExhausted;
            }
            self.st.rounds_run += 1;

            let round_start = self.st.state.len();
            let delta_start = self.st.frontier;
            // Dependencies past this index were appended after the last
            // completed discovery pass (a resume with a grown Σ); they owe
            // one full pass over the whole current state.
            let integrated_before = self.st.integrated.min(self.tds.len());
            // Collect at most one trigger beyond the step budget so an
            // exhausted budget is still noticed by the firing loop below.
            let cap = self
                .budget
                .max_steps
                .saturating_sub(self.st.steps_fired)
                .max(1);

            let mut pending: Vec<(usize, Binding)> = Vec::new();
            let mut truncated = if delta_start == 0 {
                self.discover_full(0, cap, &mut pending)
            } else {
                self.discover_full(integrated_before, cap, &mut pending)
            };
            if delta_start > 0 && !truncated {
                // delta_start == round_start means no new rows since the
                // last pass: nothing to discover for the integrated prefix.
                truncated = self.discover_delta(
                    integrated_before,
                    delta_start,
                    round_start,
                    cap,
                    &mut pending,
                );
            }
            if !truncated {
                // A truncated pass may have skipped triggers in rows below
                // `round_start`; keep the frontier so they are rediscovered.
                self.st.frontier = round_start;
                self.st.integrated = self.tds.len();
            }

            if self.poll_cancelled() {
                // A cancelled discovery pass may have stopped early with
                // nothing pending; claiming `Terminated` here would be
                // unsound. Roll the frontier back to this round's delta so
                // a resumed run rediscovers whatever was skipped (exact
                // under the restricted policy, same as the firing rollback
                // below).
                self.st.frontier = delta_start;
                self.st.integrated = integrated_before;
                return ChaseOutcome::BudgetExhausted;
            }

            if pending.is_empty() {
                return ChaseOutcome::Terminated;
            }

            let mut fired_this_round = false;
            for (td_index, binding) in pending {
                if self.poll_cancelled()
                    || self.st.steps_fired >= self.budget.max_steps
                    || self.st.state.len() >= self.budget.max_rows
                {
                    // Pending triggers remain unfired: roll the frontier
                    // back to this round's delta so a resumed run
                    // rediscovers them (exact under the restricted policy —
                    // already-fired triggers are inactive on rediscovery).
                    self.st.frontier = delta_start;
                    self.st.integrated = integrated_before;
                    return ChaseOutcome::BudgetExhausted;
                }
                // Re-check activeness against the *current* state: an
                // earlier firing in this round may have witnessed it.
                if self.policy == ChasePolicy::Restricted
                    && !self.is_active(&self.tds[td_index], &binding)
                {
                    continue;
                }
                let (_, added) = self
                    .fire(td_index, &binding)
                    .expect("discovered triggers remain valid: the chase only adds rows");
                if added {
                    fired_this_round = true;
                    if let Some(g) = goal {
                        if g.find_in(&self.st.state).is_some() {
                            self.record_goal(g);
                            // Same rollback as above: the remaining pending
                            // triggers were not fired, and a session may
                            // resume this state for a later goal.
                            self.st.frontier = delta_start;
                            self.st.integrated = integrated_before;
                            return ChaseOutcome::GoalReached;
                        }
                    }
                }
            }

            if !fired_this_round {
                if truncated {
                    // The discovery pass was cut short by the step budget,
                    // so active triggers may remain undiscovered: claiming
                    // a fixpoint would be unsound. Retry from the kept
                    // frontier; the round cap bounds this loop, so a stuck
                    // run ends in BudgetExhausted, never a false Terminated.
                    continue;
                }
                return ChaseOutcome::Terminated;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Value;
    use crate::satisfaction::satisfies_all;
    use crate::schema::Schema;
    use crate::td::TdBuilder;

    fn schema2() -> Schema {
        Schema::new("R", ["A", "B"]).unwrap()
    }

    #[test]
    fn terminating_chase_yields_model() {
        // R(a,b) & R(a',b) => R(a, b') existential in B? Use a full TD:
        // R(a,b) & R(a',b') => R(a,b'): closes A x B.
        let td = TdBuilder::new(schema2())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("prod")
            .unwrap();
        let tds = vec![td];
        let mut initial = Instance::new(schema2());
        initial.insert_values([0, 0]).unwrap();
        initial.insert_values([1, 1]).unwrap();
        let mut engine = ChaseEngine::new(
            &tds,
            initial,
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        // Final state: the 2x2 product, a model of the td.
        assert_eq!(engine.state().len(), 4);
        assert!(satisfies_all(engine.state(), &tds));
    }

    #[test]
    fn goal_reached_and_proof_records_goal() {
        let td = TdBuilder::new(schema2())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("prod")
            .unwrap();
        let tds = vec![td];
        let mut initial = Instance::new(schema2());
        initial.insert_values([0, 0]).unwrap();
        initial.insert_values([1, 1]).unwrap();
        let goal = Goal::new(vec![Some(Value::new(0)), Some(Value::new(1))]);
        let mut engine = ChaseEngine::new(
            &tds,
            initial.clone(),
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(engine.run(Some(&goal)), ChaseOutcome::GoalReached);
        let (_, proof) = engine.into_parts();
        assert!(proof.goal_row.is_some());
        proof.verify(&initial, &tds, Some(&goal)).unwrap();
    }

    #[test]
    fn divergent_chase_hits_budget() {
        // R(a,b) => exists b*: R(a,b*) — restricted chase satisfies it
        // immediately (the row itself witnesses? No: conclusion b* is
        // existential, witnessed by the row itself. So pick a genuinely
        // divergent set: R(a,b) => exists a*: R(a*,b) with B fresh each…
        // that too is witnessed. Use two tds that feed each other on
        // *distinct* values:
        // t1: R(a,b) & R(a,b') => exists a*: R(a*, b)  -- witnessed by (a,b).
        // Simplest divergence: oblivious chase of a self-witnessing td.
        let td = TdBuilder::new(schema2())
            .antecedent(["a", "b"])
            .unwrap()
            .conclusion(["a", "*"])
            .unwrap()
            .build("grow")
            .unwrap();
        let tds = vec![td];
        let mut initial = Instance::new(schema2());
        initial.insert_values([0, 0]).unwrap();
        let mut engine =
            ChaseEngine::new(&tds, initial, ChasePolicy::Oblivious, ChaseBudget::small()).unwrap();
        assert_eq!(engine.run(None), ChaseOutcome::BudgetExhausted);
        assert!(engine.steps_fired() > 0);
    }

    #[test]
    fn restricted_chase_of_witnessed_td_terminates_instantly() {
        let td = TdBuilder::new(schema2())
            .antecedent(["a", "b"])
            .unwrap()
            .conclusion(["a", "*"])
            .unwrap()
            .build("self-witnessed")
            .unwrap();
        let tds = vec![td];
        let mut initial = Instance::new(schema2());
        initial.insert_values([0, 0]).unwrap();
        let mut engine = ChaseEngine::new(
            &tds,
            initial,
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        assert_eq!(engine.steps_fired(), 0);
        assert_eq!(engine.state().len(), 1);
    }

    /// Regression: a discovery pass truncated by the step budget must not
    /// let the round conclude `Terminated`. With `max_steps = 1` the pass
    /// collects only the first trigger — here one whose conclusion is
    /// already present, so nothing fires — while triggers that would add
    /// rows remain undiscovered. The honest outcome is budget exhaustion.
    #[test]
    fn truncated_oblivious_round_is_not_a_fixpoint() {
        let td = TdBuilder::new(schema2())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("prod")
            .unwrap();
        let tds = vec![td];
        let mut initial = Instance::new(schema2());
        initial.insert_values([0, 0]).unwrap();
        initial.insert_values([1, 1]).unwrap();
        let budget = ChaseBudget {
            max_steps: 1,
            max_rows: 100,
            max_rounds: 5,
        };
        let mut engine = ChaseEngine::new(&tds, initial, ChasePolicy::Oblivious, budget).unwrap();
        // The first enumerated trigger maps both antecedents onto row 0 and
        // concludes (0,0), which is already present; the product rows (0,1)
        // and (1,0) are still missing, so this is NOT a fixpoint.
        assert_eq!(engine.run(None), ChaseOutcome::BudgetExhausted);
        assert_eq!(engine.state().len(), 2, "nothing may fire under cap 1");
    }

    #[test]
    fn fire_rejects_bogus_triggers() {
        let td = TdBuilder::new(schema2())
            .antecedent(["a", "b"])
            .unwrap()
            .conclusion(["a", "*"])
            .unwrap()
            .build("t")
            .unwrap();
        let tds = vec![td.clone()];
        let initial = Instance::new(schema2());
        let mut engine = ChaseEngine::new(
            &tds,
            initial,
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        // Unbound variables.
        let err = engine.fire(0, &Binding::new(2)).unwrap_err();
        assert!(matches!(err, CoreError::ProofReplay(_)));
        // Bound but absent tuple.
        let mut b = Binding::new(2);
        use crate::ids::{AttrId, Var};
        b.bind(
            AttrId::new(0),
            td.antecedents()[0].get(AttrId::new(0)),
            Value::new(3),
        );
        b.bind(
            AttrId::new(1),
            td.antecedents()[0].get(AttrId::new(1)),
            Value::new(3),
        );
        let err = engine.fire(0, &b).unwrap_err();
        assert!(matches!(err, CoreError::ProofReplay(_)));
        let _ = Var::new(0); // silence unused import in cfg(test)
    }

    #[test]
    fn cancellation_token_stops_the_run_and_is_distinguished() {
        // The divergent oblivious fixture from `divergent_chase_hits_budget`.
        let td = TdBuilder::new(schema2())
            .antecedent(["a", "b"])
            .unwrap()
            .conclusion(["a", "*"])
            .unwrap()
            .build("grow")
            .unwrap();
        let tds = vec![td];
        let mut initial = Instance::new(schema2());
        initial.insert_values([0, 0]).unwrap();

        // A pre-cancelled token stops the run before anything fires.
        let cancel = Cancellation::new();
        cancel.cancel();
        let mut engine = ChaseEngine::new(
            &tds,
            initial.clone(),
            ChasePolicy::Oblivious,
            ChaseBudget::small(),
        )
        .unwrap()
        .with_cancellation(&cancel);
        assert_eq!(engine.run(None), ChaseOutcome::BudgetExhausted);
        assert!(engine.was_cancelled());
        assert_eq!(engine.steps_fired(), 0);

        // The same run with an idle token exhausts its own budget instead,
        // and the engine reports the difference.
        let idle = Cancellation::new();
        let mut engine =
            ChaseEngine::new(&tds, initial, ChasePolicy::Oblivious, ChaseBudget::small())
                .unwrap()
                .with_cancellation(&idle);
        assert_eq!(engine.run(None), ChaseOutcome::BudgetExhausted);
        assert!(!engine.was_cancelled());
        assert!(engine.steps_fired() > 0);
    }

    /// Shared fixtures for the resume tests — all *full* typed TDs
    /// (terminating, no nulls, unique closure): the product TD
    /// `R(a,b) & R(a',b') -> R(a,b')` closes A×B; the pseudo-transitivity
    /// TD `R(a,b) & R(a',b) & R(a',b') -> R(a,b')` only closes each
    /// connected component of the row graph, so it genuinely differs.
    fn prod_td() -> Td {
        TdBuilder::new(schema2())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("prod")
            .unwrap()
    }

    fn pt_td() -> Td {
        TdBuilder::new(schema2())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("pt")
            .unwrap()
    }

    /// Initial tableau with two connected components: `{0,1}×{1,2}` is
    /// linked through `(1,1)`, while `(3,4)` sits alone — so `pt` closes
    /// only the first component and `prod` is needed for the full product.
    fn two_component_initial() -> Instance {
        let mut initial = Instance::new(schema2());
        for row in [[0u32, 1], [1, 1], [1, 2], [3, 4]] {
            initial.insert_values(row).unwrap();
        }
        initial
    }

    /// Monolithic oracle: chase `tds` from `initial` to fixpoint, returning
    /// the final state and the number of fired steps.
    fn monolithic(tds: &[Td], initial: &Instance) -> (Instance, usize) {
        let mut engine = ChaseEngine::new(
            tds,
            initial.clone(),
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        let steps = engine.steps_fired();
        (engine.into_parts().0, steps)
    }

    /// The tentpole contract: suspend at fixpoint, append a dependency,
    /// resume — the resumed fixpoint is set-equal (`Instance` equality is
    /// set semantics) to a monolithic chase of the extended Σ, because for
    /// full TDs the restricted chase has a unique closure.
    #[test]
    fn suspend_extend_resume_equals_monolithic_chase() {
        let initial = two_component_initial();

        // Phase 1: chase Σ₁ = [pt] to fixpoint (closes the linked
        // component, one firing) and suspend.
        let sigma1 = vec![pt_td()];
        let mut engine = ChaseEngine::new(
            &sigma1,
            initial.clone(),
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        assert!(engine.steps_fired() > 0, "phase 1 does real work");
        let suspended = engine.suspend();
        assert!(suspended.is_saturated());
        assert_eq!(suspended.integrated(), 1);

        // Phase 2: Σ₂ = Σ₁ + [prod]; resume and finish (the appended TD
        // bridges the components and closes the full product).
        let sigma2 = vec![pt_td(), prod_td()];
        let mut engine = ChaseEngine::resume(
            &sigma2,
            suspended,
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        let resumed_steps = engine.steps_fired();
        let (resumed, _) = engine.into_parts();

        let (mono, mono_steps) = monolithic(&sigma2, &initial);
        assert_eq!(resumed, mono, "resumed fixpoint diverged from monolithic");
        assert!(satisfies_all(&resumed, &sigma2));
        // Full TDs: every fired step adds exactly one row, so the
        // cumulative counter matches the monolithic run as well.
        assert_eq!(resumed_steps, mono_steps);
    }

    /// Resuming with an unchanged Σ is a cheap no-op round: the delta is
    /// empty, nothing fires, the state is untouched.
    #[test]
    fn resume_without_new_deps_is_a_noop() {
        let mut initial = Instance::new(schema2());
        initial.insert_values([0, 0]).unwrap();
        initial.insert_values([1, 1]).unwrap();
        let tds = vec![prod_td()];
        let mut engine = ChaseEngine::new(
            &tds,
            initial,
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        let steps = engine.steps_fired();
        let suspended = engine.suspend();
        let before = suspended.instance().clone();

        let mut engine = ChaseEngine::resume(
            &tds,
            suspended,
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        assert_eq!(engine.steps_fired(), steps, "no re-firing on resume");
        assert_eq!(engine.state(), &before);
    }

    /// Budget-exhaustion path: a run stopped mid-round by `max_steps`
    /// rolls its frontier back, so a resumed run with a fresh budget
    /// rediscovers the unfired triggers and still reaches the exact
    /// monolithic fixpoint.
    #[test]
    fn resume_after_step_budget_exhaustion_completes_the_chase() {
        let mut initial = Instance::new(schema2());
        for v in 0..3u32 {
            initial.insert_values([v, v]).unwrap();
        }
        let tds = vec![prod_td()];
        let tight = ChaseBudget {
            max_steps: 2,
            max_rows: 100,
            max_rounds: 50,
        };
        let mut engine =
            ChaseEngine::new(&tds, initial.clone(), ChasePolicy::Restricted, tight).unwrap();
        assert_eq!(engine.run(None), ChaseOutcome::BudgetExhausted);
        assert_eq!(engine.steps_fired(), 2);
        let suspended = engine.suspend();
        assert!(!suspended.is_saturated(), "rolled-back frontier is visible");

        let mut engine = ChaseEngine::resume(
            &tds,
            suspended,
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        let total_steps = engine.steps_fired();
        let (resumed, _) = engine.into_parts();

        let (mono, mono_steps) = monolithic(&tds, &initial);
        assert_eq!(resumed, mono);
        assert_eq!(total_steps, mono_steps, "no step is double-counted");
    }

    /// Cancellation path: a cancelled run is suspendable like any other,
    /// and the stop *reason* stays observable — the cancelled engine
    /// reports `was_cancelled`, the resumed engine (idle token) finishes
    /// and reports a clean run.
    #[test]
    fn resume_after_cancellation_completes_and_reports_cleanly() {
        let mut initial = Instance::new(schema2());
        for v in 0..3u32 {
            initial.insert_values([v, v]).unwrap();
        }
        let tds = vec![prod_td()];
        let cancel = Cancellation::new();
        cancel.cancel();
        let mut engine = ChaseEngine::new(
            &tds,
            initial.clone(),
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap()
        .with_cancellation(&cancel);
        assert_eq!(engine.run(None), ChaseOutcome::BudgetExhausted);
        assert!(engine.was_cancelled(), "stop reason: cancelled, not spent");
        let suspended = engine.suspend();

        let idle = Cancellation::new();
        let mut engine = ChaseEngine::resume(
            &tds,
            suspended,
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap()
        .with_cancellation(&idle);
        assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        assert!(!engine.was_cancelled(), "stop reason: clean termination");
        let (resumed, _) = engine.into_parts();
        assert_eq!(resumed, monolithic(&tds, &initial).0);
    }

    /// A goal-reached stop leaves unfired triggers behind; the rollback
    /// makes the suspended state resumable to the true fixpoint — the
    /// session pattern of asking one goal and later another.
    #[test]
    fn goal_reached_state_resumes_to_the_full_fixpoint() {
        let mut initial = Instance::new(schema2());
        for v in 0..3u32 {
            initial.insert_values([v, v]).unwrap();
        }
        let tds = vec![prod_td()];
        let goal = Goal::new(vec![Some(Value::new(0)), Some(Value::new(1))]);
        let mut engine = ChaseEngine::new(
            &tds,
            initial.clone(),
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(engine.run(Some(&goal)), ChaseOutcome::GoalReached);
        assert!(engine.steps_fired() < 6, "goal stops before the closure");
        let suspended = engine.suspend();

        let mut engine = ChaseEngine::resume(
            &tds,
            suspended,
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        let (resumed, _) = engine.into_parts();
        let (mono, _) = monolithic(&tds, &initial);
        assert_eq!(resumed, mono, "post-goal resume reaches the closure");
    }

    /// Incremental growth across several resumes stays exact: add one
    /// dependency at a time, resuming each time, and land on the same
    /// fixpoint as chasing the final Σ monolithically.
    #[test]
    fn repeated_extend_resume_cycles_stay_exact() {
        // The exchange TD is satisfied by any product set, so the third
        // cycle is a no-op resume — also worth pinning.
        let exchange = TdBuilder::new(schema2())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a", "b'"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a'", "b"])
            .unwrap()
            .build("exchange")
            .unwrap();
        let initial = two_component_initial();

        let full = [pt_td(), prod_td(), exchange];
        let mut st = ChaseState::new(initial.clone());
        for k in 1..=full.len() {
            let sigma = &full[..k];
            let mut engine =
                ChaseEngine::resume(sigma, st, ChasePolicy::Restricted, ChaseBudget::default())
                    .unwrap();
            assert_eq!(engine.run(None), ChaseOutcome::Terminated);
            st = engine.suspend();
            assert_eq!(st.integrated(), k);

            let (mono, mono_steps) = monolithic(sigma, &initial);
            assert_eq!(st.instance(), &mono, "diverged at prefix length {k}");
            assert_eq!(st.steps_fired(), mono_steps);
        }
    }

    /// Resuming with *fewer* dependencies than the state integrated is a
    /// contract violation and must be rejected (removal means re-chase).
    #[test]
    fn resume_with_shrunk_sigma_is_rejected() {
        let tds = vec![prod_td()];
        let mut initial = Instance::new(schema2());
        initial.insert_values([0, 1]).unwrap();
        let mut engine = ChaseEngine::new(
            &tds,
            initial,
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        let suspended = engine.suspend();
        let err = ChaseEngine::resume(
            &[],
            suspended,
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::ProofReplay(_)));
    }

    /// Runs the same chase under `Parallelism::Off` and `parallelism`,
    /// asserting every observable is byte-identical: outcome, steps,
    /// rounds, the final instance, and the full proof log.
    fn assert_parallel_matches_sequential(
        tds: &[Td],
        initial: &Instance,
        budget: ChaseBudget,
        goal: Option<&Goal>,
        parallelism: Parallelism,
    ) -> ChaseOutcome {
        let mut seq =
            ChaseEngine::new(tds, initial.clone(), ChasePolicy::Restricted, budget).unwrap();
        let seq_outcome = seq.run(goal);
        let (seq_steps, seq_rounds) = (seq.steps_fired(), seq.rounds_run());
        let (seq_state, seq_proof) = seq.into_parts();

        let mut par = ChaseEngine::new(tds, initial.clone(), ChasePolicy::Restricted, budget)
            .unwrap()
            .with_parallelism(parallelism);
        let par_outcome = par.run(goal);
        assert_eq!(par_outcome, seq_outcome, "outcome diverged");
        assert_eq!(par.steps_fired(), seq_steps, "steps diverged");
        assert_eq!(par.rounds_run(), seq_rounds, "rounds diverged");
        let (par_state, par_proof) = par.into_parts();
        assert_eq!(par_state, seq_state, "fixpoint diverged");
        assert_eq!(par_proof, seq_proof, "proof log diverged");
        seq_outcome
    }

    /// The tentpole contract: a parallel team over the delta reproduces
    /// the sequential engine exactly on a multi-round fixture (3 seed
    /// rows close to the 3×3 product over several delta rounds, so the
    /// parallel pass genuinely engages).
    #[test]
    fn parallel_delta_discovery_is_byte_identical_to_sequential() {
        let mut initial = Instance::new(schema2());
        for v in 0..3u32 {
            initial.insert_values([v, v]).unwrap();
        }
        let tds = vec![prod_td()];
        for workers in [2, 3, 4, 7] {
            let outcome = assert_parallel_matches_sequential(
                &tds,
                &initial,
                ChaseBudget::default(),
                None,
                Parallelism::Threads(workers),
            );
            assert_eq!(outcome, ChaseOutcome::Terminated);
        }
        // Multi-TD Σ with a genuinely different closure shape.
        let tds = vec![pt_td(), prod_td()];
        let outcome = assert_parallel_matches_sequential(
            &tds,
            &two_component_initial(),
            ChaseBudget::default(),
            None,
            Parallelism::Threads(4),
        );
        assert_eq!(outcome, ChaseOutcome::Terminated);
    }

    /// Truncation parity: a step budget that cuts discovery mid-pass must
    /// land on the same rows, steps, and outcome under the parallel team
    /// (the merge stops at the cap exactly where the oracle does).
    #[test]
    fn parallel_truncated_discovery_matches_sequential() {
        let mut initial = Instance::new(schema2());
        for v in 0..4u32 {
            initial.insert_values([v, v]).unwrap();
        }
        let tds = vec![prod_td()];
        for max_steps in [1, 2, 3, 5] {
            let budget = ChaseBudget {
                max_steps,
                max_rows: 100,
                max_rounds: 50,
            };
            assert_parallel_matches_sequential(
                &tds,
                &initial,
                budget,
                None,
                Parallelism::Threads(3),
            );
        }
    }

    /// Goal parity: the goal row, the early stop, and the rollback are
    /// identical under the parallel team.
    #[test]
    fn parallel_goal_reached_matches_sequential() {
        let mut initial = Instance::new(schema2());
        for v in 0..3u32 {
            initial.insert_values([v, v]).unwrap();
        }
        let tds = vec![prod_td()];
        let goal = Goal::new(vec![Some(Value::new(0)), Some(Value::new(2))]);
        let outcome = assert_parallel_matches_sequential(
            &tds,
            &initial,
            ChaseBudget::default(),
            Some(&goal),
            Parallelism::Threads(4),
        );
        assert_eq!(outcome, ChaseOutcome::GoalReached);
    }

    /// A pre-cancelled token stops a parallel run exactly like a
    /// sequential one: `BudgetExhausted`, `was_cancelled`, nothing fired.
    #[test]
    fn parallel_run_observes_cancellation() {
        let mut initial = Instance::new(schema2());
        for v in 0..3u32 {
            initial.insert_values([v, v]).unwrap();
        }
        let tds = vec![prod_td()];
        let cancel = Cancellation::new();
        cancel.cancel();
        let mut engine = ChaseEngine::new(
            &tds,
            initial,
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap()
        .with_parallelism(Parallelism::Threads(4))
        .with_cancellation(&cancel);
        assert_eq!(engine.run(None), ChaseOutcome::BudgetExhausted);
        assert!(engine.was_cancelled());
        assert_eq!(engine.steps_fired(), 0);
    }

    /// `Threads(0)` and `Threads(1)` degrade to the sequential path (the
    /// knob is a width, never a switch that can wedge a run).
    #[test]
    fn degenerate_parallelism_widths_run_sequentially() {
        let mut initial = Instance::new(schema2());
        initial.insert_values([0, 0]).unwrap();
        initial.insert_values([1, 1]).unwrap();
        let tds = vec![prod_td()];
        for p in [
            Parallelism::Off,
            Parallelism::Threads(0),
            Parallelism::Threads(1),
        ] {
            let mut engine = ChaseEngine::new(
                &tds,
                initial.clone(),
                ChasePolicy::Restricted,
                ChaseBudget::default(),
            )
            .unwrap()
            .with_parallelism(p);
            assert!(!engine.parallelism().is_parallel() || p.is_parallel());
            assert_eq!(engine.run(None), ChaseOutcome::Terminated);
            assert_eq!(engine.state().len(), 4);
        }
    }

    #[test]
    fn schema_mismatch_rejected() {
        let other = Schema::new("S", ["X"]).unwrap();
        let td = TdBuilder::new(schema2())
            .antecedent(["a", "b"])
            .unwrap()
            .conclusion(["a", "b"])
            .unwrap()
            .build("t")
            .unwrap();
        let tds = vec![td];
        let initial = Instance::new(other);
        assert!(matches!(
            ChaseEngine::new(
                &tds,
                initial,
                ChasePolicy::Restricted,
                ChaseBudget::default()
            ),
            Err(CoreError::SchemaMismatch { .. })
        ));
    }
}
