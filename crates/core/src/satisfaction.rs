//! Deciding whether a database satisfies a template dependency.
//!
//! `M ⊨ td` iff every homomorphism of `td`'s antecedent rows into `M`
//! extends to a homomorphism that also places the conclusion row in `M`
//! (existential components may take any value). This is decidable for any
//! finite `M` — the undecidability the paper proves concerns *implication
//! between dependencies*, not model checking.

use std::ops::ControlFlow;

use crate::eq_instance::EqInstance;
use crate::homomorphism::{for_each_match, for_each_match_with, Binding, MatchStrategy};
use crate::instance::Instance;
use crate::td::Td;

/// `true` if the conclusion of `td` is witnessed in `instance` under
/// `binding` (which must bind at least the universally quantified conclusion
/// variables).
pub fn conclusion_witnessed(instance: &Instance, td: &Td, binding: &Binding) -> bool {
    conclusion_witnessed_with(MatchStrategy::default(), instance, td, binding)
}

/// [`conclusion_witnessed`] under an explicit [`MatchStrategy`] — the chase
/// engine threads its strategy through so the naive oracle stays naive end
/// to end (witness checks included).
pub fn conclusion_witnessed_with(
    strategy: MatchStrategy,
    instance: &Instance,
    td: &Td,
    binding: &Binding,
) -> bool {
    crate::homomorphism::row_match_exists(strategy, td.conclusion(), instance, binding)
}

/// Finds a violating homomorphism: an antecedent match with no conclusion
/// witness. Returns `None` if `instance ⊨ td`.
pub fn find_violation(instance: &Instance, td: &Td) -> Option<Binding> {
    find_violation_with(MatchStrategy::default(), instance, td)
}

/// [`find_violation`] under an explicit [`MatchStrategy`], end to end —
/// the pipeline's countermodel verification threads the CLI-selected
/// strategy through here so `--strategy naive` audits the whole stack.
pub fn find_violation_with(
    strategy: MatchStrategy,
    instance: &Instance,
    td: &Td,
) -> Option<Binding> {
    let mut violation = None;
    for_each_match_with(
        strategy,
        td.antecedents(),
        instance,
        &Binding::new(td.arity()),
        |b| {
            if conclusion_witnessed_with(strategy, instance, td, b) {
                ControlFlow::Continue(())
            } else {
                violation = Some(b.clone());
                ControlFlow::Break(())
            }
        },
    );
    violation
}

/// Collects up to `limit` violating antecedent matches.
pub fn violations(instance: &Instance, td: &Td, limit: usize) -> Vec<Binding> {
    let mut out = Vec::new();
    if limit == 0 {
        return out;
    }
    for_each_match(td.antecedents(), instance, &Binding::new(td.arity()), |b| {
        if !conclusion_witnessed(instance, td, b) {
            out.push(b.clone());
            if out.len() >= limit {
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    });
    out
}

/// [`satisfies`] under an explicit [`MatchStrategy`], end to end (both the
/// antecedent search and the witness checks) — the differential tests
/// compare the naive full-scan oracle against the indexed planner through
/// this entry point.
pub fn satisfies_with(strategy: MatchStrategy, instance: &Instance, td: &Td) -> bool {
    let mut ok = true;
    for_each_match_with(
        strategy,
        td.antecedents(),
        instance,
        &Binding::new(td.arity()),
        |b| {
            if conclusion_witnessed_with(strategy, instance, td, b) {
                ControlFlow::Continue(())
            } else {
                ok = false;
                ControlFlow::Break(())
            }
        },
    );
    ok
}

/// `true` if `instance ⊨ td`.
pub fn satisfies(instance: &Instance, td: &Td) -> bool {
    find_violation(instance, td).is_none()
}

/// `true` if `instance` satisfies every dependency in `tds`.
pub fn satisfies_all<'a>(instance: &Instance, tds: impl IntoIterator<Item = &'a Td>) -> bool {
    tds.into_iter().all(|td| satisfies(instance, td))
}

/// Convenience: satisfaction on the partition view (converts and checks).
pub fn eq_satisfies(eq: &EqInstance, td: &Td) -> bool {
    satisfies(&eq.to_instance(), td)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::td::TdBuilder;

    fn schema() -> Schema {
        Schema::new("R", ["SUPPLIER", "STYLE", "SIZE"]).unwrap()
    }

    /// Fig. 1 of the paper: R(a,b,c) & R(a,b',c') ⇒ ∃a* R(a*,b,c').
    fn fig1() -> Td {
        TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a", "b'", "c'"])
            .unwrap()
            .conclusion(["*", "b", "c'"])
            .unwrap()
            .build("fig1")
            .unwrap()
    }

    #[test]
    fn empty_instance_satisfies_everything() {
        let inst = Instance::new(schema());
        assert!(satisfies(&inst, &fig1()));
    }

    #[test]
    fn garment_example_positive_and_negative() {
        let td = fig1();
        let mut db = Instance::new(schema());
        // (St.Laurent, Dress, 10) and (St.Laurent, Brief, 36).
        db.insert_values([0, 0, 0]).unwrap();
        db.insert_values([0, 1, 1]).unwrap();
        // fig1 demands some supplier of (Dress, 36): missing.
        assert!(!satisfies(&db, &td));
        let v = find_violation(&db, &td).unwrap();
        assert!(!v.is_empty());
        // Add it (a different supplier is fine — a* is existential)…
        db.insert_values([5, 0, 1]).unwrap();
        // …but the *swapped* antecedent match also demands (Brief, 10):
        assert!(!satisfies(&db, &td));
        db.insert_values([6, 1, 0]).unwrap();
        assert!(satisfies(&db, &td));
        assert!(find_violation(&db, &td).is_none());
    }

    #[test]
    fn trivial_td_always_satisfied() {
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .conclusion(["a", "b", "c"])
            .unwrap()
            .build("id")
            .unwrap();
        assert!(td.is_trivial());
        let mut db = Instance::new(schema());
        for i in 0..5 {
            db.insert_values([i, 2 * i, 3 * i]).unwrap();
        }
        assert!(satisfies(&db, &td));
    }

    #[test]
    fn full_td_violation() {
        // R(a,b,c) & R(a',b,c') => R(a,b,c') — a full TD.
        let td = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .antecedent(["a'", "b", "c'"])
            .unwrap()
            .conclusion(["a", "b", "c'"])
            .unwrap()
            .build("full")
            .unwrap();
        assert!(td.is_full());
        let mut db = Instance::new(schema());
        db.insert_values([1, 7, 1]).unwrap();
        db.insert_values([2, 7, 2]).unwrap();
        // Needs (1,7,2) and (2,7,1).
        assert!(!satisfies(&db, &td));
        db.insert_values([1, 7, 2]).unwrap();
        db.insert_values([2, 7, 1]).unwrap();
        assert!(satisfies(&db, &td));
    }

    #[test]
    fn violations_enumeration_and_limit() {
        let td = fig1();
        let mut db = Instance::new(schema());
        db.insert_values([0, 0, 0]).unwrap();
        db.insert_values([0, 1, 1]).unwrap();
        db.insert_values([0, 2, 2]).unwrap();
        // Violating (b, c') combinations: all pairs (style, size) not
        // covered by an existing tuple. 9 antecedent matches, 3 witnessed
        // (the diagonal), 6 violations.
        let vs = violations(&db, &td, 100);
        assert_eq!(vs.len(), 6);
        assert_eq!(violations(&db, &td, 2).len(), 2);
        assert!(violations(&db, &td, 0).is_empty());
    }

    #[test]
    fn satisfies_all_short_circuits_correctly() {
        let td = fig1();
        let trivial = TdBuilder::new(schema())
            .antecedent(["a", "b", "c"])
            .unwrap()
            .conclusion(["a", "b", "c"])
            .unwrap()
            .build("id")
            .unwrap();
        let mut db = Instance::new(schema());
        db.insert_values([0, 0, 0]).unwrap();
        db.insert_values([0, 1, 1]).unwrap();
        let set = vec![trivial, td];
        assert!(!satisfies_all(&db, &set));
        assert!(satisfies_all(&db, &set[..1]));
    }

    #[test]
    fn eq_view_satisfaction() {
        use crate::ids::{AttrId, RowId};
        let td = fig1();
        let mut eq = EqInstance::new(schema(), 2);
        // Two rows sharing a supplier.
        eq.merge(AttrId::new(0), RowId::new(0), RowId::new(1))
            .unwrap();
        assert!(!eq_satisfies(&eq, &td));
    }
}
