//! Direct products of instances — and the preservation theorem for
//! template dependencies.
//!
//! The direct product `M × N` has a row `(s, t)` for every `s ∈ M`,
//! `t ∈ N`, agreeing on attribute `A` exactly when both components do.
//! Template dependencies (like all Horn-style dependencies; cf. Fagin,
//! *Horn clauses and database dependencies*, cited by the paper) are
//! **preserved under direct products**: if `M ⊨ td` and `N ⊨ td` then
//! `M × N ⊨ td`. This module implements the product and the proof's
//! witness-pairing argument is exercised as a property test.
//!
//! Products matter for dependency theory because they generate new models
//! from old ones — e.g. countermodels can be multiplied together to refute
//! several candidate implications at once.

use std::collections::HashMap;

use crate::error::Result;
use crate::ids::Value;
use crate::instance::Instance;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// Per-column interning tables: component value pair → product value.
pub type PairIntern = Vec<HashMap<(Value, Value), Value>>;

/// The direct product `a × b`. Component value pairs are interned per
/// column, so the result is an ordinary [`Instance`] over the same schema.
/// Returns the product and the per-column interning tables (pair → value).
///
/// # Errors
///
/// Fails when the two instances disagree on schema.
pub fn direct_product(a: &Instance, b: &Instance) -> Result<(Instance, PairIntern)> {
    a.schema().expect_same(b.schema())?;
    let arity = a.schema().arity();
    let mut intern: Vec<HashMap<(Value, Value), Value>> = vec![HashMap::new(); arity];
    let mut out = Instance::new(a.schema().clone());
    let mut vals = Vec::with_capacity(arity);
    for s in a.row_slices() {
        for t in b.row_slices() {
            vals.clear();
            for (col, map) in intern.iter_mut().enumerate() {
                let key = (s[col], t[col]);
                let next = map.len() as u32;
                let v = *map.entry(key).or_insert_with(|| Value::new(next));
                vals.push(v);
            }
            out.insert_slice(&vals)?;
        }
    }
    Ok((out, intern))
}

/// The `k`-th direct power of `a` (`k ≥ 1`).
///
/// # Errors
///
/// Cannot fail for `k ≥ 1` over a valid instance (the factors share one
/// schema by construction); propagates the impossible product errors
/// rather than unwrapping them.
pub fn direct_power(a: &Instance, k: usize) -> Result<Instance> {
    assert!(
        k >= 1,
        "the zeroth power is the empty product, undefined here"
    );
    let mut acc = a.clone();
    for _ in 1..k {
        acc = direct_product(&acc, a)?.0;
    }
    Ok(acc)
}

/// A single-row instance over `schema` (the product's neutral-ish element:
/// `one × a` is isomorphic to `a` whenever `one` has one row).
pub fn singleton(schema: Schema) -> Instance {
    let arity = schema.arity();
    let mut inst = Instance::new(schema);
    inst.insert(Tuple::from_raw(vec![0; arity]))
        .expect("arity matches");
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::satisfaction::satisfies;
    use crate::td::TdBuilder;

    fn schema() -> Schema {
        Schema::new("R", ["A", "B"]).unwrap()
    }

    fn fig1ish() -> crate::td::Td {
        TdBuilder::new(schema())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a", "b'"])
            .unwrap()
            .conclusion(["*", "b'"])
            .unwrap()
            .build("t")
            .unwrap()
    }

    #[test]
    fn product_size_and_agreement() {
        let mut m = Instance::new(schema());
        m.insert_values([0, 0]).unwrap();
        m.insert_values([0, 1]).unwrap();
        let mut n = Instance::new(schema());
        n.insert_values([5, 5]).unwrap();
        n.insert_values([6, 5]).unwrap();
        let (p, _) = direct_product(&m, &n).unwrap();
        assert_eq!(p.len(), 4);
        // Rows (0,0)x(5,5) and (0,1)x(6,5): A components (0,5) vs (0,6)
        // differ, so the product rows must disagree on A.
        let ts: Vec<Tuple> = p.row_slices().map(Tuple::from_slice).collect();
        // Row order: (m0,n0), (m0,n1), (m1,n0), (m1,n1).
        assert!(
            ts[0].agrees_on(&ts[1], crate::ids::AttrId::new(1)),
            "B: (0,5)=(0,5)"
        );
        assert!(
            !ts[0].agrees_on(&ts[1], crate::ids::AttrId::new(0)),
            "A: (0,5)≠(0,6)"
        );
        assert!(
            ts[0].agrees_on(&ts[2], crate::ids::AttrId::new(0)),
            "A: (0,5)=(0,5)"
        );
    }

    #[test]
    fn preservation_on_example() {
        let td = fig1ish();
        // Two models of td.
        let mut m = Instance::new(schema());
        m.insert_values([0, 0]).unwrap();
        m.insert_values([1, 1]).unwrap();
        assert!(satisfies(&m, &td));
        let mut n = Instance::new(schema());
        n.insert_values([0, 0]).unwrap();
        n.insert_values([0, 1]).unwrap();
        assert!(satisfies(&n, &td));
        let (p, _) = direct_product(&m, &n).unwrap();
        assert!(satisfies(&p, &td), "TDs are preserved under products");
    }

    #[test]
    fn non_model_components_can_break_the_product() {
        // Preservation needs BOTH components to be models: here n violates
        // a *full* dependency and the product does too.
        let full = TdBuilder::new(schema())
            .antecedent(["a", "b"])
            .unwrap()
            .antecedent(["a'", "b'"])
            .unwrap()
            .conclusion(["a", "b'"])
            .unwrap()
            .build("product-td")
            .unwrap();
        let m = singleton(schema()); // trivially a model
        let mut n = Instance::new(schema());
        n.insert_values([0, 0]).unwrap();
        n.insert_values([1, 1]).unwrap();
        assert!(!satisfies(&n, &full));
        let (p, _) = direct_product(&m, &n).unwrap();
        assert!(!satisfies(&p, &full));
    }

    #[test]
    fn power_sizes() {
        let mut m = Instance::new(schema());
        m.insert_values([0, 0]).unwrap();
        m.insert_values([1, 1]).unwrap();
        assert_eq!(direct_power(&m, 1).unwrap().len(), 2);
        assert_eq!(direct_power(&m, 2).unwrap().len(), 4);
        assert_eq!(direct_power(&m, 3).unwrap().len(), 8);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let m = singleton(schema());
        let n = singleton(Schema::new("S", ["X"]).unwrap());
        assert!(direct_product(&m, &n).is_err());
    }

    #[test]
    fn singleton_is_a_model_of_everything_satisfiable() {
        // One row satisfies every TD (the conclusion can be witnessed by
        // the row itself whenever the antecedents match at all — all
        // variables collapse onto the single row's values).
        let one = singleton(schema());
        assert!(satisfies(&one, &fig1ish()));
    }
}
