//! Tuples of typed values — the *builder/view* companion of the arena
//! store.
//!
//! Since the storage refactor, [`Instance`](crate::instance::Instance)
//! keeps its rows in one flat arena and hands them out as plain `&[Value]`
//! slices; nothing on a hot path allocates a `Tuple` anymore. This type
//! remains as the **owned** row representation for everything that must
//! outlive an instance borrow or exist before insertion: building rows to
//! insert, recording rows in [`ChaseProof`](crate::chase::ChaseProof)
//! steps, and displaying rows to humans. Convert between the two with
//! [`Tuple::from_slice`] / [`Tuple::values`].

use crate::ids::{AttrId, Value};

/// One owned row of the relation: a vector of [`Value`]s, one per column.
///
/// Values are typed per column (the paper's typing restriction): the `Value`
/// in column 0 and the `Value` in column 1 live in disjoint domains even when
/// their numeric ids coincide.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        Self {
            values: values.into_iter().collect(),
        }
    }

    /// Creates a tuple from raw `u32` value ids.
    pub fn from_raw(values: impl IntoIterator<Item = u32>) -> Self {
        Self::new(values.into_iter().map(Value::new))
    }

    /// Copies a borrowed row slice (as handed out by
    /// [`Instance::row`](crate::instance::Instance::row)) into an owned
    /// tuple.
    pub fn from_slice(values: &[Value]) -> Self {
        Self {
            values: values.to_vec(),
        }
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value in column `col`.
    ///
    /// # Panics
    /// Panics if `col` is out of range.
    pub fn get(&self, col: AttrId) -> Value {
        self.values[col.index()]
    }

    /// Replaces the value in column `col`, returning the old value.
    pub fn set(&mut self, col: AttrId, v: Value) -> Value {
        std::mem::replace(&mut self.values[col.index()], v)
    }

    /// Iterates over `(AttrId, Value)` pairs in column order.
    pub fn components(&self) -> impl Iterator<Item = (AttrId, Value)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (AttrId::from(i), v))
    }

    /// The underlying value slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// `true` if this tuple agrees with `other` on column `col`.
    pub fn agrees_on(&self, other: &Tuple, col: AttrId) -> bool {
        self.get(col) == other.get(col)
    }
}

/// Formats a borrowed row slice exactly like [`Tuple`]'s `Display`:
/// `(v0, v1, …)` with raw value ids. Shared by `Instance`'s row listing so
/// arena rows print without being copied into tuples first.
///
/// # Errors
///
/// Propagates formatter write errors, like any `Display` impl.
pub fn fmt_row(f: &mut std::fmt::Formatter<'_>, values: &[Value]) -> std::fmt::Result {
    write!(f, "(")?;
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{}", v.raw())?;
    }
    write!(f, ")")
}

impl std::fmt::Display for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_row(f, &self.values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::from_raw([5, 7, 9]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(AttrId::new(1)), Value::new(7));
        assert_eq!(t.values().len(), 3);
    }

    #[test]
    fn set_replaces() {
        let mut t = Tuple::from_raw([1, 2]);
        let old = t.set(AttrId::new(0), Value::new(9));
        assert_eq!(old, Value::new(1));
        assert_eq!(t.get(AttrId::new(0)), Value::new(9));
    }

    #[test]
    fn agreement() {
        let a = Tuple::from_raw([1, 2, 3]);
        let b = Tuple::from_raw([1, 9, 3]);
        assert!(a.agrees_on(&b, AttrId::new(0)));
        assert!(!a.agrees_on(&b, AttrId::new(1)));
        assert!(a.agrees_on(&b, AttrId::new(2)));
    }

    #[test]
    fn display_and_collect() {
        let t: Tuple = [Value::new(1), Value::new(2)].into_iter().collect();
        assert_eq!(t.to_string(), "(1, 2)");
    }

    #[test]
    fn slice_roundtrip() {
        let t = Tuple::from_raw([3, 1, 4]);
        let copy = Tuple::from_slice(t.values());
        assert_eq!(t, copy);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Tuple::from_raw([1, 2]) < Tuple::from_raw([1, 3]));
        assert!(Tuple::from_raw([0, 9]) < Tuple::from_raw([1, 0]));
    }
}
