//! Error type for the reduction crate.

use std::fmt;

use td_core::error::CoreError;
use td_semigroup::error::SgError;

/// Errors from building or exercising the reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedError {
    /// An error bubbled up from the database layer.
    Core(CoreError),
    /// An error bubbled up from the semigroup layer.
    Sg(SgError),
    /// The presentation handed to the reduction was not normalized to
    /// `(2,1)` equations (run `td_semigroup::normalize` first).
    NotNormalized {
        /// Index of the offending equation.
        eq_index: usize,
    },
    /// A precondition of the paper's construction was violated (e.g. part
    /// (B) requires a cancellation semigroup without identity).
    Precondition(String),
    /// A bridge invariant failed.
    BridgeInvariant(String),
    /// The guided part (A) chase did not reach the goal (indicates a bug or
    /// a corrupt derivation).
    GuidedChaseFailed(String),
    /// A named-session operation failed (unknown id, duplicate id or
    /// dependency name, schema mismatch against the session's Σ, …).
    Session(String),
    /// The request was rejected because the serving
    /// [`crate::engine::Engine`] has been shut down.
    ShutDown,
    /// An internal engine lock was poisoned: a thread panicked while
    /// holding it, so the protected state can no longer be trusted for
    /// this request. Carries the name of the poisoned structure. Callers
    /// see a structured error instead of a cascading panic; the engine
    /// itself stays up.
    Poisoned(&'static str),
    /// A decision-cache snapshot was structurally invalid (bad magic,
    /// unsupported format version, truncation, checksum mismatch). Carries
    /// the byte offset of the defect; nothing was loaded.
    Snapshot(crate::snapshot::SnapshotError),
}

impl fmt::Display for RedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedError::Core(e) => write!(f, "database layer: {e}"),
            RedError::Sg(e) => write!(f, "semigroup layer: {e}"),
            RedError::NotNormalized { eq_index } => write!(
                f,
                "equation #{eq_index} is not in (2,1) shape; normalize the presentation first"
            ),
            RedError::Precondition(msg) => write!(f, "precondition violated: {msg}"),
            RedError::BridgeInvariant(msg) => write!(f, "bridge invariant violated: {msg}"),
            RedError::GuidedChaseFailed(msg) => write!(f, "guided chase failed: {msg}"),
            RedError::Session(msg) => write!(f, "{msg}"),
            RedError::ShutDown => write!(f, "engine is shut down"),
            RedError::Poisoned(what) => {
                write!(
                    f,
                    "internal error: {what} lock poisoned by an earlier panic"
                )
            }
            RedError::Snapshot(e) => write!(f, "cache snapshot rejected: {e}"),
        }
    }
}

impl std::error::Error for RedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RedError::Core(e) => Some(e),
            RedError::Sg(e) => Some(e),
            RedError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for RedError {
    fn from(e: CoreError) -> Self {
        RedError::Core(e)
    }
}

impl From<SgError> for RedError {
    fn from(e: SgError) -> Self {
        RedError::Sg(e)
    }
}

impl From<crate::snapshot::SnapshotError> for RedError {
    fn from(e: crate::snapshot::SnapshotError) -> Self {
        RedError::Snapshot(e)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T, E = RedError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RedError = CoreError::EmptySchema.into();
        assert!(e.to_string().contains("database layer"));
        let e: RedError = SgError::EmptyWord.into();
        assert!(e.to_string().contains("semigroup layer"));
        let e = RedError::NotNormalized { eq_index: 3 };
        assert!(e.to_string().contains("#3"));
        use std::error::Error;
        let e: RedError = CoreError::EmptySchema.into();
        assert!(e.source().is_some());
        assert!(RedError::Precondition("x".into()).source().is_none());
    }
}
