//! Part (A) of the Reduction Theorem, executably.
//!
//! The paper's proof of (A) is an induction: given the replacement sequence
//! `u₀ = A₀, u₁, …, u_m = 0`, the chase maintains a *bridge* for each `u_j`
//! whose base endpoints are the frozen `a` and `b` of `D₀`'s antecedents
//! and whose apexes are all `E′`-linked to the original apex `d₀`. Each
//! replacement step is simulated by firing reduction dependencies:
//!
//! * contraction (`AB → C` at position `i`): fire `D1(r)` on base points
//!   `cᵢ, cᵢ₊₁, cᵢ₊₂` and apexes `dᵢ₊₁, dᵢ₊₂` — the new row is the
//!   `C`-apex over `(cᵢ, cᵢ₊₂)`;
//! * expansion (`C → AB` at position `i`): fire `D2(r)` (new `A`-apex with
//!   dangling foot), `D3(r)` (new `B`-apex with dangling foot), then
//!   `D4(r)` (the merged middle base point) — rebuilding the two triangles.
//!
//! When `u_m = 0` is reached, the bridge is a `0`-triangle over `(a, b)`
//! with apex `E′`-linked to `d₀` — exactly `D₀`'s conclusion, so the goal
//! pattern is present and the engine's [`ChaseProof`] certifies `D ⊨ D₀`.
//!
//! [`prove_part_a`] runs that *guided* chase (linear in the derivation
//! length); [`prove_unguided`] lets the fair chase engine find the proof by
//! itself, for cross-validation and benchmarks.

use td_core::chase::{ChaseBudget, ChaseEngine, ChaseOutcome, ChasePolicy, ChaseProof, Goal};
use td_core::homomorphism::{Binding, MatchStrategy};
use td_core::inference::freeze;
use td_core::instance::Instance;
use td_core::td::Td;
use td_core::tuple::Tuple;
use td_semigroup::derivation::Derivation;
use td_semigroup::presentation::Presentation;

use crate::deps::ReductionSystem;
use crate::error::{RedError, Result};

/// The output of a successful part (A) run.
#[derive(Debug, Clone)]
pub struct PartAProof {
    /// The frozen tableau of `D₀`'s antecedents (chase start state).
    pub frozen: Instance,
    /// The goal pattern (frozen conclusion of `D₀`).
    pub goal: Goal,
    /// The replayable chase proof (fired triggers + goal row).
    pub proof: ChaseProof,
}

impl PartAProof {
    /// Independently re-verifies the proof against the dependency set.
    ///
    /// # Errors
    ///
    /// Fails when any recorded trigger does not replay (wrong TD name,
    /// stale binding) or the goal row is not matched by the final state.
    pub fn verify(&self, system: &ReductionSystem) -> Result<()> {
        self.proof
            .verify(&self.frozen, &system.deps, Some(&self.goal))?;
        Ok(())
    }
}

/// Builds the binding that maps each antecedent row of `td` (in row order)
/// onto the corresponding tuple.
fn binding_for(td: &Td, tuples: &[&Tuple]) -> Result<Binding> {
    debug_assert_eq!(td.antecedent_count(), tuples.len());
    let mut b = Binding::new(td.arity());
    for (row, tuple) in td.antecedents().iter().zip(tuples) {
        for (c, v) in row.components() {
            if !b.bind(c, v, tuple.get(c)) {
                return Err(RedError::GuidedChaseFailed(format!(
                    "bridge invariant broken: conflicting binding for `{}` \
                     in column {c}",
                    td.name()
                )));
            }
        }
    }
    Ok(b)
}

/// Runs the guided chase for a derivation `A₀ ⇒* 0` over the (normalized,
/// zero-saturated) presentation `p` that `system` was built from, matching
/// with the default [`MatchStrategy::Indexed`]. Returns a verified chase
/// proof that `D ⊨ D₀`.
///
/// # Errors
///
/// Fails with [`RedError::GuidedChaseFailed`] when the derivation does
/// not replay against the bridge (a broken bridge invariant or a step the
/// dependencies cannot mirror), and propagates verification errors from
/// the final [`PartAProof::verify`].
pub fn prove_part_a(
    system: &ReductionSystem,
    p: &Presentation,
    derivation: &Derivation,
) -> Result<PartAProof> {
    prove_part_a_with(system, p, derivation, MatchStrategy::default())
}

/// [`prove_part_a`] under an explicit homomorphism [`MatchStrategy`]. The
/// guided replay fires triggers by name rather than searching for them, so
/// the strategy only steers the engine's internal witness checks — but
/// threading it keeps `tdq wp --strategy` honest end to end: every engine
/// the pipeline constructs runs under the selected matcher.
///
/// # Errors
///
/// Same as [`prove_part_a`].
pub fn prove_part_a_with(
    system: &ReductionSystem,
    p: &Presentation,
    derivation: &Derivation,
    strategy: MatchStrategy,
) -> Result<PartAProof> {
    // Validate the derivation endpoints.
    let goal_eq = p.goal();
    derivation
        .verify(p, &goal_eq.lhs, &goal_eq.rhs)
        .map_err(RedError::Sg)?;
    let words = derivation.replay(p).map_err(RedError::Sg)?;

    // Freeze D0's antecedents: rows t1 (a), t2 (b), t3 (d0), in that order.
    let (frozen, _, goal) = freeze(&system.d0)?;
    let t1 = Tuple::from_slice(frozen.get(td_core::ids::RowId::new(0))?);
    let t2 = Tuple::from_slice(frozen.get(td_core::ids::RowId::new(1))?);
    let d0 = Tuple::from_slice(frozen.get(td_core::ids::RowId::new(2))?);

    let mut engine = ChaseEngine::new(
        &system.deps,
        frozen.clone(),
        ChasePolicy::Restricted,
        ChaseBudget::unlimited(),
    )?
    .with_strategy(strategy);

    // The live bridge: tuples of base points and apexes.
    let mut bases: Vec<Tuple> = vec![t1, t2];
    let mut apexes: Vec<Tuple> = vec![d0];

    for (step_ix, step) in derivation.steps.iter().enumerate() {
        let rule_ix = *system.eq_to_rule.get(step.eq_index).ok_or_else(|| {
            RedError::GuidedChaseFailed(format!(
                "step {step_ix}: equation index {} has no rule",
                step.eq_index
            ))
        })?;
        let i = step.pos;
        let word_before = &words[step_ix];
        // (1,1) relabeling rules swap one triangle's symbol in place.
        if let crate::deps::Rule::Identify { .. } = system.rules[rule_ix] {
            if i >= word_before.len() {
                return Err(RedError::GuidedChaseFailed(format!(
                    "step {step_ix}: relabeling at {i} exceeds word length"
                )));
            }
            // Forward uses D5 (a -> b), backward D6 (b -> a).
            let k = if step.forward { 1 } else { 2 };
            let dk = system.dep(rule_ix, k);
            let binding = binding_for(dk, &[&bases[i], &bases[i + 1], &apexes[i]])?;
            let (new_apex, _) = engine.fire(system.dep_index(rule_ix, k), &binding)?;
            apexes[i] = new_apex;
            continue;
        }
        if step.forward {
            // Contraction AB -> C at position i: bases i, i+1, i+2 and
            // apexes i, i+1 exist because |word_before| >= i+2.
            if i + 2 > word_before.len() {
                return Err(RedError::GuidedChaseFailed(format!(
                    "step {step_ix}: contraction at {i} exceeds word length"
                )));
            }
            let d1 = system.dep(rule_ix, 1);
            let binding = binding_for(
                d1,
                &[
                    &bases[i],
                    &bases[i + 1],
                    &bases[i + 2],
                    &apexes[i],
                    &apexes[i + 1],
                ],
            )?;
            let (new_apex, _) = engine.fire(system.dep_index(rule_ix, 1), &binding)?;
            bases.remove(i + 1);
            apexes.splice(i..=i + 1, [new_apex]);
        } else {
            // Expansion C -> AB at position i.
            if i >= word_before.len() {
                return Err(RedError::GuidedChaseFailed(format!(
                    "step {step_ix}: expansion at {i} exceeds word length"
                )));
            }
            let base_l = bases[i].clone();
            let base_r = bases[i + 1].clone();
            let apex_c = apexes[i].clone();
            let d2 = system.dep(rule_ix, 2);
            let binding = binding_for(d2, &[&base_l, &base_r, &apex_c])?;
            let (t4, _) = engine.fire(system.dep_index(rule_ix, 2), &binding)?;
            let d3 = system.dep(rule_ix, 3);
            let binding = binding_for(d3, &[&base_l, &base_r, &apex_c])?;
            let (t5, _) = engine.fire(system.dep_index(rule_ix, 3), &binding)?;
            let d4 = system.dep(rule_ix, 4);
            let binding = binding_for(d4, &[&base_l, &base_r, &apex_c, &t4, &t5])?;
            let (new_base, _) = engine.fire(system.dep_index(rule_ix, 4), &binding)?;
            bases.insert(i + 1, new_base);
            apexes.splice(i..=i, [t4, t5]);
        }
    }

    // The final bridge must be the 0-triangle over (a, b): goal present.
    if goal.find_in(engine.state()).is_none() {
        return Err(RedError::GuidedChaseFailed(
            "derivation replayed but the goal pattern is absent".into(),
        ));
    }
    let (state, mut proof) = engine.into_parts();
    let goal_row = goal.find_in(&state).expect("checked above");
    proof.goal_row = Some(Tuple::from_slice(state.get(goal_row)?));

    let out = PartAProof {
        frozen,
        goal,
        proof,
    };
    out.verify(system)?;
    Ok(out)
}

/// Lets the fair chase engine search for the `D ⊨ D₀` proof without
/// guidance. Returns the outcome plus the engine's statistics.
///
/// # Errors
///
/// Propagates chase-engine construction/firing errors and proof
/// verification failures; exhausting the budget is **not** an error (it
/// is reported in the returned [`ChaseOutcome`]).
pub fn prove_unguided(
    system: &ReductionSystem,
    budget: ChaseBudget,
) -> Result<(ChaseOutcome, usize, usize, Option<PartAProof>)> {
    prove_unguided_with(system, budget, MatchStrategy::default())
}

/// [`prove_unguided`] under an explicit homomorphism [`MatchStrategy`] —
/// the benchmark harness uses this to pit the indexed planner against the
/// naive oracle on identical workloads.
///
/// # Errors
///
/// Same as [`prove_unguided`].
pub fn prove_unguided_with(
    system: &ReductionSystem,
    budget: ChaseBudget,
    strategy: MatchStrategy,
) -> Result<(ChaseOutcome, usize, usize, Option<PartAProof>)> {
    let (frozen, _, goal) = freeze(&system.d0)?;
    let mut engine = ChaseEngine::new(
        &system.deps,
        frozen.clone(),
        ChasePolicy::Restricted,
        budget,
    )?
    .with_strategy(strategy);
    let outcome = engine.run(Some(&goal));
    let steps = engine.steps_fired();
    let rounds = engine.rounds_run();
    let proof = if outcome == ChaseOutcome::GoalReached {
        let (_, proof) = engine.into_parts();
        let out = PartAProof {
            frozen,
            goal,
            proof,
        };
        out.verify(system)?;
        Some(out)
    } else {
        None
    };
    Ok((outcome, steps, rounds, proof))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::build_system;
    use td_semigroup::alphabet::Alphabet;
    use td_semigroup::derivation::{search_goal_derivation, SearchBudget};
    use td_semigroup::equation::Equation;

    /// The running derivable example: A0 => A1 A1 => 0.
    fn derivable() -> Presentation {
        let alphabet = Alphabet::standard(2);
        let e1 = Equation::parse("A1 A1 = A0", &alphabet).unwrap();
        let e2 = Equation::parse("A1 A1 = 0", &alphabet).unwrap();
        let mut p = Presentation::new(alphabet, vec![e1, e2]).unwrap();
        p.saturate_with_zero_equations();
        p
    }

    #[test]
    fn guided_chase_proves_d0() {
        let p = derivable();
        let system = build_system(&p).unwrap();
        let derivation = search_goal_derivation(&p, &SearchBudget::default())
            .derivation()
            .unwrap()
            .clone();
        let proof = prove_part_a(&system, &p, &derivation).unwrap();
        // One expansion (3 firings) + one contraction (1 firing).
        assert_eq!(proof.proof.len(), 4);
        assert!(proof.proof.goal_row.is_some());
        // Re-verify independently (verify() ran inside prove_part_a too).
        proof.verify(&system).unwrap();
    }

    #[test]
    fn unguided_chase_agrees() {
        let p = derivable();
        let system = build_system(&p).unwrap();
        let budget = ChaseBudget {
            max_steps: 5_000,
            max_rows: 5_000,
            max_rounds: 50,
        };
        let (outcome, steps, _rounds, proof) = prove_unguided(&system, budget).unwrap();
        assert_eq!(outcome, ChaseOutcome::GoalReached);
        assert!(steps > 0);
        proof.unwrap().verify(&system).unwrap();
    }

    #[test]
    fn longer_derivations_replay() {
        // A0 -> A1 A1 -> A0 A1 A1? No: use expansions/contractions chain:
        // A0 => A1 A1 => (expand A1? no rule) … build a presentation with a
        // 2-level tower: A1 A1 = A0, A2 A2 = A1, A2 A2 = … and a route
        // A0 => A1 A1 => (A2 A2) A1 => … too long to force 0; instead give
        // A1 a direct zero: A1 0? Already have zero eqs: A1 0 = 0. Route:
        // A0 => A1 A1 => A1·(A2 A2)… no contraction to 0. Simplest longer
        // route: A1 A1 = A0, A1 A2 = A1 (peels A2), A2 A2 = 0:
        // A0 => A1 A1 => (A1 A2) A1 => … hmm; rely on BFS to find whatever
        // shortest route exists and replay it.
        let alphabet = Alphabet::standard(3);
        let eqs = vec![
            Equation::parse("A1 A1 = A0", &alphabet).unwrap(),
            Equation::parse("A2 A2 = A1", &alphabet).unwrap(),
            Equation::parse("A2 A1 = 0", &alphabet).unwrap(),
        ];
        let mut p = Presentation::new(alphabet, eqs).unwrap();
        p.saturate_with_zero_equations();
        let r = search_goal_derivation(
            &p,
            &SearchBudget {
                max_word_len: 8,
                max_states: 500_000,
            },
        );
        let derivation = r
            .derivation()
            .expect("A0 => A1 A1 => (A2 A2) A1 => A2 (A2 A1) => A2 0 => 0");
        assert!(derivation.len() >= 4);
        let system = build_system(&p).unwrap();
        let proof = prove_part_a(&system, &p, derivation).unwrap();
        proof.verify(&system).unwrap();
        // Guided proof length: expansions cost 3 firings, contractions 1.
        assert!(proof.proof.len() >= derivation.len());
    }

    #[test]
    fn corrupt_derivation_rejected() {
        let p = derivable();
        let system = build_system(&p).unwrap();
        let mut derivation = search_goal_derivation(&p, &SearchBudget::default())
            .derivation()
            .unwrap()
            .clone();
        derivation.steps.pop();
        // No longer ends at 0.
        assert!(matches!(
            prove_part_a(&system, &p, &derivation),
            Err(RedError::Sg(_))
        ));
    }
}
