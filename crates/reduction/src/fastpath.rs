//! The axiom-driven fast path: a staged prescreen that settles easy
//! implication questions in microseconds — or bails, certainly and
//! cheaply, to the full solver.
//!
//! The full pipeline pays the chase/semigroup race on every cold solve
//! (tens of milliseconds); caching and snapshots only amortize that cost.
//! This module attacks it: most machine-generated corpora are dominated by
//! *easy* questions — tautological goals, goals one axiom application away
//! from a premise, or instances whose own frozen goal tableau is already a
//! countermodel — and each of those is decidable by the Sadri–Ullman
//! weakening calculus ([`td_core::axioms`]) without ever warming up a
//! search.
//!
//! [`prescreen`] runs four stages over the reduced system `(D, D₀)`, in
//! fail-fast cost order, and returns a **certain** verdict or bails:
//!
//! 1. **Tautology** — `D₀`'s conclusion row is witnessed by one of its own
//!    antecedent rows ([`td_core::td::Td::is_trivial`]): implied by the
//!    empty set, verdict `Implied`.
//! 2. **Refutation probe** — a small template instance (the frozen `D₀`
//!    antecedent tableau, [`td_core::inference::freeze`]) satisfies every
//!    premise yet violates `D₀`: a finite countermodel in hand, verdict
//!    `Refuted`. One dependency sweep with an early break — refutable
//!    instances settle in a single pass, implied ones leave at the first
//!    firing premise. The per-dependency checks ride the existing
//!    allocation-free matchers ([`td_core::homomorphism::row_match_exists`]
//!    behind [`td_core::satisfaction::conclusion_witnessed_with`]).
//! 3. **Subsumption** — some premise implies `D₀` in at most one chase
//!    step ([`td_core::axioms::subsumes`]): verdict `Implied`.
//! 4. **Bounded weakening** — `D₀` is syntactically reachable from a
//!    premise by a short chain of canonical weakenings
//!    ([`td_core::axioms::derivable_by_weakening_within`]): verdict
//!    `Implied`. This is the one stage with an exponential tree, so it
//!    runs last on its own small sub-allowance
//!    ([`FastBudget::weaken_checks`]), drawn from whatever the shared
//!    [`FastBudget::max_checks`] cap has left.
//!
//! Stages 1/3/4 settle `Implied`, stage 2 settles `Refuted`; the two are
//! mutually exclusive (a sound implication proof and a countermodel cannot
//! coexist), so stage order affects only cost, never the verdict.
//!
//! Every settled verdict carries a replayable [`FastReason`] — which rule
//! fired, or which template instance refutes — and [`replay`] re-verifies
//! it from scratch; the solve paths `debug_assert!` the replay. The
//! prescreen never consults a shared cancellation token: its spend is
//! bounded by its own deterministic [`FastBudget`] ticker, so the verdict,
//! the check count, and the truncation label are all replay-exact — the
//! property the portfolio's deterministic winner rule and the spend
//! goldens rely on.

use td_core::axioms::{derivable_by_weakening_within, subsumes, subsumes_frozen};
use td_core::budget::{Cancellation, Ticker};
use td_core::homomorphism::{Binding, MatchStrategy};
use td_core::inference::freeze;
use td_core::instance::Instance;
use td_core::satisfaction::{conclusion_witnessed_with, satisfies_with};

use crate::deps::ReductionSystem;
use crate::error::{RedError, Result};

/// Hard, deterministic spend caps for one [`prescreen`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastBudget {
    /// Maximum canonical-weakening proof-search depth per premise
    /// (stage 4). Depth 1 already covers every single-weakening
    /// consequence that subsumption missed; the exponential tree above
    /// depth 2 is not worth prescreen time.
    pub weaken_depth: usize,
    /// Hard cap on total prescreen spend, in *checks*: one unit per
    /// subsumption test, per probe dependency check, and per weakening
    /// search node. Exhausting the cap bails (it never fakes a verdict)
    /// and labels the spend truncated.
    pub max_checks: u64,
    /// Sub-cap on stage 4 alone (weakening search nodes), drawn from
    /// whatever `max_checks` has left. The weakening tree is the one
    /// exponential stage, and on hard instances it would otherwise burn
    /// the whole budget in milliseconds; a small dedicated allowance keeps
    /// the worst-case bail in the microsecond regime.
    pub weaken_checks: u64,
}

impl Default for FastBudget {
    fn default() -> Self {
        Self {
            weaken_depth: 2,
            max_checks: 256,
            weaken_checks: 8,
        }
    }
}

/// The replayable reason a fast-path verdict was settled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastReason {
    /// `D₀` is a tautology: an antecedent row witnesses its conclusion, so
    /// every database satisfies it.
    TrivialGoal,
    /// `deps[premise]` implies `D₀` in at most one chase step.
    Subsumed {
        /// Index of the subsuming premise in [`ReductionSystem::deps`].
        premise: usize,
    },
    /// `D₀` is reachable from `deps[premise]` by at most `depth` canonical
    /// weakenings.
    Weakened {
        /// Index of the premise the weakening chain starts from.
        premise: usize,
        /// The depth bound the chain was found within.
        depth: usize,
    },
    /// Probe template `template` — a `rows`-row instance — satisfies every
    /// premise and violates `D₀`: a finite countermodel.
    Probe {
        /// Index into the [`probe_templates`] family.
        template: usize,
        /// Rows of the refuting instance.
        rows: usize,
    },
}

/// A certain verdict the prescreen settled, with its replayable reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastVerdict {
    /// `D ⊨ D₀` — settled by a syntactic implication rule.
    Implied(FastReason),
    /// `D ⊭ D₀` over finite databases — a probe instance refutes it.
    Refuted(FastReason),
}

impl FastVerdict {
    /// `true` for [`FastVerdict::Implied`].
    pub fn is_implied(&self) -> bool {
        matches!(self, FastVerdict::Implied(_))
    }

    /// The reason the verdict was settled.
    pub fn reason(&self) -> &FastReason {
        match self {
            FastVerdict::Implied(r) | FastVerdict::Refuted(r) => r,
        }
    }

    /// Rows of the refuting probe instance, for refuted verdicts.
    pub fn model_rows(&self) -> Option<usize> {
        match self {
            FastVerdict::Refuted(FastReason::Probe { rows, .. }) => Some(*rows),
            _ => None,
        }
    }

    /// Renders the reason for diagnostics (`tdq wp`), naming the premise
    /// that fired.
    pub fn describe(&self, system: &ReductionSystem) -> String {
        let premise_name = |i: usize| {
            system
                .deps
                .get(i)
                .map(|td| td.name().to_string())
                .unwrap_or_else(|| format!("#{i}"))
        };
        match self.reason() {
            FastReason::TrivialGoal => "D0 is a tautology (conclusion witnessed by an antecedent row)".to_string(),
            FastReason::Subsumed { premise } => format!(
                "premise {} subsumes D0 (at most one chase step)",
                premise_name(*premise)
            ),
            FastReason::Weakened { premise, depth } => format!(
                "D0 is a weakening of premise {} (within {} canonical steps)",
                premise_name(*premise),
                depth
            ),
            FastReason::Probe { template, rows } => format!(
                "probe template {template} ({rows} rows, the frozen D0 tableau) satisfies D and violates D0"
            ),
        }
    }
}

/// What one [`prescreen`] call produced: a settled verdict or a bail, plus
/// deterministic spend accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prescreen {
    /// The certain verdict, if any stage settled.
    pub verdict: Option<FastVerdict>,
    /// Checks spent (subsumption tests + probe dependency checks +
    /// weakening nodes). Exact unless `truncated`.
    pub checks: u64,
    /// `true` when the prescreen bailed because [`FastBudget::max_checks`]
    /// ran out before every stage finished: `checks` is then the cap, and
    /// a richer budget might still have settled.
    pub truncated: bool,
}

/// The probe template family for `system`: small candidate countermodels,
/// cheapest first. Template 0 is the frozen `D₀` antecedent tableau — the
/// canonical candidate, since it violates `D₀` whenever the goal is
/// non-trivial, so it refutes exactly when it also satisfies every
/// premise. The family is indexed (see [`FastReason::Probe`]) so richer
/// templates can join without disturbing replay.
///
/// # Errors
///
/// Fails when freezing `D₀`'s antecedent tableau fails (arity defects —
/// impossible for a system built by [`crate::deps::build_system`]).
pub fn probe_templates(system: &ReductionSystem) -> Result<Vec<(Instance, Binding)>> {
    let (frozen, binding, _goal) = freeze(&system.d0)?;
    Ok(vec![(frozen, binding)])
}

/// Runs the staged prescreen over a reduced system. Returns a *certain*
/// verdict or bails; never errs on the side of a guess. See the module
/// docs for the stages and their order.
///
/// # Errors
///
/// Fails when a subsumption test or template construction fails
/// structurally (schema mismatch between a premise and `D₀` — impossible
/// for systems built by [`crate::deps::build_system`]).
pub fn prescreen(system: &ReductionSystem, budget: &FastBudget) -> Result<Prescreen> {
    // The prescreen's determinism contract forbids observing any shared
    // cancellation token (see module docs): the ticker binds a private,
    // never-cancelled token and stops on its own spend cap only.
    let never = Cancellation::new();
    let mut ticker = Ticker::new(&never, budget.max_checks, u64::MAX);

    // Stage 1: tautological goal — free (no ticker spend).
    if system.d0.is_trivial() {
        return Ok(Prescreen {
            verdict: Some(FastVerdict::Implied(FastReason::TrivialGoal)),
            checks: ticker.spent(),
            truncated: false,
        });
    }

    // D₀'s antecedent tableau, frozen once: stage 2 probes it as template 0
    // of [`probe_templates`] and stage 3 matches premises into it.
    let (frozen, binding, goal) = freeze(&system.d0)?;
    let goal_rows = system.d0.antecedent_count();

    // Stage 2: refutation probe over the template family — here template 0,
    // the frozen tableau already in hand. A template that satisfies every
    // premise and violates D₀ *is* a finite countermodel. This runs before
    // the subsumption scan because it is one dependency sweep with an early
    // break: refutable instances settle after a single pass, and implied
    // ones leave at the first firing premise — whereas the old
    // subsumption-first order made every refutation pay both full sweeps.
    {
        let (t, instance) = (0usize, &frozen);
        let mut satisfies_all = true;
        for dep in &system.deps {
            if !ticker.tick() {
                return Ok(bail(&ticker));
            }
            if !satisfies_with(MatchStrategy::Indexed, instance, dep) {
                satisfies_all = false;
                break;
            }
        }
        if satisfies_all {
            if !ticker.tick() {
                return Ok(bail(&ticker));
            }
            // The identity match of D₀'s antecedents is unwitnessed ⇒ the
            // template violates D₀ (checked allocation-free against the
            // frozen goal pattern).
            if !conclusion_witnessed_with(MatchStrategy::Indexed, instance, &system.d0, &binding) {
                return Ok(Prescreen {
                    verdict: Some(FastVerdict::Refuted(FastReason::Probe {
                        template: t,
                        rows: instance.len(),
                    })),
                    checks: ticker.spent(),
                    truncated: false,
                });
            }
        }
    }

    // Stage 3: single-step subsumption by any premise. Premises with more
    // antecedent rows than D₀'s tableau has rows are skipped without
    // spending a check: such a premise can only subsume by collapsing rows,
    // a corner the full solver covers — the skip is deterministic and only
    // narrows coverage, never flips a verdict.
    for (i, premise) in system.deps.iter().enumerate() {
        if premise.antecedent_count() > goal_rows {
            continue;
        }
        if !ticker.tick() {
            return Ok(bail(&ticker));
        }
        if subsumes_frozen(premise, &frozen, &goal) {
            return Ok(Prescreen {
                verdict: Some(FastVerdict::Implied(FastReason::Subsumed { premise: i })),
                checks: ticker.spent(),
                truncated: false,
            });
        }
    }

    // Stage 4: bounded-depth weakening derivability — the one exponential
    // stage, last, on its own sub-allowance (never more than what the main
    // budget has left). Canonical weakenings never drop an antecedent row,
    // so premises already wider than D₀ can never reach it: skipping them
    // here is complete, not just sound.
    let weaken_cap = budget
        .weaken_checks
        .min(budget.max_checks.saturating_sub(ticker.spent()));
    let mut weaken_ticker = Ticker::new(&never, weaken_cap, u64::MAX);
    for (i, premise) in system.deps.iter().enumerate() {
        if premise.antecedent_count() > goal_rows {
            continue;
        }
        if derivable_by_weakening_within(
            premise,
            &system.d0,
            budget.weaken_depth,
            &mut weaken_ticker,
        ) {
            return Ok(Prescreen {
                verdict: Some(FastVerdict::Implied(FastReason::Weakened {
                    premise: i,
                    depth: budget.weaken_depth,
                })),
                checks: ticker.spent() + weaken_ticker.spent(),
                truncated: false,
            });
        }
        if weaken_ticker.stopped() {
            return Ok(Prescreen {
                verdict: None,
                checks: ticker.spent() + weaken_ticker.spent(),
                truncated: true,
            });
        }
    }

    Ok(Prescreen {
        verdict: None,
        checks: ticker.spent() + weaken_ticker.spent(),
        truncated: false,
    })
}

/// A budget-exhausted bail: no verdict, spend labelled truncated.
fn bail(ticker: &Ticker<'_>) -> Prescreen {
    Prescreen {
        verdict: None,
        checks: ticker.spent(),
        truncated: true,
    }
}

/// Re-verifies a settled fast-path verdict from scratch: re-runs exactly
/// the rule its [`FastReason`] names. `Ok(true)` means the reason replays;
/// `Ok(false)` means it does not certify the verdict against this system
/// (wrong system, or a corrupted reason).
///
/// # Errors
///
/// Fails when the reason refers to a premise index outside
/// [`ReductionSystem::deps`], or when the named rule itself fails
/// structurally (schema mismatch).
pub fn replay(system: &ReductionSystem, verdict: &FastVerdict) -> Result<bool> {
    let premise = |i: usize| {
        system.deps.get(i).ok_or_else(|| {
            RedError::Precondition(format!(
                "fast-path reason names premise {i}, but the system has {} dependencies",
                system.deps.len()
            ))
        })
    };
    match verdict.reason() {
        FastReason::TrivialGoal => Ok(verdict.is_implied() && system.d0.is_trivial()),
        FastReason::Subsumed { premise: i } => {
            Ok(verdict.is_implied() && subsumes(premise(*i)?, &system.d0)?)
        }
        FastReason::Weakened { premise: i, depth } => Ok(verdict.is_implied()
            && td_core::axioms::derivable_by_weakening(premise(*i)?, &system.d0, *depth)),
        FastReason::Probe { template, rows } => {
            if verdict.is_implied() {
                return Ok(false);
            }
            let templates = probe_templates(system)?;
            let Some((instance, binding)) = templates.get(*template) else {
                return Ok(false);
            };
            Ok(instance.len() == *rows
                && system
                    .deps
                    .iter()
                    .all(|dep| satisfies_with(MatchStrategy::Indexed, instance, dep))
                && !conclusion_witnessed_with(
                    MatchStrategy::Indexed,
                    instance,
                    &system.d0,
                    binding,
                ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::build_system;
    use td_semigroup::alphabet::Alphabet;
    use td_semigroup::equation::Equation;
    use td_semigroup::normalize::normalize;
    use td_semigroup::presentation::Presentation;

    fn system_of(p: &Presentation) -> ReductionSystem {
        let normalized = normalize(&p.zero_saturated()).unwrap();
        build_system(&normalized.presentation).unwrap()
    }

    fn empty(n: usize) -> Presentation {
        Presentation::new(Alphabet::standard(n), vec![]).unwrap()
    }

    fn parse(n: usize, eqs: &[&str]) -> Presentation {
        let alphabet = Alphabet::standard(n);
        let eqs = eqs
            .iter()
            .map(|e| Equation::parse(e, &alphabet).unwrap())
            .collect();
        Presentation::new(alphabet, eqs).unwrap()
    }

    /// The empty presentation — the `wp_refuted` golden instance — settles
    /// `Refuted` via the probe: its frozen goal tableau is a fixpoint of
    /// the zero-saturation dependencies.
    #[test]
    fn probe_refutes_empty_presentations() {
        for n in 1..=4 {
            let system = system_of(&empty(n));
            let pre = prescreen(&system, &FastBudget::default()).unwrap();
            let verdict = pre.verdict.unwrap_or_else(|| panic!("bailed for n={n}"));
            assert!(
                matches!(
                    verdict,
                    FastVerdict::Refuted(FastReason::Probe { template: 0, rows })
                        if rows == system.d0.antecedent_count()
                ),
                "n={n}: {verdict:?}"
            );
            assert!(!pre.truncated);
            assert!(pre.checks > 0);
            assert!(replay(&system, &verdict).unwrap());
        }
    }

    /// Aliasing `A0 = 0` makes the goal settle on the implied side.
    #[test]
    fn aliased_goal_settles_implied() {
        let system = system_of(&parse(1, &["A0 = 0"]));
        let pre = prescreen(&system, &FastBudget::default()).unwrap();
        let verdict = pre.verdict.expect("A0 = 0 must settle");
        assert!(verdict.is_implied(), "{verdict:?}");
        assert!(replay(&system, &verdict).unwrap());
    }

    /// The two-generator running example needs a genuine two-step
    /// derivation: no single rule settles it, so the prescreen must bail —
    /// and bail exactly, without exhausting the default budget.
    #[test]
    fn multi_step_instances_bail() {
        let system = system_of(&parse(2, &["A1 A1 = A0", "A1 A1 = 0"]));
        let pre = prescreen(&system, &FastBudget::default()).unwrap();
        assert_eq!(pre.verdict, None);
        // Replaying bails identically: spend is deterministic.
        let again = prescreen(&system, &FastBudget::default()).unwrap();
        assert_eq!(pre, again);
    }

    /// The relabel chain `A0 = X1, X1 = 0` is implied but only via two
    /// identification steps: the prescreen must not claim it.
    #[test]
    fn relabel_chain_bails() {
        let alphabet = Alphabet::new(["A0", "X1", "0"], "A0", "0").unwrap();
        let eqs = vec![
            Equation::parse("A0 = X1", &alphabet).unwrap(),
            Equation::parse("X1 = 0", &alphabet).unwrap(),
        ];
        let p = Presentation::new(alphabet, eqs).unwrap();
        let system = system_of(&p);
        let pre = prescreen(&system, &FastBudget::default()).unwrap();
        assert_eq!(pre.verdict, None, "two-step relabeling is not one rule");
    }

    /// A starved budget bails with `truncated` and spends exactly the cap;
    /// the verdict never flips to a guess.
    #[test]
    fn starved_budget_bails_truncated() {
        let system = system_of(&empty(2));
        let pre = prescreen(
            &system,
            &FastBudget {
                weaken_depth: 2,
                max_checks: 1,
                weaken_checks: 1,
            },
        )
        .unwrap();
        assert_eq!(pre.verdict, None);
        assert!(pre.truncated);
        assert_eq!(pre.checks, 1);
    }

    /// Replay rejects reasons transplanted onto the wrong system and
    /// out-of-range premise indices.
    #[test]
    fn replay_rejects_foreign_reasons() {
        let refutable = system_of(&empty(1));
        let hard = system_of(&parse(2, &["A1 A1 = A0", "A1 A1 = 0"]));
        let verdict = prescreen(&refutable, &FastBudget::default())
            .unwrap()
            .verdict
            .unwrap();
        // The empty presentation's probe reason does not certify the hard
        // system (its tableau fires rules there or the goal is witnessed).
        assert!(!replay(&hard, &verdict).unwrap());
        // Premise indices outside the system are structural errors.
        let bogus = FastVerdict::Implied(FastReason::Subsumed { premise: 9999 });
        assert!(replay(&refutable, &bogus).is_err());
        // A probe reason with the wrong row count does not replay.
        let wrong_rows = FastVerdict::Refuted(FastReason::Probe {
            template: 0,
            rows: 7,
        });
        assert!(!replay(&refutable, &wrong_rows).unwrap());
        // An implied verdict with a probe reason is incoherent.
        let incoherent = FastVerdict::Implied(FastReason::Probe {
            template: 0,
            rows: 3,
        });
        assert!(!replay(&refutable, &incoherent).unwrap());
    }

    /// Differential guard at the unit level: on a small fixed corpus the
    /// prescreen, whenever it settles, agrees with the sequential oracle.
    #[test]
    fn settled_verdicts_agree_with_oracle() {
        let corpus = vec![
            empty(1),
            empty(2),
            empty(3),
            parse(1, &["A0 = 0"]),
            parse(2, &["A0 A1 = 0"]),
            parse(2, &["A1 A1 = A0", "A1 A1 = 0"]),
            parse(2, &["A0 A0 = 0"]),
            parse(3, &["A1 A2 = 0", "A2 A1 = A0"]),
        ];
        for p in corpus {
            let system = system_of(&p);
            let pre = prescreen(&system, &FastBudget::default()).unwrap();
            let Some(verdict) = pre.verdict else { continue };
            assert!(replay(&system, &verdict).unwrap());
            let oracle = crate::pipeline::solve_with(
                &p,
                &crate::pipeline::Budgets::default(),
                crate::pipeline::SolveMode::Sequential,
            )
            .unwrap();
            match verdict {
                FastVerdict::Implied(_) => assert!(
                    oracle.outcome.is_implied(),
                    "fastpath Implied, oracle {:?}",
                    oracle.outcome
                ),
                FastVerdict::Refuted(_) => assert!(
                    oracle.outcome.is_refuted(),
                    "fastpath Refuted, oracle {:?}",
                    oracle.outcome
                ),
            }
        }
    }
}
