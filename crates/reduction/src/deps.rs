//! The dependencies of Figure 3: `D1(r)…D4(r)` per equation `r: AB = C`,
//! and the goal dependency `D₀`.
//!
//! The figure itself is only referenced in the text we work from; the
//! precise shapes below are reconstructed from the proof's case analysis
//! (which names the matched tuples explicitly) and from what part (A)'s
//! induction needs. Anchors, quoting the proof of (B):
//!
//! * **D1**: "Then necessarily t₄ = ⟨t₁,A,t₂⟩, t₅ = ⟨t₂,B,t₃⟩, so that
//!   t₁A = t₂ and t₁AB = t₃. Then t₁C = t₃ and ∗ may be chosen as
//!   ⟨t₁,C,t₃⟩." — five antecedents: three E-linked base points and the two
//!   triangles for `A` and `B`; conclusion: the `C`-triangle's apex.
//! * **D2**: "So t₃ = ⟨t₁,C,t₂⟩; and there is some t such that t₁Ct = A₀.
//!   Hence t₁A ∈ P. Then let ∗ be ⟨t₁,A,t₁A⟩." — expansion, left apex with
//!   a dangling (existential) `A″` foot.
//! * **D3**: "Completely analogous to (D2)." — right apex, dangling `B′`.
//! * **D4**: "t₃ = ⟨t₁,C,t₂⟩, t₄ = ⟨t₁,A,b₁⟩ …, t₅ = ⟨b₂,B,t₂⟩ … Then
//!   b₁B = t₁AB = t₁C = t₂ = b₂B and b₁ = b₂ by cancellation. Choose ∗ to
//!   be this element." — merges the dangling feet into one new base point.
//! * **D₀**: from the statement of part (A): given `a ≈_E b`,
//!   `a ≈_{A₀′} d₀`, `b ≈_{A₀″} d₀`, "there is a d₁ such that d₀ ≈_{E′} d₁,
//!   a ≈_{0′} d₁, and d₁ ≈_{0″} b".
//!
//! All dependencies are built as [`Diagram`]s (the notation the paper
//! itself uses) and converted to [`Td`]s; node numbering inside each
//! diagram follows the paper's `t₁ … t₅, ∗`.

use td_core::diagram::Diagram;
use td_core::td::Td;
use td_semigroup::presentation::Presentation;
use td_semigroup::symbol::Sym;

use crate::attrs::ReductionAttrs;
use crate::error::{RedError, Result};

/// A normalized equation `a·b = c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule2 {
    /// Left symbol of the product.
    pub a: Sym,
    /// Right symbol of the product.
    pub b: Sym,
    /// The single-symbol right-hand side.
    pub c: Sym,
}

impl Rule2 {
    /// Renders like `A B = C` using the alphabet names.
    pub fn render(&self, attrs: &ReductionAttrs) -> String {
        let al = attrs.alphabet();
        format!(
            "{} {} = {}",
            al.name(self.a),
            al.name(self.b),
            al.name(self.c)
        )
    }
}

/// A rule of the reduction: either a product equation `a·b = c` (the
/// paper's normalized shape, yielding `D1…D4`) or a single-symbol equation
/// `a = b` (our conservative extension, yielding the relabeling pair
/// `D5`/`D6`; see [`build_d_identify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `a·b = c`.
    Product(Rule2),
    /// `a = b` between single symbols.
    Identify {
        /// Left-hand symbol.
        a: Sym,
        /// Right-hand symbol.
        b: Sym,
    },
}

impl Rule {
    /// Renders the rule with alphabet names.
    pub fn render(&self, attrs: &ReductionAttrs) -> String {
        match *self {
            Rule::Product(r) => r.render(attrs),
            Rule::Identify { a, b } => {
                let al = attrs.alphabet();
                format!("{} = {}", al.name(a), al.name(b))
            }
        }
    }

    /// Number of dependencies this rule contributes (4 or 2).
    pub fn dep_count(&self) -> usize {
        match self {
            Rule::Product(_) => 4,
            Rule::Identify { .. } => 2,
        }
    }
}

/// Builds `D1(r)`: contract an `A`,`B` triangle pair into a `C` triangle.
///
/// Nodes: 0,1,2 = base points t₁,t₂,t₃ (all `E`-equivalent); 3 = t₄ the
/// `A`-apex over (t₁,t₂); 4 = t₅ the `B`-apex over (t₂,t₃); 5 = ∗ the new
/// `C`-apex over (t₁,t₃), `E′`-linked to the existing apexes.
///
/// # Errors
///
/// Propagates diagram construction errors (out-of-range node or
/// attribute — impossible for a schema built by [`ReductionAttrs`]).
pub fn build_d1(attrs: &ReductionAttrs, r: Rule2) -> Result<Td> {
    let mut d = Diagram::new(attrs.schema().clone(), 6, 5)?;
    d.add_edge(0, 1, attrs.e())?;
    d.add_edge(1, 2, attrs.e())?;
    d.add_edge(3, 0, attrs.prime(r.a))?;
    d.add_edge(3, 1, attrs.dprime(r.a))?;
    d.add_edge(4, 1, attrs.prime(r.b))?;
    d.add_edge(4, 2, attrs.dprime(r.b))?;
    d.add_edge(3, 4, attrs.e_prime())?;
    // Conclusion.
    d.add_edge(5, 0, attrs.prime(r.c))?;
    d.add_edge(5, 2, attrs.dprime(r.c))?;
    d.add_edge(5, 3, attrs.e_prime())?;
    Ok(d.to_td(format!("D1({})", r.render(attrs)))?)
}

/// Builds `D2(r)`: expansion, left half — from a `C` triangle over (t₁,t₂),
/// produce the `A`-apex ⟨t₁,A,t₁A⟩ whose `A″` foot is existential.
///
/// Nodes: 0,1 = t₁,t₂ (`E`-equivalent); 2 = t₃ the `C`-apex; 3 = ∗.
///
/// # Errors
///
/// Same as [`build_d1`].
pub fn build_d2(attrs: &ReductionAttrs, r: Rule2) -> Result<Td> {
    let mut d = Diagram::new(attrs.schema().clone(), 4, 3)?;
    d.add_edge(0, 1, attrs.e())?;
    d.add_edge(2, 0, attrs.prime(r.c))?;
    d.add_edge(2, 1, attrs.dprime(r.c))?;
    // Conclusion: A'-linked to t1, apex row.
    d.add_edge(3, 0, attrs.prime(r.a))?;
    d.add_edge(3, 2, attrs.e_prime())?;
    Ok(d.to_td(format!("D2({})", r.render(attrs)))?)
}

/// Builds `D3(r)`: expansion, right half — the `B`-apex ⟨b₂,B,t₂⟩ whose
/// `B′` foot is existential. "Completely analogous to (D2)."
///
/// # Errors
///
/// Same as [`build_d1`].
pub fn build_d3(attrs: &ReductionAttrs, r: Rule2) -> Result<Td> {
    let mut d = Diagram::new(attrs.schema().clone(), 4, 3)?;
    d.add_edge(0, 1, attrs.e())?;
    d.add_edge(2, 0, attrs.prime(r.c))?;
    d.add_edge(2, 1, attrs.dprime(r.c))?;
    // Conclusion: B''-linked to t2, apex row.
    d.add_edge(3, 1, attrs.dprime(r.b))?;
    d.add_edge(3, 2, attrs.e_prime())?;
    Ok(d.to_td(format!("D3({})", r.render(attrs)))?)
}

/// Builds `D4(r)`: expansion, merge — given the `C` triangle and both
/// dangling apexes, cancellation (`b₁ = b₂`) yields the shared middle base
/// point: `E`-equivalent to the base row, `A″`-linked to the `A`-apex and
/// `B′`-linked to the `B`-apex.
///
/// Nodes: 0,1 = t₁,t₂; 2 = t₃ (`C`-apex); 3 = t₄ (`A`-apex); 4 = t₅
/// (`B`-apex); 5 = ∗ the merged foot.
///
/// # Errors
///
/// Same as [`build_d1`].
pub fn build_d4(attrs: &ReductionAttrs, r: Rule2) -> Result<Td> {
    let mut d = Diagram::new(attrs.schema().clone(), 6, 5)?;
    d.add_edge(0, 1, attrs.e())?;
    d.add_edge(2, 0, attrs.prime(r.c))?;
    d.add_edge(2, 1, attrs.dprime(r.c))?;
    d.add_edge(3, 0, attrs.prime(r.a))?;
    d.add_edge(4, 1, attrs.dprime(r.b))?;
    d.add_edge(2, 3, attrs.e_prime())?;
    d.add_edge(3, 4, attrs.e_prime())?;
    // Conclusion: the merged middle base point.
    d.add_edge(5, 3, attrs.dprime(r.a))?;
    d.add_edge(5, 4, attrs.prime(r.b))?;
    d.add_edge(5, 0, attrs.e())?;
    Ok(d.to_td(format!("D4({})", r.render(attrs)))?)
}

/// Builds the relabeling dependency for a single-symbol equation `a = b`:
/// an `a`-triangle over a base pair implies a `b`-triangle over the same
/// base, `E′`-linked to the existing apex. (Not part of Fig. 3 — the
/// paper's normalized φ has no `(1,1)` equations — but the construction
/// extends conservatively: in the part (B) model, a matched `a`-triangle
/// means `t₁·ā = t₂`, and `ā = b̄` in `G` gives `⟨t₁,b,t₂⟩ ∈ Q`; the
/// degenerate collapsed cases pick ∗ as the matched point itself, exactly
/// as in the paper's (D1)/(D2) case analysis.)
///
/// Nodes: 0,1 = base pair (`E`); 2 = the `a`-apex; 3 = ∗ the `b`-apex.
///
/// # Errors
///
/// Same as [`build_d1`].
pub fn build_d_identify(
    attrs: &ReductionAttrs,
    a: Sym,
    b: Sym,
    name: impl Into<String>,
) -> Result<Td> {
    let mut d = Diagram::new(attrs.schema().clone(), 4, 3)?;
    d.add_edge(0, 1, attrs.e())?;
    d.add_edge(2, 0, attrs.prime(a))?;
    d.add_edge(2, 1, attrs.dprime(a))?;
    // Conclusion.
    d.add_edge(3, 0, attrs.prime(b))?;
    d.add_edge(3, 1, attrs.dprime(b))?;
    d.add_edge(3, 2, attrs.e_prime())?;
    Ok(d.to_td(name)?)
}

/// Builds `D₀`: an `A₀`-triangle over a base pair implies a `0`-triangle
/// over the same base, `E′`-linked to the `A₀`-apex.
///
/// # Errors
///
/// Same as [`build_d1`].
pub fn build_d0(attrs: &ReductionAttrs) -> Result<Td> {
    let a0 = attrs.alphabet().a0();
    let zero = attrs.alphabet().zero();
    let mut d = Diagram::new(attrs.schema().clone(), 4, 3)?;
    d.add_edge(0, 1, attrs.e())?;
    d.add_edge(2, 0, attrs.prime(a0))?;
    d.add_edge(2, 1, attrs.dprime(a0))?;
    // Conclusion d₁.
    d.add_edge(3, 0, attrs.prime(zero))?;
    d.add_edge(3, 1, attrs.dprime(zero))?;
    d.add_edge(3, 2, attrs.e_prime())?;
    Ok(d.to_td("D0")?)
}

/// The full reduction output for one word-problem instance.
#[derive(Debug, Clone)]
pub struct ReductionSystem {
    /// The attribute scheme (2n+2 attributes).
    pub attrs: ReductionAttrs,
    /// The rules, in presentation-equation order.
    pub rules: Vec<Rule>,
    /// For each presentation equation index, the corresponding rule index.
    pub eq_to_rule: Vec<usize>,
    /// All dependencies, grouped per rule (see [`Self::dep_index`]).
    pub deps: Vec<Td>,
    /// Start offset of each rule's dependency group within `deps`.
    pub dep_start: Vec<usize>,
    /// The goal dependency `D₀`.
    pub d0: Td,
}

impl ReductionSystem {
    /// Dependency index of `Dk(rule)` within [`Self::deps`]. For product
    /// rules `k ∈ 1..=4` selects `D1…D4`; for identify rules `k ∈ 1..=2`
    /// selects the forward (`a→b`) and backward (`b→a`) relabelings.
    pub fn dep_index(&self, rule: usize, k: usize) -> usize {
        debug_assert!(k >= 1 && k <= self.rules[rule].dep_count());
        self.dep_start[rule] + (k - 1)
    }

    /// The dependency `Dk(rule)`.
    pub fn dep(&self, rule: usize, k: usize) -> &Td {
        &self.deps[self.dep_index(rule, k)]
    }

    /// Maximum antecedent count over all dependencies (the paper: ≤ 5).
    pub fn max_antecedents(&self) -> usize {
        self.deps
            .iter()
            .chain(std::iter::once(&self.d0))
            .map(Td::antecedent_count)
            .max()
            .unwrap_or(0)
    }
}

/// Builds the reduction for a **reduction-ready, zero-saturated**
/// presentation: every equation `(2,1)` (yielding `D1…D4`) or a
/// non-reflexive `(1,1)` (yielding the `D5`/`D6` relabeling pair).
///
/// # Errors
///
/// Fails with [`RedError::NotReductionReady`] when `p` contains an
/// equation of any other shape, and propagates schema/diagram
/// construction errors.
pub fn build_system(p: &Presentation) -> Result<ReductionSystem> {
    let attrs = ReductionAttrs::new(p.alphabet())?;
    let mut rules = Vec::with_capacity(p.equations().len());
    let mut eq_to_rule = Vec::with_capacity(p.equations().len());
    let mut deps = Vec::with_capacity(4 * p.equations().len());
    let mut dep_start = Vec::with_capacity(p.equations().len());
    for (i, eq) in p.equations().iter().enumerate() {
        eq_to_rule.push(rules.len());
        dep_start.push(deps.len());
        if eq.is_two_one() {
            let r = Rule2 {
                a: eq.lhs.get(0),
                b: eq.lhs.get(1),
                c: eq.rhs.get(0),
            };
            rules.push(Rule::Product(r));
            deps.push(build_d1(&attrs, r)?);
            deps.push(build_d2(&attrs, r)?);
            deps.push(build_d3(&attrs, r)?);
            deps.push(build_d4(&attrs, r)?);
        } else if eq.is_one_one() && !eq.is_reflexive() {
            let (a, b) = (eq.lhs.get(0), eq.rhs.get(0));
            let rule = Rule::Identify { a, b };
            let base = rule.render(&attrs);
            rules.push(rule);
            deps.push(build_d_identify(&attrs, a, b, format!("D5({base})"))?);
            deps.push(build_d_identify(&attrs, b, a, format!("D6({base})"))?);
        } else {
            return Err(RedError::NotNormalized { eq_index: i });
        }
    }
    let d0 = build_d0(&attrs)?;
    Ok(ReductionSystem {
        attrs,
        rules,
        eq_to_rule,
        deps,
        dep_start,
        d0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::ids::AttrId;
    use td_semigroup::alphabet::Alphabet;
    use td_semigroup::equation::Equation;

    fn example_system() -> ReductionSystem {
        let alphabet = Alphabet::standard(2);
        let e1 = Equation::parse("A1 A1 = A0", &alphabet).unwrap();
        let e2 = Equation::parse("A1 A1 = 0", &alphabet).unwrap();
        let mut p = Presentation::new(alphabet, vec![e1, e2]).unwrap();
        p.saturate_with_zero_equations();
        build_system(&p).unwrap()
    }

    #[test]
    fn antecedent_bound_is_five() {
        let sys = example_system();
        assert_eq!(sys.max_antecedents(), 5);
        for (i, _) in sys.rules.iter().enumerate() {
            assert_eq!(sys.dep(i, 1).antecedent_count(), 5);
            assert_eq!(sys.dep(i, 2).antecedent_count(), 3);
            assert_eq!(sys.dep(i, 3).antecedent_count(), 3);
            assert_eq!(sys.dep(i, 4).antecedent_count(), 5);
        }
        assert_eq!(sys.d0.antecedent_count(), 3);
    }

    #[test]
    fn attribute_count_is_2n_plus_2() {
        let sys = example_system();
        // |S| = 3 (A0, A1, 0).
        assert_eq!(sys.attrs.arity(), 8);
        for td in sys.deps.iter().chain(std::iter::once(&sys.d0)) {
            assert_eq!(td.arity(), 8);
        }
    }

    #[test]
    fn four_dependencies_per_equation() {
        let sys = example_system();
        // 2 declared + 5 zero equations = 7 rules; 28 dependencies.
        assert_eq!(sys.rules.len(), 7);
        assert_eq!(sys.deps.len(), 28);
        assert_eq!(sys.eq_to_rule.len(), 7);
    }

    #[test]
    fn d1_shape_matches_reconstruction() {
        let sys = example_system();
        let Rule::Product(r) = sys.rules[0] else {
            panic!("product rule")
        }; // A1 A1 = A0
        let d1 = sys.dep(0, 1);
        assert!(d1.is_embedded());
        // Existential columns: everything except E' (conclusion shares the
        // apex row) and C'/C'' (the new triangle's feet): the conclusion has
        // edges in C', C'', E' only — so universal there, existential
        // elsewhere.
        let universal: Vec<AttrId> = sys
            .attrs
            .schema()
            .attr_ids()
            .filter(|&c| d1.is_universal_at(c))
            .collect();
        let expected = vec![
            sys.attrs.e_prime(),
            sys.attrs.prime(r.c),
            sys.attrs.dprime(r.c),
        ];
        for c in &expected {
            assert!(universal.contains(c), "expected universal {c}");
        }
        assert_eq!(universal.len(), 3);
        assert!(!d1.is_trivial());
    }

    #[test]
    fn d2_d3_shapes() {
        let sys = example_system();
        let Rule::Product(r) = sys.rules[0] else {
            panic!("product rule")
        };
        let d2 = sys.dep(0, 2);
        let d3 = sys.dep(0, 3);
        // D2 conclusion universal exactly at A' and E'.
        let u2: Vec<AttrId> = sys
            .attrs
            .schema()
            .attr_ids()
            .filter(|&c| d2.is_universal_at(c))
            .collect();
        assert!(u2.contains(&sys.attrs.e_prime()));
        assert!(u2.contains(&sys.attrs.prime(r.a)));
        assert_eq!(u2.len(), 2);
        // D3 conclusion universal exactly at B'' and E'.
        let u3: Vec<AttrId> = sys
            .attrs
            .schema()
            .attr_ids()
            .filter(|&c| d3.is_universal_at(c))
            .collect();
        assert!(u3.contains(&sys.attrs.e_prime()));
        assert!(u3.contains(&sys.attrs.dprime(r.b)));
        assert_eq!(u3.len(), 2);
    }

    #[test]
    fn d4_conclusion_is_a_base_point() {
        let sys = example_system();
        let Rule::Product(r) = sys.rules[0] else {
            panic!("product rule")
        };
        let d4 = sys.dep(0, 4);
        // Conclusion universal at E (base row), A'' (foot of A-apex), B'
        // (foot of B-apex).
        assert!(d4.is_universal_at(sys.attrs.e()));
        assert!(d4.is_universal_at(sys.attrs.dprime(r.a)));
        assert!(d4.is_universal_at(sys.attrs.prime(r.b)));
        assert!(d4.is_existential_at(sys.attrs.e_prime()));
    }

    #[test]
    fn d0_shape() {
        let sys = example_system();
        let d0 = &sys.d0;
        let al = sys.attrs.alphabet().clone();
        assert_eq!(d0.antecedent_count(), 3);
        assert!(d0.is_universal_at(sys.attrs.prime(al.zero())));
        assert!(d0.is_universal_at(sys.attrs.dprime(al.zero())));
        assert!(d0.is_universal_at(sys.attrs.e_prime()));
        assert!(d0.is_existential_at(sys.attrs.e()));
        assert!(d0.is_existential_at(sys.attrs.prime(al.a0())));
        assert!(!d0.is_trivial());
    }

    #[test]
    fn all_deps_well_typed_and_triviality_is_characterized() {
        // D1, D4 and D0 are never trivial. D2(r) is trivial exactly when
        // r.a == r.c and D3(r) exactly when r.b == r.c — which happens
        // precisely for the zero-absorption rules (0·A = 0 and A·0 = 0),
        // where the conclusion apex is already matched by the antecedent
        // apex. Trivial dependencies are sound and never fire in the
        // restricted chase.
        let sys = example_system();
        assert!(!sys.d0.is_trivial());
        for (i, rule) in sys.rules.iter().enumerate() {
            let Rule::Product(r) = *rule else {
                panic!("example is all products")
            };
            assert!(!sys.dep(i, 1).is_trivial(), "{}", sys.dep(i, 1).name());
            assert!(!sys.dep(i, 4).is_trivial(), "{}", sys.dep(i, 4).name());
            assert_eq!(
                sys.dep(i, 2).is_trivial(),
                r.a == r.c,
                "{}",
                sys.dep(i, 2).name()
            );
            assert_eq!(
                sys.dep(i, 3).is_trivial(),
                r.b == r.c,
                "{}",
                sys.dep(i, 3).name()
            );
        }
        for td in sys.deps.iter().chain(std::iter::once(&sys.d0)) {
            assert!(td.is_embedded(), "{} is embedded", td.name());
        }
    }

    #[test]
    fn identify_rules_get_a_dependency_pair() {
        let alphabet = Alphabet::standard(2);
        let one_one = Equation::parse("A0 = A1", &alphabet).unwrap();
        let mut p = Presentation::new(alphabet, vec![one_one]).unwrap();
        p.saturate_with_zero_equations();
        let sys = build_system(&p).unwrap();
        assert!(matches!(sys.rules[0], Rule::Identify { .. }));
        assert_eq!(sys.rules[0].dep_count(), 2);
        let d5 = sys.dep(0, 1);
        let d6 = sys.dep(0, 2);
        assert_eq!(d5.name(), "D5(A0 = A1)");
        assert_eq!(d6.name(), "D6(A0 = A1)");
        assert_eq!(d5.antecedent_count(), 3);
        assert!(!d5.is_trivial());
        assert!(!d6.is_trivial());
        // Dep groups stay aligned after a 2-dep rule.
        assert!(matches!(sys.rules[1], Rule::Product(_)));
        assert_eq!(sys.dep_start[1], 2);
        assert_eq!(sys.dep(1, 1).antecedent_count(), 5);
    }

    #[test]
    fn unnormalized_input_rejected() {
        let alphabet = Alphabet::standard(1);
        let long = Equation::parse("A0 A0 A0 = A0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![long]).unwrap();
        assert!(matches!(
            build_system(&p),
            Err(RedError::NotNormalized { eq_index: 0 })
        ));
    }

    #[test]
    fn names_mention_rules() {
        let sys = example_system();
        assert_eq!(sys.dep(0, 1).name(), "D1(A1 A1 = A0)");
        assert_eq!(sys.d0.name(), "D0");
    }
}
