//! The reduction's attribute scheme.
//!
//! "For each A ∈ S, the relations A′ and A″; and additional relations E and
//! E′. (These equivalence relations are the attributes of the dependencies,
//! so if S contains n symbols, the relation will have 2n + 2 attributes.)"

use td_core::ids::AttrId;
use td_core::schema::Schema;
use td_semigroup::alphabet::Alphabet;
use td_semigroup::symbol::Sym;

use crate::error::Result;

/// The `2n+2`-attribute schema derived from an alphabet, with typed lookups
/// for `E`, `E′`, and each symbol's `A′` / `A″`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionAttrs {
    schema: Schema,
    alphabet: Alphabet,
    e: AttrId,
    e_prime: AttrId,
    prime: Vec<AttrId>,
    dprime: Vec<AttrId>,
}

impl ReductionAttrs {
    /// Builds the schema. Attribute order: `E`, `E′`, then `A′`, `A″` per
    /// symbol in alphabet order. If some symbol is literally named `E`, the
    /// two base attributes are renamed (`_E`, `_E′`, …) to stay distinct.
    ///
    /// # Errors
    ///
    /// Propagates schema construction errors (duplicate attribute names —
    /// prevented by the renaming scheme for any valid alphabet).
    pub fn new(alphabet: &Alphabet) -> Result<Self> {
        let symbol_attr_names: Vec<String> = alphabet
            .syms()
            .flat_map(|s| {
                let n = alphabet.name(s);
                [format!("{n}'"), format!("{n}''")]
            })
            .collect();
        // Pick a base name for E that cannot collide with any primed name.
        let mut base = "E".to_owned();
        while symbol_attr_names.contains(&format!("{base}'")) || symbol_attr_names.contains(&base) {
            base.insert(0, '_');
        }
        let e_name = base.clone();
        let e_prime_name = format!("{base}'");

        let mut names = Vec::with_capacity(2 * alphabet.len() + 2);
        names.push(e_name);
        names.push(e_prime_name);
        names.extend(symbol_attr_names);
        let schema = Schema::new("R", names)?;

        let prime: Vec<AttrId> = (0..alphabet.len())
            .map(|i| AttrId::from(2 + 2 * i))
            .collect();
        let dprime: Vec<AttrId> = (0..alphabet.len())
            .map(|i| AttrId::from(3 + 2 * i))
            .collect();
        Ok(Self {
            schema,
            alphabet: alphabet.clone(),
            e: AttrId::from(0usize),
            e_prime: AttrId::from(1usize),
            prime,
            dprime,
        })
    }

    /// The derived schema (`2n+2` attributes).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The alphabet this scheme was built from.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The base-row relation `E`.
    pub fn e(&self) -> AttrId {
        self.e
    }

    /// The apex-row relation `E′`.
    pub fn e_prime(&self) -> AttrId {
        self.e_prime
    }

    /// The relation `A′` for symbol `sym` (apex ↔ left base point).
    pub fn prime(&self, sym: Sym) -> AttrId {
        self.prime[sym.index()]
    }

    /// The relation `A″` for symbol `sym` (apex ↔ right base point).
    pub fn dprime(&self, sym: Sym) -> AttrId {
        self.dprime[sym.index()]
    }

    /// Number of attributes: always `2·|S| + 2`.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_alphabet_scheme() {
        let alphabet = Alphabet::standard(2); // A0 A1 0 — n = 3
        let attrs = ReductionAttrs::new(&alphabet).unwrap();
        assert_eq!(attrs.arity(), 2 * 3 + 2);
        assert_eq!(attrs.schema().attr_name(attrs.e()), "E");
        assert_eq!(attrs.schema().attr_name(attrs.e_prime()), "E'");
        let a0 = alphabet.a0();
        assert_eq!(attrs.schema().attr_name(attrs.prime(a0)), "A0'");
        assert_eq!(attrs.schema().attr_name(attrs.dprime(a0)), "A0''");
        let zero = alphabet.zero();
        assert_eq!(attrs.schema().attr_name(attrs.prime(zero)), "0'");
        assert_eq!(attrs.schema().attr_name(attrs.dprime(zero)), "0''");
    }

    #[test]
    fn attribute_count_is_2n_plus_2() {
        for n_regular in 1..=5 {
            let alphabet = Alphabet::standard(n_regular);
            let attrs = ReductionAttrs::new(&alphabet).unwrap();
            assert_eq!(attrs.arity(), 2 * alphabet.len() + 2);
        }
    }

    #[test]
    fn symbol_named_e_does_not_collide() {
        let alphabet = Alphabet::new(["A0", "E", "0"], "A0", "0").unwrap();
        let attrs = ReductionAttrs::new(&alphabet).unwrap();
        // Base attributes were renamed away from the symbol attrs E', E''.
        assert_eq!(attrs.schema().attr_name(attrs.e()), "_E");
        assert_eq!(attrs.schema().attr_name(attrs.e_prime()), "_E'");
        assert_eq!(attrs.arity(), 8);
        // All names distinct (Schema::new would have failed otherwise).
        let e_sym = alphabet.sym("E").unwrap();
        assert_eq!(attrs.schema().attr_name(attrs.prime(e_sym)), "E'");
    }

    #[test]
    fn all_attrs_distinct() {
        let alphabet = Alphabet::standard(3);
        let attrs = ReductionAttrs::new(&alphabet).unwrap();
        let mut seen = std::collections::HashSet::new();
        seen.insert(attrs.e());
        seen.insert(attrs.e_prime());
        for s in alphabet.syms() {
            seen.insert(attrs.prime(s));
            seen.insert(attrs.dprime(s));
        }
        assert_eq!(seen.len(), attrs.arity());
    }
}
