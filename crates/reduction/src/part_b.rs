//! Part (B) of the Reduction Theorem: the finite countermodel.
//!
//! From a finite S-generated cancellation semigroup `G` *without identity*
//! in which every equation holds but `A₀ ≠ 0`, the paper constructs a
//! finite database satisfying every member of `D` but not `D₀`:
//!
//! 1. adjoin an identity `I` to get `G′` (cancellation is preserved);
//! 2. `P = {a ∈ G′ : ∃b ∈ G′. ab = A₀}` — note `I, A₀ ∈ P` and `0 ∉ P`;
//! 3. for `a, b ∈ P` write `a →_A b` iff `a·A = b`; each `→_A` is a 1–1
//!    partial function on `P` (by cancellation), and `→_0` is empty;
//! 4. `Q = {⟨a, A, b⟩ : a →_A b}`; the universe is `P ∪ Q`;
//! 5. relations: `≈_{A′}` relates `⟨a,A,b⟩` to `a`; `≈_{A″}` relates
//!    `⟨a,A,b⟩` to `b`; `≈_E` is total on `P` and trivial on `Q`; `≈_{E′}`
//!    is total on `Q` and trivial on `P`.
//!
//! Facts 1 and 2 of the proof — every `≈_{A′}` / `≈_{A″}` class has
//! cardinality ≤ 2, mixing `P` and `Q` — are checked by
//! [`crate::verify::verify_counter_model`].

use td_core::eq_instance::EqInstance;
use td_core::ids::RowId;
use td_core::instance::Instance;
use td_semigroup::adjoin::adjoin_identity;
use td_semigroup::cayley::{Elem, FiniteSemigroup, Interpretation};
use td_semigroup::presentation::Presentation;
use td_semigroup::properties;
use td_semigroup::symbol::Sym;

use crate::deps::ReductionSystem;
use crate::error::{RedError, Result};

/// What a countermodel row denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowLabel {
    /// An element of `P ⊆ G′`.
    P(Elem),
    /// A triple `⟨a, A, b⟩ ∈ Q` with `a·A = b`.
    Q(Elem, Sym, Elem),
}

/// The part (B) countermodel: the partition-view instance, its conversion
/// to the tuple view, and per-row provenance labels.
#[derive(Debug, Clone)]
pub struct CounterModel {
    /// The equivalence-relation view (as the paper constructs it).
    pub eq_instance: EqInstance,
    /// The tuple view (for satisfaction checking).
    pub instance: Instance,
    /// Row provenance, aligned with row ids.
    pub labels: Vec<RowLabel>,
    /// The extended semigroup `G′` (with identity adjoined).
    pub g_prime: FiniteSemigroup,
    /// The adjoined identity element of `G′`.
    pub identity: Elem,
}

impl CounterModel {
    /// Rows labelled `P(_)`.
    pub fn p_rows(&self) -> impl Iterator<Item = RowId> + '_ {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, RowLabel::P(_)))
            .map(|(i, _)| RowId::from(i))
    }

    /// Rows labelled `Q(_, _, _)`.
    pub fn q_rows(&self) -> impl Iterator<Item = RowId> + '_ {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, RowLabel::Q(..)))
            .map(|(i, _)| RowId::from(i))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Countermodels are never empty (`I` and `A₀` are always in `P`).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Builds the part (B) countermodel from `(g, interp)`. Preconditions (all
/// checked): `g` has a zero and no identity, has the cancellation property,
/// satisfies every equation of `p` under `interp`, interprets the zero
/// symbol as the zero, and interprets `A₀` as a nonzero element.
///
/// # Errors
///
/// Fails with [`RedError::CounterModelInvalid`] when any precondition
/// does not hold, and propagates evaluation errors from `g`.
pub fn build_counter_model(
    system: &ReductionSystem,
    p: &Presentation,
    g: &FiniteSemigroup,
    interp: &Interpretation,
) -> Result<CounterModel> {
    // Precondition checks — the paper's hypotheses, not assumptions.
    let alphabet = system.attrs.alphabet();
    interp.check_arity(alphabet)?;
    let zero = g
        .zero()
        .ok_or_else(|| RedError::Precondition("G must have a zero element".into()))?;
    if g.identity().is_some() {
        return Err(RedError::Precondition("G must not have an identity".into()));
    }
    if !properties::has_cancellation_property(g) {
        return Err(RedError::Precondition(
            "G must have the cancellation property (conditions (i) and (ii))".into(),
        ));
    }
    if interp.of(alphabet.zero()) != zero {
        return Err(RedError::Precondition(
            "the zero symbol must be interpreted as the zero element".into(),
        ));
    }
    let a0_elem = interp.of(alphabet.a0());
    if a0_elem == zero {
        return Err(RedError::Precondition(
            "A0 must be interpreted as a nonzero element (otherwise the goal holds)".into(),
        ));
    }
    if let Some(eq) = properties::first_violated_equation(g, interp, p) {
        return Err(RedError::Precondition(format!(
            "G violates the equation {}",
            eq.render(alphabet)
        )));
    }

    // Step 1: adjoin the identity.
    let (g_prime, identity) = adjoin_identity(g)?;
    let a0 = Elem::from(a0_elem.index()); // same index in G'

    // Step 2: P = { a : exists b, a·b = A0 }.
    let p_elems: Vec<Elem> = g_prime
        .elements()
        .filter(|&a| g_prime.elements().any(|b| g_prime.mul(a, b) == a0))
        .collect();
    debug_assert!(p_elems.contains(&identity));
    debug_assert!(p_elems.contains(&a0));
    debug_assert!(!p_elems.contains(&Elem::from(zero.index())));

    // Steps 3–4: Q = { (a, A, b) : a, b in P, a·interp(A) = b }.
    let in_p = |e: Elem| p_elems.contains(&e);
    let mut q_triples: Vec<(Elem, Sym, Elem)> = Vec::new();
    for &a in &p_elems {
        for sym in alphabet.syms() {
            let img = Elem::from(interp.of(sym).index());
            let b = g_prime.mul(a, img);
            if in_p(b) {
                q_triples.push((a, sym, b));
            }
        }
    }
    // The paper notes ->_0 is empty: a·0 = 0 is never in P.
    debug_assert!(q_triples.iter().all(|&(_, s, _)| s != alphabet.zero()));

    // Step 5: rows and relations.
    let n_rows = p_elems.len() + q_triples.len();
    let mut eq = EqInstance::new(system.attrs.schema().clone(), n_rows);
    let mut labels = Vec::with_capacity(n_rows);
    let row_of_p =
        |e: Elem| -> RowId { RowId::from(p_elems.iter().position(|&x| x == e).expect("e in P")) };
    for &e in &p_elems {
        labels.push(RowLabel::P(e));
    }
    for (qi, &(a, sym, b)) in q_triples.iter().enumerate() {
        let q_row = RowId::from(p_elems.len() + qi);
        labels.push(RowLabel::Q(a, sym, b));
        // (1) <a,A,b> ~A' a  and  (2) <a,A,b> ~A'' b.
        eq.merge(system.attrs.prime(sym), q_row, row_of_p(a))?;
        eq.merge(system.attrs.dprime(sym), q_row, row_of_p(b))?;
    }
    // (3) E total on P, trivial on Q.
    for i in 1..p_elems.len() {
        eq.merge(system.attrs.e(), RowId::from(0usize), RowId::from(i))?;
    }
    // (4) E' total on Q, trivial on P.
    for i in 1..q_triples.len() {
        eq.merge(
            system.attrs.e_prime(),
            RowId::from(p_elems.len()),
            RowId::from(p_elems.len() + i),
        )?;
    }

    let instance = eq.to_instance();
    Ok(CounterModel {
        eq_instance: eq,
        instance,
        labels,
        g_prime,
        identity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::build_system;
    use td_core::satisfaction::{satisfies, satisfies_all};
    use td_semigroup::alphabet::Alphabet;
    use td_semigroup::families::{cyclic_nilpotent, null_semigroup};

    /// Zero-equations-only presentation over S = {A0, 0}: refutable.
    fn refutable() -> Presentation {
        let alphabet = Alphabet::standard(1);
        let mut p = Presentation::new(alphabet, vec![]).unwrap();
        p.saturate_with_zero_equations();
        p
    }

    #[test]
    fn minimal_counter_model_structure() {
        let p = refutable();
        let system = build_system(&p).unwrap();
        let g = null_semigroup(2);
        let interp = Interpretation::from_raw([1, 0]);
        let model = build_counter_model(&system, &p, &g, &interp).unwrap();
        // P = {I, a} (0 has no b with 0·b = a). Q: a·I = a gives <a,I?>…
        // careful: Q ranges over *symbols*, interp(A0) = a: I·a = a ∈ P ->
        // <I, A0, a>; a·a = 0 ∉ P. interp(0) = 0: never lands in P.
        // So P = {I, a}, Q = {<I, A0, a>}: 3 rows.
        assert_eq!(model.len(), 3);
        assert_eq!(model.p_rows().count(), 2);
        assert_eq!(model.q_rows().count(), 1);
        assert!(!model.is_empty());
        // The paper's (NOT D0) witness: t1 = I, t2 = A0, t3 = <I, A0, A0>.
        assert!(model
            .labels
            .iter()
            .any(|l| matches!(l, RowLabel::P(e) if *e == model.identity)));
    }

    #[test]
    fn minimal_counter_model_refutes_d0_and_satisfies_d() {
        let p = refutable();
        let system = build_system(&p).unwrap();
        let g = null_semigroup(2);
        let interp = Interpretation::from_raw([1, 0]);
        let model = build_counter_model(&system, &p, &g, &interp).unwrap();
        assert!(
            satisfies_all(&model.instance, &system.deps),
            "every member of D must hold"
        );
        assert!(!satisfies(&model.instance, &system.d0), "D0 must fail");
    }

    #[test]
    fn nilpotent_counter_models_work_too() {
        // Cyclic nilpotent semigroups satisfy the zero-only presentation and
        // give larger countermodels.
        let p = refutable();
        let system = build_system(&p).unwrap();
        for n in [3usize, 4, 5] {
            let g = cyclic_nilpotent(n);
            let interp = Interpretation::from_raw([1, 0]); // A0 -> a
            let model = build_counter_model(&system, &p, &g, &interp).unwrap();
            assert!(satisfies_all(&model.instance, &system.deps), "n={n}");
            assert!(!satisfies(&model.instance, &system.d0), "n={n}");
            // P grows with n: a = a^{1}; x·b = a solvable for x = a^j, j<=1…
            // (structure checked via labels)
            assert!(model.p_rows().count() >= 2);
        }
    }

    #[test]
    fn preconditions_enforced() {
        let p = refutable();
        let system = build_system(&p).unwrap();
        let g = null_semigroup(2);
        // A0 interpreted as zero: rejected.
        let bad = Interpretation::from_raw([0, 0]);
        assert!(matches!(
            build_counter_model(&system, &p, &g, &bad),
            Err(RedError::Precondition(_))
        ));
        // Zero symbol not interpreted as zero: rejected.
        let bad2 = Interpretation::from_raw([1, 1]);
        assert!(matches!(
            build_counter_model(&system, &p, &g, &bad2),
            Err(RedError::Precondition(_))
        ));
        // Semigroup with identity: rejected.
        let z2 = FiniteSemigroup::new(vec![vec![0, 0], vec![0, 1]]).unwrap();
        let interp = Interpretation::from_raw([1, 0]);
        assert!(matches!(
            build_counter_model(&system, &p, &z2, &interp),
            Err(RedError::Precondition(_))
        ));
        // Semigroup violating an equation: rejected.
        let alphabet = Alphabet::standard(1);
        let mut p2 = Presentation::new(
            alphabet.clone(),
            vec![td_semigroup::equation::Equation::parse("A0 A0 = A0", &alphabet).unwrap()],
        )
        .unwrap();
        p2.saturate_with_zero_equations();
        let system2 = build_system(&p2).unwrap();
        assert!(matches!(
            build_counter_model(&system2, &p2, &g, &interp),
            Err(RedError::Precondition(_))
        ));
        // Cancellation violator: rejected.
        let bad_g =
            FiniteSemigroup::new(vec![vec![0, 0, 0], vec![0, 2, 2], vec![0, 2, 2]]).unwrap();
        let interp3 = Interpretation::from_raw([1, 0]);
        assert!(matches!(
            build_counter_model(&system, &p, &bad_g, &interp3),
            Err(RedError::Precondition(_))
        ));
    }

    #[test]
    fn e_relations_shaped_as_in_the_paper() {
        let p = refutable();
        let system = build_system(&p).unwrap();
        let g = null_semigroup(2);
        let interp = Interpretation::from_raw([1, 0]);
        let model = build_counter_model(&system, &p, &g, &interp).unwrap();
        let eq = &model.eq_instance;
        let p_rows: Vec<RowId> = model.p_rows().collect();
        let q_rows: Vec<RowId> = model.q_rows().collect();
        // E total on P.
        for &x in &p_rows {
            for &y in &p_rows {
                assert!(eq.same(system.attrs.e(), x, y));
            }
        }
        // E trivial across P/Q and on Q.
        for &x in &p_rows {
            for &q in &q_rows {
                assert!(!eq.same(system.attrs.e(), x, q));
            }
        }
        // E' total on Q, trivial on P.
        for &x in &q_rows {
            for &y in &q_rows {
                assert!(eq.same(system.attrs.e_prime(), x, y));
            }
        }
        for &x in &p_rows {
            for &y in &p_rows {
                if x != y {
                    assert!(!eq.same(system.attrs.e_prime(), x, y));
                }
            }
        }
    }
}
