//! A sharded, concurrent decision cache keyed by canonical forms.
//!
//! The batch pipeline ([`crate::batch::solve_batch`]) answers corpora of
//! implication questions in which many instances are isomorphic copies of
//! each other. Once one copy is decided, every other copy has — provably —
//! the same verdict: implication is invariant under per-column variable
//! renaming and row permutation of the dependencies, which is exactly the
//! equivalence [`td_core::canon::CanonKey`] quotients by. The cache stores
//! one [`CachedOutcome`] per key, so a verdict is computed once per
//! isomorphism class per process.
//!
//! Only **settled** verdicts (`Implied` / `Refuted`) are cached. `Unknown`
//! is a statement about the *budgets* of one particular call, not about the
//! instance — a later call with larger budgets might settle it — so caching
//! it would wrongly freeze a transient answer. (Within a single batch call,
//! where budgets are fixed, [`crate::batch::solve_batch`] still dedups
//! `Unknown` work through its own per-call bookkeeping.)
//!
//! The map is sharded `N` ways, each shard an independent
//! `RwLock<HashMap>`: readers of different keys proceed in parallel and
//! writers only contend within one shard. Plain standard-library locks — no
//! external dependencies.
//!
//! # Bounded residency
//!
//! A long-lived engine serves an unbounded stream of distinct keys, so the
//! cache is **capacity-bounded**: each shard holds at most
//! [`DecisionCache::shard_capacity`] entries and evicts its oldest entry
//! (FIFO insertion order) to make room for a new key. Eviction is purely a
//! residency decision — a verdict is a theorem about an isomorphism class
//! and never goes stale, so evicting one costs a re-solve, not
//! correctness. The cumulative eviction count is exposed via
//! [`DecisionCache::evictions`] and surfaced in the batch and engine
//! stats; the default capacity ([`DEFAULT_SHARD_CAPACITY`] per shard) is
//! generous enough that one-shot and test workloads never evict.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use td_core::canon::CanonKey;

use crate::pipeline::SpendReport;

/// Default per-shard entry capacity: with the default 16 shards, about one
/// million resident verdicts (~100 bytes each) before eviction starts —
/// generous for anything short of a very long-lived server.
pub const DEFAULT_SHARD_CAPACITY: usize = 65_536;

/// A settled verdict, compressed to the numbers a batch report needs (the
/// full certificates stay with the [`crate::pipeline::PipelineRun`] that
/// produced them; replaying a cached hit does not rebuild them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedVerdict {
    /// `D ⊨ D₀`: a derivation of the given length was found and compiled
    /// into a chase proof with the given number of firings.
    Implied {
        /// Steps of the word-problem derivation.
        derivation_steps: usize,
        /// Firings of the compiled part (A) chase proof.
        proof_firings: usize,
    },
    /// `D ⊭ D₀` over finite databases: a countermodel with the given
    /// number of rows exists.
    Refuted {
        /// Rows of the part (B) countermodel.
        model_rows: usize,
    },
}

/// What the cache remembers per canonical key: the settled verdict plus
/// the spent-budget provenance of the run that settled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedOutcome {
    /// The settled verdict.
    pub verdict: CachedVerdict,
    /// Spend accounting of the solving run (winner exact, loser labelled
    /// truncated — see [`SpendReport`]).
    pub spend: SpendReport,
}

/// One resident entry: the outcome plus the sequence number of the insert
/// that gave the key its current FIFO slot. The sequence number is what
/// makes lazy deletion sound: an `order` entry is live exactly when its
/// `(seq, key)` pair matches the map — a removed-then-reinserted key leaves
/// a stale pair behind that eviction and export both skip.
#[derive(Debug, Clone, Copy)]
struct Entry {
    outcome: CachedOutcome,
    seq: u64,
}

/// One lock domain: the key→outcome map plus the FIFO insertion order its
/// evictions follow.
///
/// [`DecisionCache::remove`] is **lazy**: it drops the map entry in O(1)
/// and leaves the `(seq, key)` pair in `order` as a tombstone, counted in
/// `tombstones`. Eviction pops skip tombstones without charging the
/// eviction counter, and the queue is compacted (drop every stale pair)
/// whenever tombstones outnumber live entries — so `order` stays within a
/// constant factor of the resident population and the amortized cost of
/// every operation is O(1). The previous implementation scanned `order`
/// under the write lock on every remove, which made session-invalidation
/// churn quadratic per shard and stalled all readers of that shard.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CanonKey, Entry>,
    /// `(seq, key)` pairs in insertion order. Overwrites keep the original
    /// position — they refresh provenance, not residency.
    order: VecDeque<(u64, CanonKey)>,
    /// Stale pairs currently in `order` (their key was removed, or removed
    /// and later reinserted under a newer sequence number).
    tombstones: usize,
    /// Next insertion sequence number (per shard).
    next_seq: u64,
}

impl Shard {
    /// `true` when the `order` pair at hand still names a resident entry.
    fn is_live(&self, seq: u64, key: CanonKey) -> bool {
        self.map.get(&key).is_some_and(|e| e.seq == seq)
    }

    /// Drops every tombstone from `order` once they outnumber the live
    /// entries: O(len) now, amortized O(1) per preceding remove.
    fn maybe_compact(&mut self) {
        if self.tombstones > self.map.len() {
            let map = &self.map;
            self.order
                .retain(|&(seq, key)| map.get(&key).is_some_and(|e| e.seq == seq));
            self.tombstones = 0;
        }
    }
}

/// A sharded `CanonKey → CachedOutcome` map, safe to share across the
/// batch worker threads by reference, with per-shard FIFO eviction once a
/// shard reaches its capacity.
#[derive(Debug)]
pub struct DecisionCache {
    shards: Vec<RwLock<Shard>>,
    shard_capacity: usize,
    evictions: AtomicU64,
}

impl Default for DecisionCache {
    /// 16 shards: comfortably more than the worker counts the batch
    /// pipeline uses, so writer contention stays negligible. Capacity is
    /// the generous [`DEFAULT_SHARD_CAPACITY`].
    fn default() -> Self {
        Self::new(16)
    }
}

impl DecisionCache {
    /// Creates a cache with `shards` independent lock domains (clamped to
    /// at least 1) and the default per-shard capacity.
    pub fn new(shards: usize) -> Self {
        Self::with_capacity(shards, DEFAULT_SHARD_CAPACITY)
    }

    /// Creates a cache with `shards` lock domains, each holding at most
    /// `shard_capacity` entries (both clamped to at least 1). The total
    /// residency bound is `shards * shard_capacity`.
    pub fn with_capacity(shards: usize, shard_capacity: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| RwLock::default()).collect(),
            shard_capacity: shard_capacity.max(1),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: CanonKey) -> &RwLock<Shard> {
        let ix = (key.fold64() % self.shards.len() as u64) as usize;
        &self.shards[ix]
    }

    /// Looks up a settled verdict.
    pub fn get(&self, key: CanonKey) -> Option<CachedOutcome> {
        self.shard(key)
            .read()
            .expect("cache shard lock poisoned")
            .map
            .get(&key)
            .map(|e| e.outcome)
    }

    /// Records a settled verdict. A later insert for the same key
    /// overwrites the earlier one; both describe the same isomorphism
    /// class, so the verdicts agree and only the provenance can differ.
    /// Inserting a *new* key into a full shard first evicts the shard's
    /// oldest entry (FIFO) and counts it in [`DecisionCache::evictions`];
    /// tombstones left behind by [`DecisionCache::remove`] are skipped
    /// without charging the counter.
    pub fn insert(&self, key: CanonKey, outcome: CachedOutcome) {
        let mut shard = self.shard(key).write().expect("cache shard lock poisoned");
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.outcome = outcome;
            return; // overwrite: residency and order unchanged
        }
        let seq = shard.next_seq;
        shard.next_seq += 1;
        shard.map.insert(key, Entry { outcome, seq });
        shard.order.push_back((seq, key));
        while shard.map.len() > self.shard_capacity {
            let (seq, oldest) = shard
                .order
                .pop_front()
                .expect("over-capacity shard has a non-empty insertion order");
            if shard.is_live(seq, oldest) {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                shard.tombstones -= 1; // stale pair: skip, not an eviction
            }
        }
    }

    /// Drops one key, returning its outcome if it was resident. This is
    /// the targeted invalidation hook: a caller whose *question* changed
    /// identity (e.g. a session whose premise subset was edited — see
    /// [`crate::engine::Session`]) removes exactly the stale key instead
    /// of flushing the cache. Removal does not count as an eviction: the
    /// eviction counter measures capacity pressure, not invalidation.
    ///
    /// Amortized O(1): the FIFO queue keeps a tombstone instead of being
    /// scanned (see [`Shard`]) — invalidation-heavy churn no longer goes
    /// quadratic in the shard population.
    pub fn remove(&self, key: CanonKey) -> Option<CachedOutcome> {
        let mut shard = self.shard(key).write().expect("cache shard lock poisoned");
        let entry = shard.map.remove(&key)?;
        shard.tombstones += 1;
        shard.maybe_compact();
        Some(entry.outcome)
    }

    /// A lock-coherent export of the resident entries, in per-shard FIFO
    /// insertion order (shard by shard). Each shard is read-locked for the
    /// duration of its own copy only, so exports interleave with concurrent
    /// solving: the result is a union of per-shard consistent snapshots —
    /// exactly the guarantee a persistence layer needs, since every entry
    /// is individually a theorem and cross-shard "tearing" can at worst
    /// omit or include a concurrently settled verdict.
    pub fn export(&self) -> Vec<(CanonKey, CachedOutcome)> {
        let mut out = Vec::with_capacity(self.len());
        for lock in &self.shards {
            let shard = lock.read().expect("cache shard lock poisoned");
            out.extend(shard.order.iter().filter_map(|&(seq, key)| {
                shard
                    .map
                    .get(&key)
                    .filter(|e| e.seq == seq)
                    .map(|e| (key, e.outcome))
            }));
        }
        out
    }

    /// Number of cached verdicts currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard lock poisoned").map.len())
            .sum()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards (lock domains).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Maximum entries per shard before eviction.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Cumulative number of entries evicted to make room for new keys.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::prelude::*;

    fn key(n: u32) -> CanonKey {
        // Distinct keys from distinct real TDs: a chain sharing column-0
        // variables across `n` rows.
        let schema = Schema::new("R", ["A", "B"]).unwrap();
        let rows: Vec<td_core::td::TdRow> = (0..=n)
            .map(|i| td_core::td::TdRow::from_raw([0, i]))
            .collect();
        let td = td_core::td::Td::new(
            schema,
            rows,
            td_core::td::TdRow::from_raw([1, 0]),
            format!("k{n}"),
        )
        .unwrap();
        canon_key(&td)
    }

    fn outcome(rows: usize) -> CachedOutcome {
        CachedOutcome {
            verdict: CachedVerdict::Refuted { model_rows: rows },
            spend: crate::pipeline::SpendReport::default(),
        }
    }

    #[test]
    fn insert_get_roundtrip_across_shards() {
        let cache = DecisionCache::new(4);
        assert!(cache.is_empty());
        for n in 0..32 {
            cache.insert(key(n), outcome(n as usize));
        }
        assert_eq!(cache.len(), 32);
        for n in 0..32 {
            assert_eq!(cache.get(key(n)), Some(outcome(n as usize)));
        }
        assert_eq!(cache.get(key(99)), None);
    }

    #[test]
    fn overwrite_same_key() {
        let cache = DecisionCache::default();
        cache.insert(key(1), outcome(3));
        cache.insert(key(1), outcome(5));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(key(1)), Some(outcome(5)));
    }

    #[test]
    fn remove_invalidates_without_counting_an_eviction() {
        // One shard, capacity 2, so residency accounting is observable.
        let cache = DecisionCache::with_capacity(1, 2);
        cache.insert(key(0), outcome(0));
        cache.insert(key(1), outcome(1));
        assert_eq!(cache.remove(key(0)), Some(outcome(0)));
        assert_eq!(cache.remove(key(0)), None, "removal is not idempotent-Some");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0, "invalidation is not eviction");
        // The freed slot is real: two more inserts fit without evicting,
        // and the FIFO order no longer contains the removed key.
        cache.insert(key(2), outcome(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        cache.insert(key(3), outcome(3));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get(key(1)), None, "oldest *resident* key evicted");
    }

    #[test]
    fn shard_count_clamped() {
        assert_eq!(DecisionCache::new(0).shard_count(), 1);
        assert_eq!(DecisionCache::default().shard_count(), 16);
        assert_eq!(
            DecisionCache::default().shard_capacity(),
            DEFAULT_SHARD_CAPACITY
        );
        assert_eq!(DecisionCache::with_capacity(1, 0).shard_capacity(), 1);
    }

    #[test]
    fn full_shard_evicts_oldest_first() {
        // One shard, capacity 3: every key lands in the same FIFO queue.
        let cache = DecisionCache::with_capacity(1, 3);
        for n in 0..3 {
            cache.insert(key(n), outcome(n as usize));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 0);

        cache.insert(key(3), outcome(3));
        assert_eq!(cache.len(), 3, "capacity is a hard residency bound");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get(key(0)), None, "the oldest entry was evicted");
        for n in 1..=3 {
            assert!(cache.get(key(n)).is_some(), "newer entries survive");
        }

        cache.insert(key(4), outcome(4));
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.get(key(1)), None, "FIFO: next-oldest goes next");
    }

    #[test]
    fn overwrites_do_not_evict_or_reorder() {
        let cache = DecisionCache::with_capacity(1, 2);
        cache.insert(key(0), outcome(0));
        cache.insert(key(1), outcome(1));
        // Overwriting key(0) must not push it to the back of the queue.
        cache.insert(key(0), outcome(10));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.get(key(0)), Some(outcome(10)));
        // A new key still evicts key(0) — the original insertion order.
        cache.insert(key(2), outcome(2));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get(key(0)), None);
        assert!(cache.get(key(1)).is_some());
        assert!(cache.get(key(2)).is_some());
    }

    /// Fabricated keys for churn tests: one real canonicalization costs
    /// milliseconds, which would turn a 10⁴-op churn loop into minutes.
    /// [`CanonKey::from_raw`] exists for the snapshot decoder; here it
    /// doubles as a cheap source of distinct keys.
    fn raw_key(n: u64) -> CanonKey {
        CanonKey::from_raw(u128::from(n))
    }

    #[test]
    fn eviction_skips_tombstones_without_charging() {
        // One shard, capacity 4. Fill it, invalidate the two oldest, then
        // push past capacity: the eviction pop must step over the two
        // tombstones (uncharged) and evict the oldest *resident* key.
        let cache = DecisionCache::with_capacity(1, 4);
        for n in 0..4 {
            cache.insert(raw_key(n), outcome(n as usize));
        }
        cache.remove(raw_key(0));
        cache.remove(raw_key(1));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        cache.insert(raw_key(4), outcome(4));
        cache.insert(raw_key(5), outcome(5));
        assert_eq!(cache.len(), 4, "freed slots are reused");
        assert_eq!(cache.evictions(), 0, "removes never inflate evictions");
        cache.insert(raw_key(6), outcome(6));
        assert_eq!(cache.evictions(), 1, "exactly one eviction, not three");
        assert_eq!(cache.get(raw_key(2)), None, "oldest resident evicted");
        assert!(cache.get(raw_key(3)).is_some());
    }

    #[test]
    fn reinserted_key_gets_a_fresh_fifo_slot() {
        let cache = DecisionCache::with_capacity(1, 2);
        cache.insert(raw_key(0), outcome(0));
        cache.insert(raw_key(1), outcome(1));
        // Remove + reinsert key 0: its stale pair lingers in the queue but
        // its residency restarts at the back.
        cache.remove(raw_key(0));
        cache.insert(raw_key(0), outcome(10));
        cache.insert(raw_key(2), outcome(2));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get(raw_key(1)), None, "key 1 is now the oldest");
        assert_eq!(
            cache.get(raw_key(0)),
            Some(outcome(10)),
            "the reinserted key is young, not evicted via its stale pair"
        );
    }

    #[test]
    fn churn_stays_amortized_constant() {
        // Regression for the linear `remove` scan: 10⁴ insert/remove
        // cycles against one shard. Under the old implementation each
        // remove re-scanned the FIFO queue under the write lock; under
        // lazy deletion the queue is compacted whenever tombstones
        // outnumber residents, so its length — checked every iteration —
        // stays within a constant factor of the population.
        let cache = DecisionCache::with_capacity(1, 8);
        for n in 0..10_000u64 {
            cache.insert(raw_key(n), outcome(1));
            cache.remove(raw_key(n));
            let shard = cache.shards[0].read().unwrap();
            assert!(
                shard.order.len() <= 2 * (shard.map.len() + 1),
                "iteration {n}: order grew to {} over {} residents",
                shard.order.len(),
                shard.map.len()
            );
        }
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), 0, "pure churn is not capacity pressure");

        // And mixed churn — a resident population plus invalidation
        // traffic — still evicts FIFO over the tombstones.
        for n in 0..8 {
            cache.insert(raw_key(100_000 + n), outcome(2));
        }
        for n in 0..4 {
            cache.remove(raw_key(100_000 + n));
        }
        for n in 0..8 {
            cache.insert(raw_key(200_000 + n), outcome(3));
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.evictions(), 4, "only live FIFO heads were charged");
    }

    #[test]
    fn export_skips_tombstones_and_preserves_fifo_order() {
        let cache = DecisionCache::with_capacity(1, 16);
        for n in 0..6 {
            cache.insert(raw_key(n), outcome(n as usize));
        }
        cache.remove(raw_key(2));
        cache.remove(raw_key(4));
        let exported = cache.export();
        assert_eq!(
            exported.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            [0u64, 1, 3, 5].map(raw_key).to_vec(),
            "export is FIFO order minus tombstones"
        );
        assert_eq!(exported[2].1, outcome(3));
    }

    #[test]
    fn concurrent_reads_and_writes() {
        let cache = DecisionCache::new(8);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let cache = &cache;
                s.spawn(move || {
                    for n in 0..16 {
                        cache.insert(key(t * 16 + n), outcome(n as usize));
                        assert!(cache.get(key(t * 16 + n)).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 64);
    }
}
