//! A sharded, concurrent decision cache keyed by canonical forms.
//!
//! The batch pipeline ([`crate::batch::solve_batch`]) answers corpora of
//! implication questions in which many instances are isomorphic copies of
//! each other. Once one copy is decided, every other copy has — provably —
//! the same verdict: implication is invariant under per-column variable
//! renaming and row permutation of the dependencies, which is exactly the
//! equivalence [`td_core::canon::CanonKey`] quotients by. The cache stores
//! one [`CachedOutcome`] per key, so a verdict is computed once per
//! isomorphism class per process.
//!
//! Only **settled** verdicts (`Implied` / `Refuted`) are cached. `Unknown`
//! is a statement about the *budgets* of one particular call, not about the
//! instance — a later call with larger budgets might settle it — so caching
//! it would wrongly freeze a transient answer. (Within a single batch call,
//! where budgets are fixed, [`crate::batch::solve_batch`] still dedups
//! `Unknown` work through its own per-call bookkeeping.)
//!
//! The map is sharded `N` ways, each shard an independent
//! `RwLock<HashMap>`: readers of different keys proceed in parallel and
//! writers only contend within one shard. Plain standard-library locks — no
//! external dependencies.

use std::collections::HashMap;
use std::sync::RwLock;

use td_core::canon::CanonKey;

use crate::pipeline::SpendReport;

/// A settled verdict, compressed to the numbers a batch report needs (the
/// full certificates stay with the [`crate::pipeline::PipelineRun`] that
/// produced them; replaying a cached hit does not rebuild them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedVerdict {
    /// `D ⊨ D₀`: a derivation of the given length was found and compiled
    /// into a chase proof with the given number of firings.
    Implied {
        /// Steps of the word-problem derivation.
        derivation_steps: usize,
        /// Firings of the compiled part (A) chase proof.
        proof_firings: usize,
    },
    /// `D ⊭ D₀` over finite databases: a countermodel with the given
    /// number of rows exists.
    Refuted {
        /// Rows of the part (B) countermodel.
        model_rows: usize,
    },
}

/// What the cache remembers per canonical key: the settled verdict plus
/// the spent-budget provenance of the run that settled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedOutcome {
    /// The settled verdict.
    pub verdict: CachedVerdict,
    /// Spend accounting of the solving run (winner exact, loser labelled
    /// truncated — see [`SpendReport`]).
    pub spend: SpendReport,
}

/// A sharded `CanonKey → CachedOutcome` map, safe to share across the
/// batch worker threads by reference.
#[derive(Debug)]
pub struct DecisionCache {
    shards: Vec<RwLock<HashMap<CanonKey, CachedOutcome>>>,
}

impl Default for DecisionCache {
    /// 16 shards: comfortably more than the worker counts the batch
    /// pipeline uses, so writer contention stays negligible.
    fn default() -> Self {
        Self::new(16)
    }
}

impl DecisionCache {
    /// Creates a cache with `shards` independent lock domains (clamped to
    /// at least 1).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| RwLock::default()).collect(),
        }
    }

    fn shard(&self, key: CanonKey) -> &RwLock<HashMap<CanonKey, CachedOutcome>> {
        let ix = (key.fold64() % self.shards.len() as u64) as usize;
        &self.shards[ix]
    }

    /// Looks up a settled verdict.
    pub fn get(&self, key: CanonKey) -> Option<CachedOutcome> {
        self.shard(key)
            .read()
            .expect("cache shard lock poisoned")
            .get(&key)
            .copied()
    }

    /// Records a settled verdict. A later insert for the same key
    /// overwrites the earlier one; both describe the same isomorphism
    /// class, so the verdicts agree and only the provenance can differ.
    pub fn insert(&self, key: CanonKey, outcome: CachedOutcome) {
        self.shard(key)
            .write()
            .expect("cache shard lock poisoned")
            .insert(key, outcome);
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard lock poisoned").len())
            .sum()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards (lock domains).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::prelude::*;

    fn key(n: u32) -> CanonKey {
        // Distinct keys from distinct real TDs: a chain sharing column-0
        // variables across `n` rows.
        let schema = Schema::new("R", ["A", "B"]).unwrap();
        let rows: Vec<td_core::td::TdRow> = (0..=n)
            .map(|i| td_core::td::TdRow::from_raw([0, i]))
            .collect();
        let td = td_core::td::Td::new(
            schema,
            rows,
            td_core::td::TdRow::from_raw([1, 0]),
            format!("k{n}"),
        )
        .unwrap();
        canon_key(&td)
    }

    fn outcome(rows: usize) -> CachedOutcome {
        CachedOutcome {
            verdict: CachedVerdict::Refuted { model_rows: rows },
            spend: crate::pipeline::SpendReport::default(),
        }
    }

    #[test]
    fn insert_get_roundtrip_across_shards() {
        let cache = DecisionCache::new(4);
        assert!(cache.is_empty());
        for n in 0..32 {
            cache.insert(key(n), outcome(n as usize));
        }
        assert_eq!(cache.len(), 32);
        for n in 0..32 {
            assert_eq!(cache.get(key(n)), Some(outcome(n as usize)));
        }
        assert_eq!(cache.get(key(99)), None);
    }

    #[test]
    fn overwrite_same_key() {
        let cache = DecisionCache::default();
        cache.insert(key(1), outcome(3));
        cache.insert(key(1), outcome(5));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(key(1)), Some(outcome(5)));
    }

    #[test]
    fn shard_count_clamped() {
        assert_eq!(DecisionCache::new(0).shard_count(), 1);
        assert_eq!(DecisionCache::default().shard_count(), 16);
    }

    #[test]
    fn concurrent_reads_and_writes() {
        let cache = DecisionCache::new(8);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let cache = &cache;
                s.spawn(move || {
                    for n in 0..16 {
                        cache.insert(key(t * 16 + n), outcome(n as usize));
                        assert!(cache.get(key(t * 16 + n)).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 64);
    }
}
