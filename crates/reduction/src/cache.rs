//! A sharded, concurrent decision cache keyed by canonical forms.
//!
//! The batch pipeline ([`crate::batch::solve_batch`]) answers corpora of
//! implication questions in which many instances are isomorphic copies of
//! each other. Once one copy is decided, every other copy has — provably —
//! the same verdict: implication is invariant under per-column variable
//! renaming and row permutation of the dependencies, which is exactly the
//! equivalence [`td_core::canon::CanonKey`] quotients by. The cache stores
//! one [`CachedOutcome`] per key, so a verdict is computed once per
//! isomorphism class per process.
//!
//! Only **settled** verdicts (`Implied` / `Refuted`) are cached. `Unknown`
//! is a statement about the *budgets* of one particular call, not about the
//! instance — a later call with larger budgets might settle it — so caching
//! it would wrongly freeze a transient answer. (Within a single batch call,
//! where budgets are fixed, [`crate::batch::solve_batch`] still dedups
//! `Unknown` work through its own per-call bookkeeping.)
//!
//! The map is sharded `N` ways, each shard an independent
//! `RwLock<HashMap>`: readers of different keys proceed in parallel and
//! writers only contend within one shard. Plain standard-library locks — no
//! external dependencies.
//!
//! # Bounded residency
//!
//! A long-lived engine serves an unbounded stream of distinct keys, so the
//! cache is **capacity-bounded**: each shard holds at most
//! [`DecisionCache::shard_capacity`] entries and evicts its oldest entry
//! (FIFO insertion order) to make room for a new key. Eviction is purely a
//! residency decision — a verdict is a theorem about an isomorphism class
//! and never goes stale, so evicting one costs a re-solve, not
//! correctness. The cumulative eviction count is exposed via
//! [`DecisionCache::evictions`] and surfaced in the batch and engine
//! stats; the default capacity ([`DEFAULT_SHARD_CAPACITY`] per shard) is
//! generous enough that one-shot and test workloads never evict.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use td_core::canon::CanonKey;

use crate::pipeline::SpendReport;

/// Default per-shard entry capacity: with the default 16 shards, about one
/// million resident verdicts (~100 bytes each) before eviction starts —
/// generous for anything short of a very long-lived server.
pub const DEFAULT_SHARD_CAPACITY: usize = 65_536;

/// A settled verdict, compressed to the numbers a batch report needs (the
/// full certificates stay with the [`crate::pipeline::PipelineRun`] that
/// produced them; replaying a cached hit does not rebuild them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedVerdict {
    /// `D ⊨ D₀`: a derivation of the given length was found and compiled
    /// into a chase proof with the given number of firings.
    Implied {
        /// Steps of the word-problem derivation.
        derivation_steps: usize,
        /// Firings of the compiled part (A) chase proof.
        proof_firings: usize,
    },
    /// `D ⊭ D₀` over finite databases: a countermodel with the given
    /// number of rows exists.
    Refuted {
        /// Rows of the part (B) countermodel.
        model_rows: usize,
    },
}

/// What the cache remembers per canonical key: the settled verdict plus
/// the spent-budget provenance of the run that settled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedOutcome {
    /// The settled verdict.
    pub verdict: CachedVerdict,
    /// Spend accounting of the solving run (winner exact, loser labelled
    /// truncated — see [`SpendReport`]).
    pub spend: SpendReport,
}

/// One lock domain: the key→outcome map plus the FIFO insertion order its
/// evictions follow.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CanonKey, CachedOutcome>,
    /// Keys in insertion order. Overwrites keep the original position —
    /// they refresh provenance, not residency.
    order: VecDeque<CanonKey>,
}

/// A sharded `CanonKey → CachedOutcome` map, safe to share across the
/// batch worker threads by reference, with per-shard FIFO eviction once a
/// shard reaches its capacity.
#[derive(Debug)]
pub struct DecisionCache {
    shards: Vec<RwLock<Shard>>,
    shard_capacity: usize,
    evictions: AtomicU64,
}

impl Default for DecisionCache {
    /// 16 shards: comfortably more than the worker counts the batch
    /// pipeline uses, so writer contention stays negligible. Capacity is
    /// the generous [`DEFAULT_SHARD_CAPACITY`].
    fn default() -> Self {
        Self::new(16)
    }
}

impl DecisionCache {
    /// Creates a cache with `shards` independent lock domains (clamped to
    /// at least 1) and the default per-shard capacity.
    pub fn new(shards: usize) -> Self {
        Self::with_capacity(shards, DEFAULT_SHARD_CAPACITY)
    }

    /// Creates a cache with `shards` lock domains, each holding at most
    /// `shard_capacity` entries (both clamped to at least 1). The total
    /// residency bound is `shards * shard_capacity`.
    pub fn with_capacity(shards: usize, shard_capacity: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| RwLock::default()).collect(),
            shard_capacity: shard_capacity.max(1),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: CanonKey) -> &RwLock<Shard> {
        let ix = (key.fold64() % self.shards.len() as u64) as usize;
        &self.shards[ix]
    }

    /// Looks up a settled verdict.
    pub fn get(&self, key: CanonKey) -> Option<CachedOutcome> {
        self.shard(key)
            .read()
            .expect("cache shard lock poisoned")
            .map
            .get(&key)
            .copied()
    }

    /// Records a settled verdict. A later insert for the same key
    /// overwrites the earlier one; both describe the same isomorphism
    /// class, so the verdicts agree and only the provenance can differ.
    /// Inserting a *new* key into a full shard first evicts the shard's
    /// oldest entry (FIFO) and counts it in [`DecisionCache::evictions`].
    pub fn insert(&self, key: CanonKey, outcome: CachedOutcome) {
        let mut shard = self.shard(key).write().expect("cache shard lock poisoned");
        if shard.map.insert(key, outcome).is_some() {
            return; // overwrite: residency and order unchanged
        }
        shard.order.push_back(key);
        if shard.map.len() > self.shard_capacity {
            let oldest = shard
                .order
                .pop_front()
                .expect("non-empty shard has an insertion order");
            shard.map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops one key, returning its outcome if it was resident. This is
    /// the targeted invalidation hook: a caller whose *question* changed
    /// identity (e.g. a session whose premise subset was edited — see
    /// [`crate::engine::Session`]) removes exactly the stale key instead
    /// of flushing the cache. Removal does not count as an eviction: the
    /// eviction counter measures capacity pressure, not invalidation.
    pub fn remove(&self, key: CanonKey) -> Option<CachedOutcome> {
        let mut shard = self.shard(key).write().expect("cache shard lock poisoned");
        let outcome = shard.map.remove(&key)?;
        if let Some(pos) = shard.order.iter().position(|k| *k == key) {
            shard.order.remove(pos);
        }
        Some(outcome)
    }

    /// Number of cached verdicts currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard lock poisoned").map.len())
            .sum()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards (lock domains).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Maximum entries per shard before eviction.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Cumulative number of entries evicted to make room for new keys.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::prelude::*;

    fn key(n: u32) -> CanonKey {
        // Distinct keys from distinct real TDs: a chain sharing column-0
        // variables across `n` rows.
        let schema = Schema::new("R", ["A", "B"]).unwrap();
        let rows: Vec<td_core::td::TdRow> = (0..=n)
            .map(|i| td_core::td::TdRow::from_raw([0, i]))
            .collect();
        let td = td_core::td::Td::new(
            schema,
            rows,
            td_core::td::TdRow::from_raw([1, 0]),
            format!("k{n}"),
        )
        .unwrap();
        canon_key(&td)
    }

    fn outcome(rows: usize) -> CachedOutcome {
        CachedOutcome {
            verdict: CachedVerdict::Refuted { model_rows: rows },
            spend: crate::pipeline::SpendReport::default(),
        }
    }

    #[test]
    fn insert_get_roundtrip_across_shards() {
        let cache = DecisionCache::new(4);
        assert!(cache.is_empty());
        for n in 0..32 {
            cache.insert(key(n), outcome(n as usize));
        }
        assert_eq!(cache.len(), 32);
        for n in 0..32 {
            assert_eq!(cache.get(key(n)), Some(outcome(n as usize)));
        }
        assert_eq!(cache.get(key(99)), None);
    }

    #[test]
    fn overwrite_same_key() {
        let cache = DecisionCache::default();
        cache.insert(key(1), outcome(3));
        cache.insert(key(1), outcome(5));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(key(1)), Some(outcome(5)));
    }

    #[test]
    fn remove_invalidates_without_counting_an_eviction() {
        // One shard, capacity 2, so residency accounting is observable.
        let cache = DecisionCache::with_capacity(1, 2);
        cache.insert(key(0), outcome(0));
        cache.insert(key(1), outcome(1));
        assert_eq!(cache.remove(key(0)), Some(outcome(0)));
        assert_eq!(cache.remove(key(0)), None, "removal is not idempotent-Some");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0, "invalidation is not eviction");
        // The freed slot is real: two more inserts fit without evicting,
        // and the FIFO order no longer contains the removed key.
        cache.insert(key(2), outcome(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        cache.insert(key(3), outcome(3));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get(key(1)), None, "oldest *resident* key evicted");
    }

    #[test]
    fn shard_count_clamped() {
        assert_eq!(DecisionCache::new(0).shard_count(), 1);
        assert_eq!(DecisionCache::default().shard_count(), 16);
        assert_eq!(
            DecisionCache::default().shard_capacity(),
            DEFAULT_SHARD_CAPACITY
        );
        assert_eq!(DecisionCache::with_capacity(1, 0).shard_capacity(), 1);
    }

    #[test]
    fn full_shard_evicts_oldest_first() {
        // One shard, capacity 3: every key lands in the same FIFO queue.
        let cache = DecisionCache::with_capacity(1, 3);
        for n in 0..3 {
            cache.insert(key(n), outcome(n as usize));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 0);

        cache.insert(key(3), outcome(3));
        assert_eq!(cache.len(), 3, "capacity is a hard residency bound");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get(key(0)), None, "the oldest entry was evicted");
        for n in 1..=3 {
            assert!(cache.get(key(n)).is_some(), "newer entries survive");
        }

        cache.insert(key(4), outcome(4));
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.get(key(1)), None, "FIFO: next-oldest goes next");
    }

    #[test]
    fn overwrites_do_not_evict_or_reorder() {
        let cache = DecisionCache::with_capacity(1, 2);
        cache.insert(key(0), outcome(0));
        cache.insert(key(1), outcome(1));
        // Overwriting key(0) must not push it to the back of the queue.
        cache.insert(key(0), outcome(10));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.get(key(0)), Some(outcome(10)));
        // A new key still evicts key(0) — the original insertion order.
        cache.insert(key(2), outcome(2));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get(key(0)), None);
        assert!(cache.get(key(1)).is_some());
        assert!(cache.get(key(2)).is_some());
    }

    #[test]
    fn concurrent_reads_and_writes() {
        let cache = DecisionCache::new(8);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let cache = &cache;
                s.spawn(move || {
                    for n in 0..16 {
                        cache.insert(key(t * 16 + n), outcome(n as usize));
                        assert!(cache.get(key(t * 16 + n)).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 64);
    }
}
