//! The end-to-end pipeline: word problem → reduction → verdict.
//!
//! [`solve`] ties everything together:
//!
//! 1. zero-saturate and [`td_semigroup::normalize::normalize`] the input
//!    presentation;
//! 2. [`build_system`] — the dependencies `D` and goal `D₀`;
//! 3. run the two certificate searches:
//!    * the **derivable** side — search for a derivation `A₀ ⇒* 0`; on
//!      success, compile it into a guided chase proof (part (A)) —
//!      `D ⊨ D₀`, certified;
//!    * the **refutable** side — look for a finite cancellation
//!      countermodel (analytic families first, then backtracking search);
//!      on success, build the part (B) database — `D ⊭ D₀` (finitely),
//!      certified;
//! 4. otherwise report `Unknown` with the spent budgets — the honest third
//!    verdict mandated by undecidability.
//!
//! # Racing the two sides
//!
//! The two searches certify mutually exclusive answers (a derivation makes
//! `A₀ = 0` hold in *every* model, so no countermodel can exist), so
//! nothing is learned by running the loser to completion. Under
//! [`SolveMode::Racing`] — the default for [`solve`] — the two sides run
//! on scoped threads sharing an early-exit flag: whichever finds its
//! certificate first flips the flag and the other side backs out at its
//! next poll ([`td_semigroup::derivation::search_derivation_cancellable`],
//! [`td_semigroup::model_search::find_counter_model_cancellable`]).
//! [`SolveMode::Sequential`] preserves the historical
//! derivation-then-model order on the calling thread; the differential
//! property tests assert both modes return the same verdict.
//!
//! Every run also records wall-clock [`PhaseTimings`], which the `tdq`
//! binary surfaces under `--timings`.

use std::time::{Duration, Instant};

use td_core::budget::{Cancellation, Parallelism};
use td_core::chase::ChaseBudget;
use td_core::homomorphism::MatchStrategy;
use td_semigroup::cayley::{FiniteSemigroup, Interpretation};
use td_semigroup::derivation::{
    search_goal_derivation_tracked, Derivation, SearchBudget, SearchResult,
};
use td_semigroup::model_search::{
    find_counter_model_tracked, ModelSearchOptions, ModelSearchResult,
};
use td_semigroup::normalize::{normalize, Normalized};
use td_semigroup::presentation::Presentation;

pub use crate::batch::{solve_batch, BatchRun, BatchStats, BatchVerdict};
use crate::deps::{build_system, ReductionSystem};
use crate::error::Result;
use crate::fastpath::{self, FastBudget, FastVerdict};
use crate::part_a::{prove_part_a_with, PartAProof};
use crate::part_b::{build_counter_model, CounterModel};
use crate::verify::{verify_counter_model_with, PartBReport};

/// Budgets for the three searches involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budgets {
    /// Derivation search budget.
    pub derivation: SearchBudget,
    /// Finite-model search options.
    pub model: ModelSearchOptions,
    /// Chase budget (used only by unguided cross-checks; part (A) itself is
    /// guided and needs no budget).
    pub chase: ChaseBudget,
}

/// Scheduling and matching choices for one [`solve_with_opts`] call,
/// bundled so new knobs do not keep widening the signatures. The default
/// races the two sides and matches with the indexed planner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveOptions {
    /// How the two certificate searches are scheduled.
    pub mode: SolveMode,
    /// The homomorphism matcher used by the database-layer checks
    /// (certificate verification); `Naive` is the differential oracle
    /// surfaced on the CLI as `--strategy naive`.
    pub strategy: MatchStrategy,
    /// Worker-team width for chase delta-trigger discovery (session
    /// re-chases, redundancy checks — every unguided chase the engine
    /// runs). Off by default; may never change a verdict, a proof, or a
    /// golden byte (the differential suites pin the equality).
    pub parallelism: Parallelism,
    /// Whether the axiom-driven fast path may settle this solve (see
    /// [`crate::fastpath`]). On by default under [`SolveMode::Racing`];
    /// [`SolveMode::Sequential`] ignores it entirely — the sequential
    /// oracle stays the pure two-search reference the differential tests
    /// compare against.
    pub fastpath: FastPath,
}

/// Whether a solve may consult the axiom-driven fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FastPath {
    /// Prescreen before the search race and keep the fastpath lane in the
    /// portfolio (Racing mode only; the prescreen is a pure speed knob and
    /// may never change a verdict).
    #[default]
    Auto,
    /// Never consult the fast path — the baseline for benches
    /// (`engine/cold_decide`) and for oracle-control differential runs.
    Off,
}

/// How [`solve_with`] schedules the two certificate searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveMode {
    /// Derivation search first, model search only if it fails — on the
    /// calling thread. Kept as the deterministic oracle for the
    /// differential tests.
    Sequential,
    /// Both searches on scoped threads with a shared early-exit flag:
    /// whichever certificate is found first wins and cancels the loser.
    #[default]
    Racing,
}

/// Wall-clock durations of the pipeline phases, for `tdq --timings` and
/// performance triage. Under [`SolveMode::Racing`] the derivation and
/// model times overlap, so they can sum to more than `total`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Zero-saturation plus normalization to `(2,1)`/`(1,1)` equations.
    pub normalize: Duration,
    /// Building the reduction system (attributes, `D`, `D₀`).
    pub reduce: Duration,
    /// The axiom-driven fast-path prescreen (zero when the fast path was
    /// off or the mode was sequential).
    pub fastpath: Duration,
    /// Derivation search (side 1), including any cancelled prefix.
    pub derivation: Duration,
    /// Finite-model search (side 2), including any cancelled prefix.
    pub model: Duration,
    /// Compiling and verifying the winning certificate (part (A) proof or
    /// part (B) countermodel); zero for `Unknown`.
    pub certificate: Duration,
    /// End-to-end wall-clock time of [`solve_with`].
    pub total: Duration,
}

/// How much of each search budget a [`solve_with`] call actually spent —
/// the deterministic companion to [`PhaseTimings`].
///
/// The two sides certify mutually exclusive answers, so exactly one of
/// them can win; its spend is **exact** (identical under
/// [`SolveMode::Sequential`] and [`SolveMode::Racing`], since the winning
/// side is never cancelled). The losing side's spend depends on *when* the
/// race was decided — under racing it stops at its next cancellation poll
/// (per BFS pop for the derivation search, per interpretation and per 1024
/// DFS nodes for the model search) — so it is always labelled
/// `truncated`: a lower bound, not a reproducible count. The label is
/// deliberately *not* derived from the tracked searches' `cancelled`
/// flags: whether the loser happened to finish naturally before observing
/// the flag is a scheduling accident, and keying the label on it would
/// make the report nondeterministic — the exact defect this type exists
/// to fix. On an `Unknown`
/// outcome neither side was cancelled, both spends are exact, and the
/// report coincides across solve modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpendReport {
    /// Checks the axiom-driven fast-path prescreen spent (subsumption
    /// tests, probe dependency checks, weakening nodes — see
    /// [`crate::fastpath::Prescreen::checks`]). Zero when the fast path
    /// was off or the mode was sequential. Always exact and replay-stable:
    /// the prescreen never observes the race token.
    pub fastpath_checks: u64,
    /// `true` when the prescreen bailed on its own spend cap before
    /// finishing every stage ([`crate::fastpath::Prescreen::truncated`]);
    /// deterministic, unlike the race-dependent truncations below.
    pub fastpath_truncated: bool,
    /// Distinct words the derivation search visited.
    pub derivation_states: usize,
    /// `true` when the derivation search did not run to its own natural
    /// end (it lost the race and was cancelled, never started because the
    /// fast path settled first, or — sequentially — never needed to run
    /// past a win): `derivation_states` is then only a lower bound.
    pub derivation_truncated: bool,
    /// Nodes the finite-model search visited.
    pub model_nodes: u64,
    /// `true` when the model search did not run to its own natural end
    /// (lost the race, never started past a fast-path settle, or was
    /// skipped after a sequential win): `model_nodes` is then only a lower
    /// bound.
    pub model_truncated: bool,
}

/// One lane's worth of a [`SpendReport`] — the per-lane view the
/// portfolio runner produces and diagnostics consume. `units` are
/// lane-relative (derivation states for the derivation lane, search nodes
/// for the model lane); `truncated` carries the same exact-vs-lower-bound
/// contract as the flat report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneSpend {
    /// The lane's stable label (see [`Racer::label`]).
    pub lane: &'static str,
    /// Work units the lane spent (exact unless `truncated`).
    pub units: u64,
    /// `true` when the lane did not run to its natural end, so `units`
    /// is only a lower bound.
    pub truncated: bool,
}

impl SpendReport {
    /// The per-lane view of this report, in portfolio lane order —
    /// fastpath, then derivation, then model: the tie-break order of the
    /// runner. A `Vec` rather than a fixed-size array so adding a lane
    /// (as this PR did) widens every consumer instead of silently
    /// dropping data.
    pub fn lanes(&self) -> Vec<LaneSpend> {
        vec![
            LaneSpend {
                lane: "fastpath",
                units: self.fastpath_checks,
                truncated: self.fastpath_truncated,
            },
            LaneSpend {
                lane: "derivation",
                units: self.derivation_states as u64,
                truncated: self.derivation_truncated,
            },
            LaneSpend {
                lane: "model",
                units: self.model_nodes,
                truncated: self.model_truncated,
            },
        ]
    }
}

/// The pipeline's verdict.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // Implied carries the full certificates by design
pub enum PipelineOutcome {
    /// `A₀ = 0` is derivable, hence `D ⊨ D₀` — with both certificates.
    Implied {
        /// The word-problem derivation found.
        derivation: Derivation,
        /// The part (A) chase proof compiled from it.
        proof: PartAProof,
    },
    /// A finite cancellation countermodel exists, hence `D ⊭ D₀` over
    /// finite databases — with the certificate database and its report.
    Refuted {
        /// The part (B) countermodel.
        model: Box<CounterModel>,
        /// The independent verification report (always `ok()`).
        report: PartBReport,
    },
    /// The axiom-driven fast path settled the question before either
    /// search ran: a certain verdict with a replayable [`FastVerdict`]
    /// reason instead of the full certificates (re-solve with
    /// [`FastPath::Off`] when the certificates themselves are needed).
    FastSettled {
        /// The settled verdict and its replayable reason.
        verdict: FastVerdict,
    },
    /// Neither side succeeded within the budgets.
    Unknown {
        /// Words visited by the derivation search.
        derivation_states: usize,
        /// Nodes visited by the model search.
        model_nodes: u64,
    },
}

impl PipelineOutcome {
    /// `true` when `D ⊨ D₀` — [`PipelineOutcome::Implied`], or a
    /// fast-path settle on the implied side.
    pub fn is_implied(&self) -> bool {
        match self {
            PipelineOutcome::Implied { .. } => true,
            PipelineOutcome::FastSettled { verdict } => verdict.is_implied(),
            _ => false,
        }
    }

    /// `true` when `D ⊭ D₀` over finite databases —
    /// [`PipelineOutcome::Refuted`], or a fast-path settle on the refuted
    /// side.
    pub fn is_refuted(&self) -> bool {
        match self {
            PipelineOutcome::Refuted { .. } => true,
            PipelineOutcome::FastSettled { verdict } => !verdict.is_implied(),
            _ => false,
        }
    }
}

/// Everything the pipeline produced: the normalization, the reduction
/// system, the verdict, and the per-phase timings.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The normalized presentation and its bookkeeping.
    pub normalized: Normalized,
    /// The reduction system built from it.
    pub system: ReductionSystem,
    /// The verdict.
    pub outcome: PipelineOutcome,
    /// Wall-clock phase timings of this run.
    pub timings: PhaseTimings,
    /// Deterministic spent-budget accounting for the two searches.
    pub spend: SpendReport,
}

/// What one side of the race produced, before certificate compilation.
enum SideResult {
    Fast(FastVerdict),
    Derivation(Derivation),
    Model(FiniteSemigroup, Interpretation),
    Neither {
        derivation_states: usize,
        model_nodes: u64,
    },
}

/// What the model side produced: the model (if any) and the nodes visited
/// (exact when the side ran to its natural end, a lower bound when it was
/// cancelled mid-search).
struct ModelSide {
    found: Option<(FiniteSemigroup, Interpretation)>,
    nodes: u64,
}

/// Runs the model side: analytic null-semigroup shortcut first, then the
/// cancellable backtracking search.
fn model_side(
    np: &Presentation,
    opts: &ModelSearchOptions,
    cancel: &Cancellation,
) -> Result<ModelSide> {
    if let Some((g, interp)) = td_semigroup::families::null_counter_model(np) {
        return Ok(ModelSide {
            found: Some((g, interp)),
            nodes: 0,
        });
    }
    let tracked = find_counter_model_tracked(np, opts, cancel)?;
    let found = match tracked.result {
        ModelSearchResult::Found(g, interp) => Some((g, interp)),
        ModelSearchResult::ExhaustedSizes { .. } | ModelSearchResult::BudgetExhausted { .. } => {
            None
        }
    };
    Ok(ModelSide {
        found,
        nodes: tracked.nodes,
    })
}

/// Runs the two certificate searches sequentially (derivation first).
/// `cancel` is an *external* stop request (engine shutdown); it is never
/// flipped from inside this function.
fn search_sequential(
    np: &Presentation,
    budgets: &Budgets,
    timings: &mut PhaseTimings,
    spend: &mut SpendReport,
    cancel: &Cancellation,
) -> Result<SideResult> {
    let t = Instant::now();
    let deriv = search_goal_derivation_tracked(np, &budgets.derivation, cancel);
    timings.derivation = t.elapsed();
    spend.derivation_states = deriv.states;
    if let SearchResult::Found(derivation) = deriv.result {
        // The model search never ran: its zero spend is a trivial
        // truncation, mirroring the racing report's labelling.
        spend.model_truncated = true;
        return Ok(SideResult::Derivation(derivation));
    }

    let t = Instant::now();
    let side = model_side(np, &budgets.model, cancel)?;
    timings.model = t.elapsed();
    spend.model_nodes = side.nodes;
    Ok(match side.found {
        Some((g, interp)) => SideResult::Model(g, interp),
        None => SideResult::Neither {
            derivation_states: deriv.states,
            model_nodes: side.nodes,
        },
    })
}

/// A certificate the portfolio can win with. The variants mirror the
/// certificate kinds of the reduction; new racer implementations must
/// produce one of these.
#[derive(Debug)]
pub enum LaneFound {
    /// A settled axiom-driven fast-path verdict with its replayable
    /// reason (either side; see [`FastPathRacer`]).
    Fast(FastVerdict),
    /// A word-problem derivation `A₀ ⇒* 0` (the *implied* certificate).
    Derivation(Derivation),
    /// A finite cancellation countermodel (the *refuted* certificate).
    Model(FiniteSemigroup, Interpretation),
}

/// What one portfolio lane brought back: its certificate (if it won its
/// own search), the work units it spent, and its wall-clock time.
#[derive(Debug)]
pub struct LaneRun {
    /// The certificate, if this lane found one before backing out.
    pub found: Option<LaneFound>,
    /// Lane-relative work units (derivation states, model-search nodes).
    /// Exact when the lane ran to its natural end, a lower bound when it
    /// was cancelled mid-search.
    pub units: u64,
    /// Wall-clock time the lane ran for, including any cancelled prefix.
    pub elapsed: Duration,
}

/// One lane of the solver portfolio: a budgeted certificate search that
/// polls the shared [`Cancellation`] token and backs out when another
/// lane has already won. Each racer owns its budget rung, which is the
/// hook for budget-laddered portfolios (several rungs of the same search
/// at increasing budgets racing one another).
///
/// Implementations must be `Sync`: the portfolio runner shares each racer
/// across the scoped team by reference.
pub trait Racer: Sync {
    /// Stable diagnostic label (also the `lane` field of [`LaneSpend`]).
    fn label(&self) -> &'static str;

    /// Runs the lane's search over `np`, observing `cancel`.
    ///
    /// # Errors
    ///
    /// Implementation-defined; a failed lane fails the whole portfolio
    /// run (searches report *not found* via [`LaneRun::found`], never
    /// through an error).
    fn run(&self, np: &Presentation, cancel: &Cancellation) -> Result<LaneRun>;
}

/// The derivation lane: BFS for `A₀ ⇒* 0` under its budget rung.
#[derive(Debug, Clone, Copy)]
pub struct DerivationRacer {
    /// This lane's budget rung.
    pub budget: SearchBudget,
}

impl Racer for DerivationRacer {
    fn label(&self) -> &'static str {
        "derivation"
    }

    fn run(&self, np: &Presentation, cancel: &Cancellation) -> Result<LaneRun> {
        let t = Instant::now();
        let r = search_goal_derivation_tracked(np, &self.budget, cancel);
        let found = match r.result {
            SearchResult::Found(derivation) => Some(LaneFound::Derivation(derivation)),
            SearchResult::ExhaustedWithinBound { .. } | SearchResult::BudgetExhausted { .. } => {
                None
            }
        };
        Ok(LaneRun {
            found,
            units: r.states as u64,
            elapsed: t.elapsed(),
        })
    }
}

/// The fast-path lane: the staged axiom-driven prescreen
/// ([`crate::fastpath::prescreen`]) run as a portfolio racer, so a rule
/// can win a solve in microseconds before either search warms up.
///
/// This is the one lane that **never observes the shared race token**: its
/// work is bounded by its own deterministic [`FastBudget`] ticker, and
/// whether it settles must not depend on when another lane happened to
/// win — otherwise the winner index, and with it the spend labels, would
/// be a scheduling accident. Consequence: an externally pre-cancelled
/// portfolio can still be won by this lane (a certain verdict computed in
/// microseconds is returned, not discarded).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastPathRacer {
    /// The prescreen's deterministic spend caps.
    pub budget: FastBudget,
}

impl Racer for FastPathRacer {
    fn label(&self) -> &'static str {
        "fastpath"
    }

    fn run(&self, np: &Presentation, _cancel: &Cancellation) -> Result<LaneRun> {
        let t = Instant::now();
        let system = build_system(np)?;
        let pre = fastpath::prescreen(&system, &self.budget)?;
        Ok(LaneRun {
            found: pre.verdict.map(LaneFound::Fast),
            units: pre.checks,
            elapsed: t.elapsed(),
        })
    }
}

/// The model lane: analytic families first, then the cancellable
/// backtracking search, under its budget rung.
#[derive(Debug, Clone, Copy)]
pub struct ModelRacer {
    /// This lane's budget rung.
    pub opts: ModelSearchOptions,
}

impl Racer for ModelRacer {
    fn label(&self) -> &'static str {
        "model"
    }

    fn run(&self, np: &Presentation, cancel: &Cancellation) -> Result<LaneRun> {
        let t = Instant::now();
        let side = model_side(np, &self.opts, cancel)?;
        Ok(LaneRun {
            found: side.found.map(|(g, interp)| LaneFound::Model(g, interp)),
            units: side.nodes,
            elapsed: t.elapsed(),
        })
    }
}

/// Runs an N-lane solver portfolio: every lane on its own scoped thread,
/// all sharing `cancel`. A lane that finds a certificate flips the token;
/// the others back out at their next poll. Returns one [`LaneRun`] per
/// lane, in lane order.
///
/// Winner selection is deterministic regardless of which thread finished
/// first on the wall clock: take the **lowest-indexed** lane with a
/// certificate (see [`portfolio_winner`]). Certificates of opposite kinds
/// are mutually exclusive mathematically, so a cross-kind double win is
/// impossible; same-kind double wins (budget-laddered rungs of one
/// search) resolve to the earliest rung. `cancel` may also be flipped by
/// an external holder (engine shutdown), in which case every lane backs
/// out and no lane wins.
///
/// # Errors
///
/// Fails if any lane fails (see [`Racer::run`]); lane errors take
/// precedence over certificates found by other lanes.
pub fn run_portfolio(
    np: &Presentation,
    lanes: &[&dyn Racer],
    cancel: &Cancellation,
) -> Result<Vec<LaneRun>> {
    let results: Vec<Result<LaneRun>> = std::thread::scope(|s| {
        let handles: Vec<_> = lanes
            .iter()
            .map(|lane| {
                s.spawn(move || {
                    let run = lane.run(np, cancel);
                    if matches!(run, Ok(LaneRun { found: Some(_), .. })) {
                        cancel.cancel();
                    }
                    run
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("portfolio lane panicked"))
            .collect()
    });
    results.into_iter().collect()
}

/// Deterministic winner selection for a portfolio: the lowest-indexed
/// lane holding a certificate. Takes the certificate out of its
/// [`LaneRun`] (the spend fields stay behind).
pub fn portfolio_winner(runs: &mut [LaneRun]) -> Option<(usize, LaneFound)> {
    runs.iter_mut()
        .enumerate()
        .find_map(|(i, r)| r.found.take().map(|f| (i, f)))
}

/// Races the certificate searches as a portfolio — the fastpath lane
/// first (when enabled), then derivation, then model, so the
/// deterministic winner selection prefers the cheap rule-based settle,
/// then the derivation side on the mathematically impossible double win,
/// matching the sequential order. The winner's spend is exact; a
/// cancelled loser's is labelled truncated in the [`SpendReport`] — its
/// precise value depends on when the cancellation poll fired and must be
/// read as a lower bound. If every lane exhausts, none is cancelled and
/// the spent budgets are exactly the sequential ones.
///
/// The fastpath lane's found-or-bailed answer never depends on the shared
/// token (see [`FastPathRacer`]), so the winner index is deterministic
/// even though three threads race on the wall clock. In-tree this lane is
/// preceded by the stage-0 prescreen of [`solve_prepared`], which settles
/// eligible solves *before* the portfolio spawns — and, on a bail, drops
/// the lane from its own portfolio call (re-running a deterministic bail
/// buys nothing). The lane stays in [`run_portfolio`]'s vocabulary so
/// direct composers that skipped stage 0 get the same microsecond win.
///
/// `cancel` is the shared race token. Normally it starts fresh and is
/// flipped by the winning lane; an *external* holder (the engine's
/// shutdown path) may also flip it, in which case the search lanes back
/// out at their next poll.
fn search_racing(
    np: &Presentation,
    budgets: &Budgets,
    fast: Option<FastBudget>,
    timings: &mut PhaseTimings,
    spend: &mut SpendReport,
    cancel: &Cancellation,
) -> Result<SideResult> {
    let fastpath = fast.map(|budget| FastPathRacer { budget });
    let derivation = DerivationRacer {
        budget: budgets.derivation,
    };
    let model = ModelRacer {
        opts: budgets.model,
    };
    let mut lanes: Vec<&dyn Racer> = Vec::with_capacity(3);
    if let Some(f) = &fastpath {
        lanes.push(f);
    }
    lanes.push(&derivation);
    lanes.push(&model);
    let mut runs = run_portfolio(np, &lanes, cancel)?;
    let winner = portfolio_winner(&mut runs);
    // Lane indices shift by one when the fastpath lane is in the
    // portfolio; the classic two always sit last.
    let d = runs.len() - 2;
    if fastpath.is_some() {
        timings.fastpath = runs[0].elapsed;
        spend.fastpath_checks = runs[0].units;
    }
    timings.derivation = runs[d].elapsed;
    timings.model = runs[d + 1].elapsed;
    spend.derivation_states = usize::try_from(runs[d].units).unwrap_or(usize::MAX);
    spend.model_nodes = runs[d + 1].units;
    Ok(match winner {
        Some((_, LaneFound::Fast(verdict))) => {
            spend.derivation_truncated = true;
            spend.model_truncated = true;
            SideResult::Fast(verdict)
        }
        Some((_, LaneFound::Derivation(derivation))) => {
            spend.model_truncated = true;
            SideResult::Derivation(derivation)
        }
        Some((_, LaneFound::Model(g, interp))) => {
            spend.derivation_truncated = true;
            SideResult::Model(g, interp)
        }
        None => SideResult::Neither {
            derivation_states: spend.derivation_states,
            model_nodes: spend.model_nodes,
        },
    })
}

/// Runs the full pipeline on a raw presentation, racing the two sides
/// ([`SolveMode::Racing`]). Routed through an ephemeral
/// [`crate::engine::Engine`] so the one-shot path and the long-lived
/// service path are the same code.
///
/// # Errors
///
/// Fails when normalization, reduction, certificate compilation, or
/// certificate verification fails; an inconclusive search is **not** an
/// error (it is reported as [`PipelineOutcome::Unknown`]).
pub fn solve(p: &Presentation, budgets: &Budgets) -> Result<PipelineRun> {
    solve_with(p, budgets, SolveMode::default())
}

/// Runs the full pipeline on a raw presentation under an explicit
/// [`SolveMode`]. Both modes return the same verdict (enforced by the
/// differential property tests); racing wins wall-clock time whenever the
/// refutable side settles first.
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with(p: &Presentation, budgets: &Budgets, mode: SolveMode) -> Result<PipelineRun> {
    solve_with_opts(
        p,
        budgets,
        SolveOptions {
            mode,
            ..SolveOptions::default()
        },
    )
}

/// Runs the full pipeline under explicit [`SolveOptions`] (scheduling mode
/// plus homomorphism strategy). Neither option may change a verdict — the
/// differential tests pin that — so they exist for performance and for
/// oracle-vs-planner debugging runs (`tdq wp --strategy naive`).
///
/// This is a thin wrapper: it builds a single-request
/// [`crate::engine::Engine`] and calls [`crate::engine::Engine::run_full`],
/// so every solve — one-shot or served — executes the same engine code.
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with_opts(
    p: &Presentation,
    budgets: &Budgets,
    opts: SolveOptions,
) -> Result<PipelineRun> {
    crate::engine::Engine::with_config(crate::engine::EngineConfig {
        budgets: *budgets,
        opts,
        ..crate::engine::EngineConfig::default()
    })
    .run_full(p)
}

/// The raw pipeline executor: normalize → reduce → search (under the given
/// scheduling mode, observing `cancel`) → compile/verify the certificate.
///
/// `cancel` is the request's cooperative-cancellation ticket: under
/// [`SolveMode::Racing`] the winning side flips it to stop the loser, and
/// an external holder (the engine's shutdown path) may flip it at any time
/// to wind the whole request down — the run then reports
/// [`PipelineOutcome::Unknown`] with the spend accumulated so far. Callers
/// that want plain one-shot semantics pass a fresh token.
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with_opts_on(
    p: &Presentation,
    budgets: &Budgets,
    opts: SolveOptions,
    cancel: &Cancellation,
) -> Result<PipelineRun> {
    let t_total = Instant::now();
    let mut timings = PhaseTimings::default();

    let t = Instant::now();
    let saturated = p.zero_saturated();
    let normalized = normalize(&saturated)?;
    timings.normalize = t.elapsed();

    let t = Instant::now();
    let system = build_system(&normalized.presentation)?;
    timings.reduce = t.elapsed();

    solve_prepared(normalized, system, budgets, opts, cancel, timings, t_total)
}

/// The pipeline tail: search (under the given scheduling mode, observing
/// `cancel`) → compile/verify the certificate, over an already normalized
/// and reduced instance. The engine calls this directly so the reduction
/// system built during canonical-key extraction is solved, not rebuilt.
///
/// Stage 0 is the axiom-driven fast path: under [`SolveMode::Racing`] with
/// [`FastPath::Auto`], [`fastpath::prescreen`] runs synchronously before
/// any search thread spawns. A settled verdict returns
/// [`PipelineOutcome::FastSettled`] with **zero** chase/model spend (both
/// searches are reported truncated: they never started). The sequential
/// mode skips the prescreen entirely so it stays the pure oracle the
/// differential tests compare against.
pub(crate) fn solve_prepared(
    normalized: Normalized,
    system: ReductionSystem,
    budgets: &Budgets,
    opts: SolveOptions,
    cancel: &Cancellation,
    mut timings: PhaseTimings,
    t_total: Instant,
) -> Result<PipelineRun> {
    let mode = opts.mode;
    let np = &normalized.presentation;
    let fast = match (mode, opts.fastpath) {
        (SolveMode::Racing, FastPath::Auto) => Some(FastBudget::default()),
        _ => None,
    };

    let mut spend = SpendReport::default();
    let mut lane_budget = fast;
    if let Some(budget) = fast {
        let t = Instant::now();
        let pre = fastpath::prescreen(&system, &budget)?;
        timings.fastpath = t.elapsed();
        spend.fastpath_checks = pre.checks;
        spend.fastpath_truncated = pre.truncated;
        // A bail is deterministic: the portfolio's fastpath lane would
        // re-run the exact same prescreen to the exact same bail, so it
        // is dropped from this solve — the lane exists for direct
        // [`run_portfolio`] composers that skipped stage 0. The recorded
        // stage-0 spend stands.
        lane_budget = None;
        if let Some(verdict) = pre.verdict {
            debug_assert!(
                fastpath::replay(&system, &verdict).unwrap_or(false),
                "fastpath reason failed to replay: {verdict:?}"
            );
            // Neither search ever started; their zero spend is a trivial
            // truncation, mirroring the racing report's labelling.
            spend.derivation_truncated = true;
            spend.model_truncated = true;
            timings.total = t_total.elapsed();
            return Ok(PipelineRun {
                normalized,
                system,
                outcome: PipelineOutcome::FastSettled { verdict },
                timings,
                spend,
            });
        }
    }

    let side = match mode {
        SolveMode::Sequential => search_sequential(np, budgets, &mut timings, &mut spend, cancel)?,
        SolveMode::Racing => {
            search_racing(np, budgets, lane_budget, &mut timings, &mut spend, cancel)?
        }
    };

    let t = Instant::now();
    let outcome = match side {
        SideResult::Fast(verdict) => {
            debug_assert!(
                fastpath::replay(&system, &verdict).unwrap_or(false),
                "fastpath reason failed to replay: {verdict:?}"
            );
            PipelineOutcome::FastSettled { verdict }
        }
        SideResult::Derivation(derivation) => {
            let proof = prove_part_a_with(&system, np, &derivation, opts.strategy)?;
            PipelineOutcome::Implied { derivation, proof }
        }
        SideResult::Model(g, interp) => {
            let model = build_counter_model(&system, np, &g, &interp)?;
            let report = verify_counter_model_with(opts.strategy, &system, &model);
            debug_assert!(report.ok(), "{report:?}");
            PipelineOutcome::Refuted {
                model: Box::new(model),
                report,
            }
        }
        SideResult::Neither {
            derivation_states,
            model_nodes,
        } => PipelineOutcome::Unknown {
            derivation_states,
            model_nodes,
        },
    };
    if !matches!(outcome, PipelineOutcome::Unknown { .. }) {
        timings.certificate = t.elapsed();
    }
    timings.total = t_total.elapsed();

    Ok(PipelineRun {
        normalized,
        system,
        outcome,
        timings,
        spend,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_semigroup::alphabet::Alphabet;
    use td_semigroup::equation::Equation;

    fn derivable() -> Presentation {
        let alphabet = Alphabet::standard(2);
        let eqs = vec![
            Equation::parse("A1 A1 = A0", &alphabet).unwrap(),
            Equation::parse("A1 A1 = 0", &alphabet).unwrap(),
        ];
        Presentation::new(alphabet, eqs).unwrap()
    }

    fn refutable() -> Presentation {
        Presentation::new(Alphabet::standard(1), vec![]).unwrap()
    }

    #[test]
    fn derivable_instances_come_out_implied() {
        let run = solve(&derivable(), &Budgets::default()).unwrap();
        match &run.outcome {
            PipelineOutcome::Implied { derivation, proof } => {
                assert!(!derivation.is_empty());
                proof.verify(&run.system).unwrap();
            }
            other => panic!("expected Implied, got {other:?}"),
        }
        assert!(run.outcome.is_implied());
    }

    #[test]
    fn refutable_instances_come_out_refuted() {
        // Default (racing) path: the fast-path refutation probe settles
        // the empty presentation before either search starts, with a
        // replayable reason.
        let run = solve(&refutable(), &Budgets::default()).unwrap();
        match &run.outcome {
            PipelineOutcome::FastSettled { verdict } => {
                assert!(!verdict.is_implied());
                assert!(crate::fastpath::replay(&run.system, verdict).unwrap());
            }
            other => panic!("expected FastSettled, got {other:?}"),
        }
        assert!(run.outcome.is_refuted());

        // With the fast path off, the full model path still produces the
        // part (B) certificate.
        let opts = SolveOptions {
            fastpath: FastPath::Off,
            ..SolveOptions::default()
        };
        let run = solve_with_opts(&refutable(), &Budgets::default(), opts).unwrap();
        match &run.outcome {
            PipelineOutcome::Refuted { model, report } => {
                assert!(report.ok());
                assert!(model.len() >= 3);
            }
            other => panic!("expected Refuted, got {other:?}"),
        }
        assert!(run.outcome.is_refuted());
    }

    #[test]
    fn unnormalized_input_is_normalized_in_pipeline() {
        // A long equation: the pipeline normalizes before reducing.
        let alphabet = Alphabet::new(["A0", "B", "C", "0"], "A0", "0").unwrap();
        let eq = Equation::parse("B C B = A0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![eq]).unwrap();
        let run = solve(&p, &Budgets::default()).unwrap();
        // Fresh symbols mean more attributes: n grows beyond 4.
        assert!(run.system.attrs.alphabet().len() > 4);
        assert!(run.system.attrs.arity() == 2 * run.system.attrs.alphabet().len() + 2);
        // This instance is refutable (nothing forces A0 = 0: interpret all
        // long products as 0 but A0 nonzero? B C B = A0 forces A0 to be a
        // product — in a null semigroup that is 0, so the null shortcut
        // fails; the model search may or may not find a model. Accept any
        // verdict except Implied.
        assert!(!run.outcome.is_implied());
    }

    /// Regression for the spent-budget reports: the winner's spend must be
    /// exact (identical across solve modes), the loser's labelled
    /// truncated, and `Unknown` reports must coincide across modes.
    #[test]
    fn spend_reports_are_deterministic_across_modes() {
        // Won race, derivation side: winner's states exact in both modes.
        let p = derivable();
        let seq = solve_with(&p, &Budgets::default(), SolveMode::Sequential).unwrap();
        let raced = solve_with(&p, &Budgets::default(), SolveMode::Racing).unwrap();
        assert!(seq.outcome.is_implied() && raced.outcome.is_implied());
        assert!(!seq.spend.derivation_truncated);
        assert!(!raced.spend.derivation_truncated);
        assert_eq!(
            seq.spend.derivation_states, raced.spend.derivation_states,
            "the winning side is never cancelled, so its spend is exact"
        );
        assert!(seq.spend.model_truncated, "sequential loser never ran");
        assert_eq!(seq.spend.model_nodes, 0);
        assert!(
            raced.spend.model_truncated,
            "the racing loser's spend is only a lower bound"
        );

        // Refuted side. Under the default fast path, racing settles via
        // the refutation probe before either search starts: exact,
        // deterministic prescreen spend and zero search spend (both
        // searches trivially truncated — they never ran). Sequential is
        // the pure oracle: it never consults the fast path.
        let p = refutable();
        let seq = solve_with(&p, &Budgets::default(), SolveMode::Sequential).unwrap();
        let raced = solve_with(&p, &Budgets::default(), SolveMode::Racing).unwrap();
        assert!(seq.outcome.is_refuted() && raced.outcome.is_refuted());
        assert!(matches!(raced.outcome, PipelineOutcome::FastSettled { .. }));
        assert!(raced.spend.fastpath_checks > 0);
        assert!(!raced.spend.fastpath_truncated);
        assert_eq!(raced.spend.derivation_states, 0);
        assert_eq!(raced.spend.model_nodes, 0);
        assert!(raced.spend.derivation_truncated && raced.spend.model_truncated);
        assert_eq!(seq.spend.fastpath_checks, 0, "the oracle never prescreens");
        assert!(!seq.spend.model_truncated);
        assert!(
            !seq.spend.derivation_truncated,
            "sequentially the derivation side ran to exhaustion first"
        );

        // Racing with the fast path off reproduces the classic two-lane
        // race: model side wins via the analytic shortcut (0 nodes, exact).
        let off = solve_with_opts(
            &p,
            &Budgets::default(),
            SolveOptions {
                mode: SolveMode::Racing,
                fastpath: FastPath::Off,
                ..SolveOptions::default()
            },
        )
        .unwrap();
        assert!(off.outcome.is_refuted());
        assert!(!off.spend.model_truncated);
        assert_eq!(seq.spend.model_nodes, off.spend.model_nodes);
        assert!(off.spend.derivation_truncated);

        // Unknown: no side is cancelled, both spends exact and identical
        // across modes.
        // `A0 A1 = A0` defeats the null-semigroup shortcut (a product
        // equals a nonzero symbol), words can only grow (never reaching
        // `0`), and the tiny node budget stops the model search mid-table.
        let alphabet = Alphabet::standard(2);
        let grow = Equation::parse("A0 A1 = A0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![grow]).unwrap();
        let tight = Budgets {
            derivation: td_semigroup::derivation::SearchBudget {
                max_word_len: 6,
                max_states: 50,
            },
            model: ModelSearchOptions {
                min_size: 3,
                max_size: 3,
                max_nodes: 5,
            },
            chase: ChaseBudget::default(),
        };
        let seq = solve_with(&p, &tight, SolveMode::Sequential).unwrap();
        let raced = solve_with(&p, &tight, SolveMode::Racing).unwrap();
        let unknown = |run: &PipelineRun| match run.outcome {
            PipelineOutcome::Unknown {
                derivation_states,
                model_nodes,
            } => (derivation_states, model_nodes),
            ref other => panic!("expected Unknown, got {other:?}"),
        };
        let (ds, mn) = unknown(&seq);
        assert_eq!(unknown(&raced), (ds, mn));
        for run in [&seq, &raced] {
            assert_eq!(run.spend.derivation_states, ds);
            assert_eq!(run.spend.model_nodes, mn);
            assert!(!run.spend.derivation_truncated);
            assert!(!run.spend.model_truncated);
        }
    }

    /// Portfolio determinism regression: replaying the same race must
    /// yield the same winner and the same spend, run after run — winner
    /// selection is by lane index, never by wall-clock finish order.
    #[test]
    fn portfolio_replays_deterministically() {
        for p in [derivable(), refutable()] {
            let reference = solve(&p, &Budgets::default()).unwrap();
            for _ in 0..5 {
                let replay = solve(&p, &Budgets::default()).unwrap();
                assert_eq!(
                    std::mem::discriminant(&replay.outcome),
                    std::mem::discriminant(&reference.outcome),
                    "winner changed on replay"
                );
                // The winning lane's spend is exact, hence identical on
                // every replay; compare through the per-lane view.
                let (reference_lanes, replay_lanes) =
                    (reference.spend.lanes(), replay.spend.lanes());
                for (a, b) in reference_lanes.iter().zip(replay_lanes.iter()) {
                    assert_eq!(a.lane, b.lane);
                    assert_eq!(a.truncated, b.truncated, "lane {} label flapped", a.lane);
                    if !a.truncated {
                        assert_eq!(a.units, b.units, "exact lane {} spend flapped", a.lane);
                    }
                }
            }
        }
    }

    /// The N-way hook: a budget-laddered portfolio with two derivation
    /// rungs (starved and full) plus the model lane. The starved rung
    /// cannot find the certificate, the full rung can — and the
    /// deterministic winner is the lowest-indexed lane that found one,
    /// independent of scheduling.
    #[test]
    fn laddered_three_lane_portfolio_picks_lowest_winning_lane() {
        let p = derivable();
        let saturated = p.zero_saturated();
        let normalized = normalize(&saturated).unwrap();
        let np = &normalized.presentation;

        let starved = DerivationRacer {
            budget: td_semigroup::derivation::SearchBudget {
                max_word_len: 1,
                max_states: 1,
            },
        };
        let full = DerivationRacer {
            budget: SearchBudget::default(),
        };
        let model = ModelRacer {
            opts: ModelSearchOptions::default(),
        };
        for _ in 0..5 {
            let cancel = Cancellation::new();
            let mut runs = run_portfolio(np, &[&starved, &full, &model], &cancel).unwrap();
            assert_eq!(runs.len(), 3);
            let (winner_lane, found) = portfolio_winner(&mut runs).expect("the full rung must win");
            assert_eq!(winner_lane, 1, "the starved rung cannot have won");
            assert!(matches!(found, LaneFound::Derivation(_)));
            assert!(cancel.is_cancelled(), "the winner flips the shared token");
        }
    }

    /// The per-lane spend view mirrors the flat report field for field
    /// and keeps the runner's lane order.
    #[test]
    fn lane_spend_view_matches_flat_report() {
        let run = solve(&derivable(), &Budgets::default()).unwrap();
        let lanes = run.spend.lanes();
        let [fastpath, derivation, model] = &lanes[..] else {
            panic!("three lanes, in runner order: {lanes:?}");
        };
        assert_eq!(fastpath.lane, "fastpath");
        assert_eq!(fastpath.units, run.spend.fastpath_checks);
        assert_eq!(fastpath.truncated, run.spend.fastpath_truncated);
        assert_eq!(FastPathRacer::default().label(), fastpath.lane);
        assert_eq!(derivation.lane, "derivation");
        assert_eq!(derivation.units, run.spend.derivation_states as u64);
        assert_eq!(derivation.truncated, run.spend.derivation_truncated);
        assert_eq!(model.lane, "model");
        assert_eq!(model.units, run.spend.model_nodes);
        assert_eq!(model.truncated, run.spend.model_truncated);
        // Labels agree with the racers that produced the lanes.
        assert_eq!(
            DerivationRacer {
                budget: SearchBudget::default()
            }
            .label(),
            derivation.lane
        );
        assert_eq!(
            ModelRacer {
                opts: ModelSearchOptions::default()
            }
            .label(),
            model.lane
        );
    }

    /// An externally pre-cancelled token makes every lane back out:
    /// no winner, and the solve honestly reports `Unknown`.
    #[test]
    fn pre_cancelled_portfolio_has_no_winner() {
        let p = derivable();
        let cancel = Cancellation::new();
        cancel.cancel();
        let run =
            solve_with_opts_on(&p, &Budgets::default(), SolveOptions::default(), &cancel).unwrap();
        assert!(
            matches!(run.outcome, PipelineOutcome::Unknown { .. }),
            "{:?}",
            run.outcome
        );
    }

    #[test]
    fn goal_already_zero_is_implied_trivially() {
        // Presentation containing A0 = 0 directly: aliasing makes the goal
        // hold with a zero-step derivation... after aliasing A0 *is* 0, so
        // the goal derivation is trivial.
        let alphabet = Alphabet::standard(1);
        let eq = Equation::parse("A0 = 0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![eq]).unwrap();
        let run = solve(&p, &Budgets::default()).unwrap();
        assert!(run.outcome.is_implied(), "{:?}", run.outcome);
    }
}
