//! The end-to-end pipeline: word problem → reduction → verdict.
//!
//! [`solve`] ties everything together:
//!
//! 1. zero-saturate and [`td_semigroup::normalize::normalize`] the input
//!    presentation;
//! 2. [`build_system`] — the dependencies `D` and goal `D₀`;
//! 3. try the **derivable** side: search for a derivation `A₀ ⇒* 0`; on
//!    success, compile it into a guided chase proof (part (A)) —
//!    `D ⊨ D₀`, certified;
//! 4. try the **refutable** side: look for a finite cancellation
//!    countermodel (analytic families first, then backtracking search); on
//!    success, build the part (B) database — `D ⊭ D₀` (finitely),
//!    certified;
//! 5. otherwise report `Unknown` with the spent budgets — the honest third
//!    verdict mandated by undecidability.

use td_core::chase::ChaseBudget;
use td_semigroup::derivation::{search_goal_derivation, Derivation, SearchBudget, SearchResult};
use td_semigroup::model_search::{find_counter_model, ModelSearchOptions, ModelSearchResult};
use td_semigroup::normalize::{normalize, Normalized};
use td_semigroup::presentation::Presentation;

use crate::deps::{build_system, ReductionSystem};
use crate::error::Result;
use crate::part_a::{prove_part_a, PartAProof};
use crate::part_b::{build_counter_model, CounterModel};
use crate::verify::{verify_counter_model, PartBReport};

/// Budgets for the three searches involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budgets {
    /// Derivation search budget.
    pub derivation: SearchBudget,
    /// Finite-model search options.
    pub model: ModelSearchOptions,
    /// Chase budget (used only by unguided cross-checks; part (A) itself is
    /// guided and needs no budget).
    pub chase: ChaseBudget,
}

/// The pipeline's verdict.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // Implied carries the full certificates by design
pub enum PipelineOutcome {
    /// `A₀ = 0` is derivable, hence `D ⊨ D₀` — with both certificates.
    Implied {
        /// The word-problem derivation found.
        derivation: Derivation,
        /// The part (A) chase proof compiled from it.
        proof: PartAProof,
    },
    /// A finite cancellation countermodel exists, hence `D ⊭ D₀` over
    /// finite databases — with the certificate database and its report.
    Refuted {
        /// The part (B) countermodel.
        model: Box<CounterModel>,
        /// The independent verification report (always `ok()`).
        report: PartBReport,
    },
    /// Neither side succeeded within the budgets.
    Unknown {
        /// Words visited by the derivation search.
        derivation_states: usize,
        /// Nodes visited by the model search.
        model_nodes: u64,
    },
}

impl PipelineOutcome {
    /// `true` for [`PipelineOutcome::Implied`].
    pub fn is_implied(&self) -> bool {
        matches!(self, PipelineOutcome::Implied { .. })
    }

    /// `true` for [`PipelineOutcome::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, PipelineOutcome::Refuted { .. })
    }
}

/// Everything the pipeline produced: the normalization, the reduction
/// system, and the verdict.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The normalized presentation and its bookkeeping.
    pub normalized: Normalized,
    /// The reduction system built from it.
    pub system: ReductionSystem,
    /// The verdict.
    pub outcome: PipelineOutcome,
}

/// Runs the full pipeline on a raw presentation.
pub fn solve(p: &Presentation, budgets: &Budgets) -> Result<PipelineRun> {
    let saturated = p.zero_saturated();
    let normalized = normalize(&saturated)?;
    let np = &normalized.presentation;
    let system = build_system(np)?;

    // Side 1: derivability.
    let derivation_states = match search_goal_derivation(np, &budgets.derivation) {
        SearchResult::Found(derivation) => {
            let proof = prove_part_a(&system, np, &derivation)?;
            return Ok(PipelineRun {
                normalized,
                system,
                outcome: PipelineOutcome::Implied { derivation, proof },
            });
        }
        SearchResult::ExhaustedWithinBound { states }
        | SearchResult::BudgetExhausted { states } => states,
    };

    // Side 2: finite countermodel. Try the analytic null-semigroup shortcut
    // first, then the backtracking search.
    let model_nodes;
    let found = match td_semigroup::families::null_counter_model(np) {
        Some((g, interp)) => {
            model_nodes = 0;
            Some((g, interp))
        }
        None => match find_counter_model(np, &budgets.model)? {
            ModelSearchResult::Found(g, interp) => {
                model_nodes = 0;
                Some((g, interp))
            }
            ModelSearchResult::ExhaustedSizes { nodes }
            | ModelSearchResult::BudgetExhausted { nodes } => {
                model_nodes = nodes;
                None
            }
        },
    };
    if let Some((g, interp)) = found {
        let model = build_counter_model(&system, np, &g, &interp)?;
        let report = verify_counter_model(&system, &model);
        debug_assert!(report.ok(), "{report:?}");
        return Ok(PipelineRun {
            normalized,
            system,
            outcome: PipelineOutcome::Refuted {
                model: Box::new(model),
                report,
            },
        });
    }

    Ok(PipelineRun {
        normalized,
        system,
        outcome: PipelineOutcome::Unknown {
            derivation_states,
            model_nodes,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_semigroup::alphabet::Alphabet;
    use td_semigroup::equation::Equation;

    fn derivable() -> Presentation {
        let alphabet = Alphabet::standard(2);
        let eqs = vec![
            Equation::parse("A1 A1 = A0", &alphabet).unwrap(),
            Equation::parse("A1 A1 = 0", &alphabet).unwrap(),
        ];
        Presentation::new(alphabet, eqs).unwrap()
    }

    fn refutable() -> Presentation {
        Presentation::new(Alphabet::standard(1), vec![]).unwrap()
    }

    #[test]
    fn derivable_instances_come_out_implied() {
        let run = solve(&derivable(), &Budgets::default()).unwrap();
        match &run.outcome {
            PipelineOutcome::Implied { derivation, proof } => {
                assert!(!derivation.is_empty());
                proof.verify(&run.system).unwrap();
            }
            other => panic!("expected Implied, got {other:?}"),
        }
        assert!(run.outcome.is_implied());
    }

    #[test]
    fn refutable_instances_come_out_refuted() {
        let run = solve(&refutable(), &Budgets::default()).unwrap();
        match &run.outcome {
            PipelineOutcome::Refuted { model, report } => {
                assert!(report.ok());
                assert!(model.len() >= 3);
            }
            other => panic!("expected Refuted, got {other:?}"),
        }
        assert!(run.outcome.is_refuted());
    }

    #[test]
    fn unnormalized_input_is_normalized_in_pipeline() {
        // A long equation: the pipeline normalizes before reducing.
        let alphabet = Alphabet::new(["A0", "B", "C", "0"], "A0", "0").unwrap();
        let eq = Equation::parse("B C B = A0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![eq]).unwrap();
        let run = solve(&p, &Budgets::default()).unwrap();
        // Fresh symbols mean more attributes: n grows beyond 4.
        assert!(run.system.attrs.alphabet().len() > 4);
        assert!(run.system.attrs.arity() == 2 * run.system.attrs.alphabet().len() + 2);
        // This instance is refutable (nothing forces A0 = 0: interpret all
        // long products as 0 but A0 nonzero? B C B = A0 forces A0 to be a
        // product — in a null semigroup that is 0, so the null shortcut
        // fails; the model search may or may not find a model. Accept any
        // verdict except Implied.
        assert!(!run.outcome.is_implied());
    }

    #[test]
    fn goal_already_zero_is_implied_trivially() {
        // Presentation containing A0 = 0 directly: aliasing makes the goal
        // hold with a zero-step derivation... after aliasing A0 *is* 0, so
        // the goal derivation is trivial.
        let alphabet = Alphabet::standard(1);
        let eq = Equation::parse("A0 = 0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![eq]).unwrap();
        let run = solve(&p, &Budgets::default()).unwrap();
        assert!(run.outcome.is_implied(), "{:?}", run.outcome);
    }
}
