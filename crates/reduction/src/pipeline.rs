//! The end-to-end pipeline: word problem → reduction → verdict.
//!
//! [`solve`] ties everything together:
//!
//! 1. zero-saturate and [`td_semigroup::normalize::normalize`] the input
//!    presentation;
//! 2. [`build_system`] — the dependencies `D` and goal `D₀`;
//! 3. run the two certificate searches:
//!    * the **derivable** side — search for a derivation `A₀ ⇒* 0`; on
//!      success, compile it into a guided chase proof (part (A)) —
//!      `D ⊨ D₀`, certified;
//!    * the **refutable** side — look for a finite cancellation
//!      countermodel (analytic families first, then backtracking search);
//!      on success, build the part (B) database — `D ⊭ D₀` (finitely),
//!      certified;
//! 4. otherwise report `Unknown` with the spent budgets — the honest third
//!    verdict mandated by undecidability.
//!
//! # Racing the two sides
//!
//! The two searches certify mutually exclusive answers (a derivation makes
//! `A₀ = 0` hold in *every* model, so no countermodel can exist), so
//! nothing is learned by running the loser to completion. Under
//! [`SolveMode::Racing`] — the default for [`solve`] — the two sides run
//! on scoped threads sharing an early-exit flag: whichever finds its
//! certificate first flips the flag and the other side backs out at its
//! next poll ([`td_semigroup::derivation::search_derivation_cancellable`],
//! [`td_semigroup::model_search::find_counter_model_cancellable`]).
//! [`SolveMode::Sequential`] preserves the historical
//! derivation-then-model order on the calling thread; the differential
//! property tests assert both modes return the same verdict.
//!
//! Every run also records wall-clock [`PhaseTimings`], which the `tdq`
//! binary surfaces under `--timings`.

use std::time::{Duration, Instant};

use td_core::budget::Cancellation;
use td_core::chase::ChaseBudget;
use td_core::homomorphism::MatchStrategy;
use td_semigroup::cayley::{FiniteSemigroup, Interpretation};
use td_semigroup::derivation::{
    search_goal_derivation_tracked, Derivation, SearchBudget, SearchResult,
};
use td_semigroup::model_search::{
    find_counter_model_tracked, ModelSearchOptions, ModelSearchResult,
};
use td_semigroup::normalize::{normalize, Normalized};
use td_semigroup::presentation::Presentation;

pub use crate::batch::{solve_batch, BatchRun, BatchStats, BatchVerdict};
use crate::deps::{build_system, ReductionSystem};
use crate::error::Result;
use crate::part_a::{prove_part_a_with, PartAProof};
use crate::part_b::{build_counter_model, CounterModel};
use crate::verify::{verify_counter_model_with, PartBReport};

/// Budgets for the three searches involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budgets {
    /// Derivation search budget.
    pub derivation: SearchBudget,
    /// Finite-model search options.
    pub model: ModelSearchOptions,
    /// Chase budget (used only by unguided cross-checks; part (A) itself is
    /// guided and needs no budget).
    pub chase: ChaseBudget,
}

/// Scheduling and matching choices for one [`solve_with_opts`] call,
/// bundled so new knobs do not keep widening the signatures. The default
/// races the two sides and matches with the indexed planner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveOptions {
    /// How the two certificate searches are scheduled.
    pub mode: SolveMode,
    /// The homomorphism matcher used by the database-layer checks
    /// (certificate verification); `Naive` is the differential oracle
    /// surfaced on the CLI as `--strategy naive`.
    pub strategy: MatchStrategy,
}

/// How [`solve_with`] schedules the two certificate searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveMode {
    /// Derivation search first, model search only if it fails — on the
    /// calling thread. Kept as the deterministic oracle for the
    /// differential tests.
    Sequential,
    /// Both searches on scoped threads with a shared early-exit flag:
    /// whichever certificate is found first wins and cancels the loser.
    #[default]
    Racing,
}

/// Wall-clock durations of the pipeline phases, for `tdq --timings` and
/// performance triage. Under [`SolveMode::Racing`] the derivation and
/// model times overlap, so they can sum to more than `total`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Zero-saturation plus normalization to `(2,1)`/`(1,1)` equations.
    pub normalize: Duration,
    /// Building the reduction system (attributes, `D`, `D₀`).
    pub reduce: Duration,
    /// Derivation search (side 1), including any cancelled prefix.
    pub derivation: Duration,
    /// Finite-model search (side 2), including any cancelled prefix.
    pub model: Duration,
    /// Compiling and verifying the winning certificate (part (A) proof or
    /// part (B) countermodel); zero for `Unknown`.
    pub certificate: Duration,
    /// End-to-end wall-clock time of [`solve_with`].
    pub total: Duration,
}

/// How much of each search budget a [`solve_with`] call actually spent —
/// the deterministic companion to [`PhaseTimings`].
///
/// The two sides certify mutually exclusive answers, so exactly one of
/// them can win; its spend is **exact** (identical under
/// [`SolveMode::Sequential`] and [`SolveMode::Racing`], since the winning
/// side is never cancelled). The losing side's spend depends on *when* the
/// race was decided — under racing it stops at its next cancellation poll
/// (per BFS pop for the derivation search, per interpretation and per 1024
/// DFS nodes for the model search) — so it is always labelled
/// `truncated`: a lower bound, not a reproducible count. The label is
/// deliberately *not* derived from the tracked searches' `cancelled`
/// flags: whether the loser happened to finish naturally before observing
/// the flag is a scheduling accident, and keying the label on it would
/// make the report nondeterministic — the exact defect this type exists
/// to fix. On an `Unknown`
/// outcome neither side was cancelled, both spends are exact, and the
/// report coincides across solve modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpendReport {
    /// Distinct words the derivation search visited.
    pub derivation_states: usize,
    /// `true` when the derivation search did not run to its own natural
    /// end (it lost the race and was cancelled, or — sequentially — never
    /// needed to run past a win): `derivation_states` is then only a lower
    /// bound.
    pub derivation_truncated: bool,
    /// Nodes the finite-model search visited.
    pub model_nodes: u64,
    /// `true` when the model search did not run to its own natural end
    /// (lost the race, or was skipped after a sequential win):
    /// `model_nodes` is then only a lower bound.
    pub model_truncated: bool,
}

/// The pipeline's verdict.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // Implied carries the full certificates by design
pub enum PipelineOutcome {
    /// `A₀ = 0` is derivable, hence `D ⊨ D₀` — with both certificates.
    Implied {
        /// The word-problem derivation found.
        derivation: Derivation,
        /// The part (A) chase proof compiled from it.
        proof: PartAProof,
    },
    /// A finite cancellation countermodel exists, hence `D ⊭ D₀` over
    /// finite databases — with the certificate database and its report.
    Refuted {
        /// The part (B) countermodel.
        model: Box<CounterModel>,
        /// The independent verification report (always `ok()`).
        report: PartBReport,
    },
    /// Neither side succeeded within the budgets.
    Unknown {
        /// Words visited by the derivation search.
        derivation_states: usize,
        /// Nodes visited by the model search.
        model_nodes: u64,
    },
}

impl PipelineOutcome {
    /// `true` for [`PipelineOutcome::Implied`].
    pub fn is_implied(&self) -> bool {
        matches!(self, PipelineOutcome::Implied { .. })
    }

    /// `true` for [`PipelineOutcome::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, PipelineOutcome::Refuted { .. })
    }
}

/// Everything the pipeline produced: the normalization, the reduction
/// system, the verdict, and the per-phase timings.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The normalized presentation and its bookkeeping.
    pub normalized: Normalized,
    /// The reduction system built from it.
    pub system: ReductionSystem,
    /// The verdict.
    pub outcome: PipelineOutcome,
    /// Wall-clock phase timings of this run.
    pub timings: PhaseTimings,
    /// Deterministic spent-budget accounting for the two searches.
    pub spend: SpendReport,
}

/// What one side of the race produced, before certificate compilation.
enum SideResult {
    Derivation(Derivation),
    Model(FiniteSemigroup, Interpretation),
    Neither {
        derivation_states: usize,
        model_nodes: u64,
    },
}

/// What the model side produced: the model (if any) and the nodes visited
/// (exact when the side ran to its natural end, a lower bound when it was
/// cancelled mid-search).
struct ModelSide {
    found: Option<(FiniteSemigroup, Interpretation)>,
    nodes: u64,
}

/// Runs the model side: analytic null-semigroup shortcut first, then the
/// cancellable backtracking search.
fn model_side(
    np: &Presentation,
    opts: &ModelSearchOptions,
    cancel: &Cancellation,
) -> Result<ModelSide> {
    if let Some((g, interp)) = td_semigroup::families::null_counter_model(np) {
        return Ok(ModelSide {
            found: Some((g, interp)),
            nodes: 0,
        });
    }
    let tracked = find_counter_model_tracked(np, opts, cancel)?;
    let found = match tracked.result {
        ModelSearchResult::Found(g, interp) => Some((g, interp)),
        ModelSearchResult::ExhaustedSizes { .. } | ModelSearchResult::BudgetExhausted { .. } => {
            None
        }
    };
    Ok(ModelSide {
        found,
        nodes: tracked.nodes,
    })
}

/// Runs the two certificate searches sequentially (derivation first).
/// `cancel` is an *external* stop request (engine shutdown); it is never
/// flipped from inside this function.
fn search_sequential(
    np: &Presentation,
    budgets: &Budgets,
    timings: &mut PhaseTimings,
    spend: &mut SpendReport,
    cancel: &Cancellation,
) -> Result<SideResult> {
    let t = Instant::now();
    let deriv = search_goal_derivation_tracked(np, &budgets.derivation, cancel);
    timings.derivation = t.elapsed();
    spend.derivation_states = deriv.states;
    if let SearchResult::Found(derivation) = deriv.result {
        // The model search never ran: its zero spend is a trivial
        // truncation, mirroring the racing report's labelling.
        spend.model_truncated = true;
        return Ok(SideResult::Derivation(derivation));
    }

    let t = Instant::now();
    let side = model_side(np, &budgets.model, cancel)?;
    timings.model = t.elapsed();
    spend.model_nodes = side.nodes;
    Ok(match side.found {
        Some((g, interp)) => SideResult::Model(g, interp),
        None => SideResult::Neither {
            derivation_states: deriv.states,
            model_nodes: side.nodes,
        },
    })
}

/// Races the two certificate searches on scoped threads. The first side to
/// find its certificate flips the shared flag; the other side backs out at
/// its next cancellation poll. The two certificates are mutually exclusive
/// (a derivation rules out every countermodel), so the winner is
/// well-defined; if both sides exhaust, neither is cancelled and the spent
/// budgets are exactly the sequential ones. The winner's spend is exact;
/// the loser's is labelled truncated in the [`SpendReport`] — its precise
/// value depends on when the cancellation poll fired and must be read as a
/// lower bound.
///
/// `cancel` is the shared race token. Normally it starts fresh and is
/// flipped by the winning side; an *external* holder (the engine's
/// shutdown path) may also flip it, in which case both sides back out at
/// their next poll and the run comes back `Unknown`.
fn search_racing(
    np: &Presentation,
    budgets: &Budgets,
    timings: &mut PhaseTimings,
    spend: &mut SpendReport,
    cancel: &Cancellation,
) -> Result<SideResult> {
    let (deriv, model) = std::thread::scope(|s| {
        let deriv_handle = s.spawn(|| {
            let t = Instant::now();
            let r = search_goal_derivation_tracked(np, &budgets.derivation, cancel);
            if matches!(r.result, SearchResult::Found(_)) {
                cancel.cancel();
            }
            (r, t.elapsed())
        });
        let model_handle = s.spawn(|| {
            let t = Instant::now();
            let r = model_side(np, &budgets.model, cancel);
            if matches!(r, Ok(ModelSide { found: Some(_), .. })) {
                cancel.cancel();
            }
            (r, t.elapsed())
        });
        (
            deriv_handle.join().expect("derivation side panicked"),
            model_handle.join().expect("model side panicked"),
        )
    });
    let (deriv_result, deriv_time) = deriv;
    let (model_result, model_time) = model;
    timings.derivation = deriv_time;
    timings.model = model_time;
    let side = model_result?;
    spend.derivation_states = deriv_result.states;
    spend.model_nodes = side.nodes;
    // Prefer the derivation side on the (mathematically impossible) double
    // win, matching the sequential order.
    Ok(match (deriv_result.result, side.found) {
        (SearchResult::Found(derivation), _) => {
            spend.model_truncated = true;
            SideResult::Derivation(derivation)
        }
        (_, Some((g, interp))) => {
            spend.derivation_truncated = true;
            SideResult::Model(g, interp)
        }
        (
            SearchResult::ExhaustedWithinBound { states }
            | SearchResult::BudgetExhausted { states },
            None,
        ) => SideResult::Neither {
            derivation_states: states,
            model_nodes: side.nodes,
        },
    })
}

/// Runs the full pipeline on a raw presentation, racing the two sides
/// ([`SolveMode::Racing`]). Routed through an ephemeral
/// [`crate::engine::Engine`] so the one-shot path and the long-lived
/// service path are the same code.
///
/// # Errors
///
/// Fails when normalization, reduction, certificate compilation, or
/// certificate verification fails; an inconclusive search is **not** an
/// error (it is reported as [`PipelineOutcome::Unknown`]).
pub fn solve(p: &Presentation, budgets: &Budgets) -> Result<PipelineRun> {
    solve_with(p, budgets, SolveMode::default())
}

/// Runs the full pipeline on a raw presentation under an explicit
/// [`SolveMode`]. Both modes return the same verdict (enforced by the
/// differential property tests); racing wins wall-clock time whenever the
/// refutable side settles first.
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with(p: &Presentation, budgets: &Budgets, mode: SolveMode) -> Result<PipelineRun> {
    solve_with_opts(
        p,
        budgets,
        SolveOptions {
            mode,
            ..SolveOptions::default()
        },
    )
}

/// Runs the full pipeline under explicit [`SolveOptions`] (scheduling mode
/// plus homomorphism strategy). Neither option may change a verdict — the
/// differential tests pin that — so they exist for performance and for
/// oracle-vs-planner debugging runs (`tdq wp --strategy naive`).
///
/// This is a thin wrapper: it builds a single-request
/// [`crate::engine::Engine`] and calls [`crate::engine::Engine::run_full`],
/// so every solve — one-shot or served — executes the same engine code.
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with_opts(
    p: &Presentation,
    budgets: &Budgets,
    opts: SolveOptions,
) -> Result<PipelineRun> {
    crate::engine::Engine::with_config(crate::engine::EngineConfig {
        budgets: *budgets,
        opts,
        ..crate::engine::EngineConfig::default()
    })
    .run_full(p)
}

/// The raw pipeline executor: normalize → reduce → search (under the given
/// scheduling mode, observing `cancel`) → compile/verify the certificate.
///
/// `cancel` is the request's cooperative-cancellation ticket: under
/// [`SolveMode::Racing`] the winning side flips it to stop the loser, and
/// an external holder (the engine's shutdown path) may flip it at any time
/// to wind the whole request down — the run then reports
/// [`PipelineOutcome::Unknown`] with the spend accumulated so far. Callers
/// that want plain one-shot semantics pass a fresh token.
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with_opts_on(
    p: &Presentation,
    budgets: &Budgets,
    opts: SolveOptions,
    cancel: &Cancellation,
) -> Result<PipelineRun> {
    let mode = opts.mode;
    let t_total = Instant::now();
    let mut timings = PhaseTimings::default();

    let t = Instant::now();
    let saturated = p.zero_saturated();
    let normalized = normalize(&saturated)?;
    timings.normalize = t.elapsed();
    let np = &normalized.presentation;

    let t = Instant::now();
    let system = build_system(np)?;
    timings.reduce = t.elapsed();

    let mut spend = SpendReport::default();
    let side = match mode {
        SolveMode::Sequential => search_sequential(np, budgets, &mut timings, &mut spend, cancel)?,
        SolveMode::Racing => search_racing(np, budgets, &mut timings, &mut spend, cancel)?,
    };

    let t = Instant::now();
    let outcome = match side {
        SideResult::Derivation(derivation) => {
            let proof = prove_part_a_with(&system, np, &derivation, opts.strategy)?;
            PipelineOutcome::Implied { derivation, proof }
        }
        SideResult::Model(g, interp) => {
            let model = build_counter_model(&system, np, &g, &interp)?;
            let report = verify_counter_model_with(opts.strategy, &system, &model);
            debug_assert!(report.ok(), "{report:?}");
            PipelineOutcome::Refuted {
                model: Box::new(model),
                report,
            }
        }
        SideResult::Neither {
            derivation_states,
            model_nodes,
        } => PipelineOutcome::Unknown {
            derivation_states,
            model_nodes,
        },
    };
    if !matches!(outcome, PipelineOutcome::Unknown { .. }) {
        timings.certificate = t.elapsed();
    }
    timings.total = t_total.elapsed();

    Ok(PipelineRun {
        normalized,
        system,
        outcome,
        timings,
        spend,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_semigroup::alphabet::Alphabet;
    use td_semigroup::equation::Equation;

    fn derivable() -> Presentation {
        let alphabet = Alphabet::standard(2);
        let eqs = vec![
            Equation::parse("A1 A1 = A0", &alphabet).unwrap(),
            Equation::parse("A1 A1 = 0", &alphabet).unwrap(),
        ];
        Presentation::new(alphabet, eqs).unwrap()
    }

    fn refutable() -> Presentation {
        Presentation::new(Alphabet::standard(1), vec![]).unwrap()
    }

    #[test]
    fn derivable_instances_come_out_implied() {
        let run = solve(&derivable(), &Budgets::default()).unwrap();
        match &run.outcome {
            PipelineOutcome::Implied { derivation, proof } => {
                assert!(!derivation.is_empty());
                proof.verify(&run.system).unwrap();
            }
            other => panic!("expected Implied, got {other:?}"),
        }
        assert!(run.outcome.is_implied());
    }

    #[test]
    fn refutable_instances_come_out_refuted() {
        let run = solve(&refutable(), &Budgets::default()).unwrap();
        match &run.outcome {
            PipelineOutcome::Refuted { model, report } => {
                assert!(report.ok());
                assert!(model.len() >= 3);
            }
            other => panic!("expected Refuted, got {other:?}"),
        }
        assert!(run.outcome.is_refuted());
    }

    #[test]
    fn unnormalized_input_is_normalized_in_pipeline() {
        // A long equation: the pipeline normalizes before reducing.
        let alphabet = Alphabet::new(["A0", "B", "C", "0"], "A0", "0").unwrap();
        let eq = Equation::parse("B C B = A0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![eq]).unwrap();
        let run = solve(&p, &Budgets::default()).unwrap();
        // Fresh symbols mean more attributes: n grows beyond 4.
        assert!(run.system.attrs.alphabet().len() > 4);
        assert!(run.system.attrs.arity() == 2 * run.system.attrs.alphabet().len() + 2);
        // This instance is refutable (nothing forces A0 = 0: interpret all
        // long products as 0 but A0 nonzero? B C B = A0 forces A0 to be a
        // product — in a null semigroup that is 0, so the null shortcut
        // fails; the model search may or may not find a model. Accept any
        // verdict except Implied.
        assert!(!run.outcome.is_implied());
    }

    /// Regression for the spent-budget reports: the winner's spend must be
    /// exact (identical across solve modes), the loser's labelled
    /// truncated, and `Unknown` reports must coincide across modes.
    #[test]
    fn spend_reports_are_deterministic_across_modes() {
        // Won race, derivation side: winner's states exact in both modes.
        let p = derivable();
        let seq = solve_with(&p, &Budgets::default(), SolveMode::Sequential).unwrap();
        let raced = solve_with(&p, &Budgets::default(), SolveMode::Racing).unwrap();
        assert!(seq.outcome.is_implied() && raced.outcome.is_implied());
        assert!(!seq.spend.derivation_truncated);
        assert!(!raced.spend.derivation_truncated);
        assert_eq!(
            seq.spend.derivation_states, raced.spend.derivation_states,
            "the winning side is never cancelled, so its spend is exact"
        );
        assert!(seq.spend.model_truncated, "sequential loser never ran");
        assert_eq!(seq.spend.model_nodes, 0);
        assert!(
            raced.spend.model_truncated,
            "the racing loser's spend is only a lower bound"
        );

        // Won race, model side (analytic shortcut: 0 nodes, exact).
        let p = refutable();
        let seq = solve_with(&p, &Budgets::default(), SolveMode::Sequential).unwrap();
        let raced = solve_with(&p, &Budgets::default(), SolveMode::Racing).unwrap();
        assert!(seq.outcome.is_refuted() && raced.outcome.is_refuted());
        assert!(!seq.spend.model_truncated);
        assert!(!raced.spend.model_truncated);
        assert_eq!(seq.spend.model_nodes, raced.spend.model_nodes);
        assert!(raced.spend.derivation_truncated);
        assert!(
            !seq.spend.derivation_truncated,
            "sequentially the derivation side ran to exhaustion first"
        );

        // Unknown: no side is cancelled, both spends exact and identical
        // across modes.
        // `A0 A1 = A0` defeats the null-semigroup shortcut (a product
        // equals a nonzero symbol), words can only grow (never reaching
        // `0`), and the tiny node budget stops the model search mid-table.
        let alphabet = Alphabet::standard(2);
        let grow = Equation::parse("A0 A1 = A0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![grow]).unwrap();
        let tight = Budgets {
            derivation: td_semigroup::derivation::SearchBudget {
                max_word_len: 6,
                max_states: 50,
            },
            model: ModelSearchOptions {
                min_size: 3,
                max_size: 3,
                max_nodes: 5,
            },
            chase: ChaseBudget::default(),
        };
        let seq = solve_with(&p, &tight, SolveMode::Sequential).unwrap();
        let raced = solve_with(&p, &tight, SolveMode::Racing).unwrap();
        let unknown = |run: &PipelineRun| match run.outcome {
            PipelineOutcome::Unknown {
                derivation_states,
                model_nodes,
            } => (derivation_states, model_nodes),
            ref other => panic!("expected Unknown, got {other:?}"),
        };
        let (ds, mn) = unknown(&seq);
        assert_eq!(unknown(&raced), (ds, mn));
        for run in [&seq, &raced] {
            assert_eq!(run.spend.derivation_states, ds);
            assert_eq!(run.spend.model_nodes, mn);
            assert!(!run.spend.derivation_truncated);
            assert!(!run.spend.model_truncated);
        }
    }

    #[test]
    fn goal_already_zero_is_implied_trivially() {
        // Presentation containing A0 = 0 directly: aliasing makes the goal
        // hold with a zero-step derivation... after aliasing A0 *is* 0, so
        // the goal derivation is trivial.
        let alphabet = Alphabet::standard(1);
        let eq = Equation::parse("A0 = 0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![eq]).unwrap();
        let run = solve(&p, &Budgets::default()).unwrap();
        assert!(run.outcome.is_implied(), "{:?}", run.outcome);
    }
}
